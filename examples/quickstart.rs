//! Quickstart: learn a Pairwise Fair Representation on the paper's synthetic
//! admissions data and evaluate a downstream classifier.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use pfr::core::{Pfr, PfrConfig};
use pfr::data::{split, synthetic};
use pfr::graph::{fairness, KnnGraphBuilder};
use pfr::linalg::stats::Standardizer;
use pfr::metrics::{consistency, roc_auc, GroupFairnessReport};
use pfr::opt::LogisticRegression;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: the paper's synthetic US-admissions scenario (600 candidates,
    //    two demographic groups with a shifted SAT distribution).
    let dataset = synthetic::generate_default(42)?;
    println!("dataset: {} ({} records)", dataset.name, dataset.len());

    let split = split::train_test_split(&dataset, 0.3, 42)?;
    let train = dataset.subset(&split.train)?;
    let test = dataset.subset(&split.test)?;

    // 2. Features: the representation learner sees GPA, SAT and the protected
    //    attribute; standardization is fit on the training split only.
    let (train_x_raw, _) = train.features_with_protected()?;
    let (test_x_raw, _) = test.features_with_protected()?;
    let (standardizer, x_train) = Standardizer::fit_transform(&train_x_raw)?;
    let x_test = standardizer.transform(&test_x_raw)?;

    // 3. Graphs: WX is a k-NN RBF graph over the masked features; WF links
    //    equally deserving candidates across groups (between-group quantile
    //    graph over the within-group deservingness ranking).
    let (_, x_train_masked) = Standardizer::fit_transform(train.features())?;
    let wx = KnnGraphBuilder::new(10).build(&x_train_masked)?;
    let scores: Vec<f64> = train
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    let wf = fairness::between_group_quantile_graph(train.groups(), &scores, 10)?;
    println!(
        "graphs: WX has {} edges, WF has {} edges",
        wx.num_edges(),
        wf.num_edges()
    );

    // 4. Learn the pairwise fair representation.
    let model = Pfr::new(PfrConfig {
        gamma: 0.9,
        dim: 2,
        ..PfrConfig::default()
    })
    .fit(&x_train, &wx, &wf)?;
    println!(
        "PFR fitted: objective = {:.6}, eigenvalues = {:?}",
        model.objective(),
        model
            .eigenvalues()
            .iter()
            .map(|v| (v * 1e6).round() / 1e6)
            .collect::<Vec<_>>()
    );

    let z_train = model.transform(&x_train)?;
    let z_test = model.transform(&x_test)?;

    // 5. Train the out-of-the-box downstream classifier on the fair
    //    representation and evaluate it on unseen individuals.
    let mut clf = LogisticRegression::default();
    clf.fit(&z_train, train.labels())?;
    let probs = clf.predict_proba(&z_test)?;
    let preds: Vec<u8> = probs.iter().map(|&p| u8::from(p >= 0.5)).collect();
    let preds_f: Vec<f64> = preds.iter().map(|&p| p as f64).collect();

    let auc = roc_auc(test.labels(), &probs)?;
    let (_, x_test_masked) = Standardizer::fit_transform(test.features())?;
    let wx_test = KnnGraphBuilder::new(10).build(&x_test_masked)?;
    let test_scores: Vec<f64> = test
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    let wf_test = fairness::between_group_quantile_graph(test.groups(), &test_scores, 10)?;

    println!("\n=== downstream evaluation (test split) ===");
    println!("AUC                = {auc:.3}");
    println!(
        "Consistency (WX)   = {:.3}",
        consistency(&wx_test, &preds_f)?
    );
    println!(
        "Consistency (WF)   = {:.3}",
        consistency(&wf_test, &preds_f)?
    );
    let report = GroupFairnessReport::compute(test.labels(), &preds, test.groups(), Some(&probs))?;
    println!(
        "Demographic parity gap = {:.3}, equalized-odds gap = {:.3}",
        report.demographic_parity_gap(),
        report.equalized_odds_gap()
    );
    for g in &report.per_group {
        println!(
            "  group {}: P(Y=1) = {:.3}, FPR = {:?}, FNR = {:?}",
            g.group,
            g.positive_prediction_rate,
            g.false_positive_rate.map(|v| (v * 1000.0).round() / 1000.0),
            g.false_negative_rate.map(|v| (v * 1000.0).round() / 1000.0),
        );
    }
    Ok(())
}
