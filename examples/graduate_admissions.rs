//! The paper's Section 1.1 motivating scenario end-to-end: US graduate
//! admissions where one group's SAT scores are inflated by access to test
//! re-takes and tutoring.
//!
//! The example compares the Original representation against PFR across a γ
//! sweep and shows how the pairwise fairness judgments ("a candidate from the
//! disadvantaged group with a slightly lower SAT score is equally deserving")
//! simultaneously improve individual fairness, group fairness *and* utility —
//! because on this dataset the judgments agree with the ground truth.
//!
//! ```bash
//! cargo run --release --example graduate_admissions
//! ```

use pfr::eval::experiments::{gamma, tradeoff};
use pfr::eval::pipeline::DatasetSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Graduate admissions (synthetic, Section 4.2 of the paper) ===\n");

    // Method comparison at the tuned γ (Figures 2 and 3).
    let results = tradeoff::run_tradeoff(DatasetSpec::Synthetic, false, 42)?;
    println!("{}", results.render_tradeoff());
    println!("{}", results.render_group_fairness());

    // How the trade-off evolves with γ (Figure 4).
    let sweep = gamma::run(DatasetSpec::Synthetic, false, 42)?;
    println!("{}", sweep.render());

    // A short narrative summary of the paper's key observations.
    let original = results.method("Original").expect("Original always runs");
    let pfr = results.method("PFR").expect("PFR always runs");
    println!("Summary:");
    println!(
        "  PFR raises Consistency(WF) from {:.3} to {:.3} while the AUC moves from {:.3} to {:.3}.",
        original.consistency_wf, pfr.consistency_wf, original.auc, pfr.auc
    );
    println!(
        "  The demographic-parity gap shrinks from {:.3} to {:.3} and the equalized-odds gap from {:.3} to {:.3},",
        original.group_report.demographic_parity_gap(),
        pfr.group_report.demographic_parity_gap(),
        original.group_report.equalized_odds_gap(),
        pfr.group_report.equalized_odds_gap()
    );
    println!("  even though PFR never optimizes group fairness explicitly — the pairwise judgments do the work.");
    Ok(())
}
