//! Demo of the serving subsystem: train a fair pipeline offline, persist it
//! as a bundle, serve it over TCP, and hammer it from concurrent client
//! threads — then print the server's own statistics.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! With `--journal <dir>` the server runs with a write-ahead journal and
//! the demo finishes by *crashing* the server (no graceful shutdown at
//! all), starting a fresh one on the same journal directory, and replaying
//! the journal to restore the registry and the warmed score cache:
//!
//! ```text
//! cargo run --release --example serve_demo -- --journal /tmp/pfr-journal
//! ```
//!
//! With `--refit` (implies journaling, into a scratch directory unless
//! `--journal` names one) a background refit worker tails that same
//! journal, the demo shifts the traffic distribution, and the worker
//! detects the drift, warm-refits the model from the serving projection,
//! shadow-scores the candidate on held-back traffic, and hot-swaps it back
//! into the live server over the wire — all visible on the `STATS` line:
//!
//! ```text
//! cargo run --release --example serve_demo -- --refit
//! ```
//!
//! With `--metrics` the server samples a trace span for one in every 16
//! requests and the demo finishes by scraping the full `METRICS`
//! exposition over the wire (every counter, gauge and latency histogram
//! with derived p50/p99/p999) and printing the slowest sampled span
//! breakdown:
//!
//! ```text
//! cargo run --release --example serve_demo -- --metrics
//! ```

use pfr::journal::JournalConfig;
use pfr::pipeline::{FairPipeline, FairPipelineConfig};
use pfr::refit::{GateConfig, RefitConfig, RefitLoop, RefitModelConfig, RefitWorker, SwapTarget};
use pfr::serve::protocol::format_numbers;
use pfr::serve::{BatcherConfig, Frontend, Server, ServerConfig};
use pfr_data::{split, synthetic, Dataset};
use pfr_graph::{fairness, SparseGraph};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fairness_graph(ds: &Dataset) -> SparseGraph {
    let scores: Vec<f64> = ds
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    fairness::between_group_quantile_graph(ds.groups(), &scores, 5)
        .expect("fairness graph construction succeeds")
}

fn main() {
    // 1. Train offline on the paper's synthetic admissions data.
    println!("training a fair pipeline on synthetic admissions data ...");
    let dataset = synthetic::generate_default(42).expect("synthetic data generates");
    let split = split::train_test_split(&dataset, 0.3, 42).expect("split succeeds");
    let train = dataset.subset(&split.train).expect("train subset");
    let test = dataset.subset(&split.test).expect("test subset");
    let fitted = FairPipeline::new(FairPipelineConfig {
        gamma: 0.9,
        ..FairPipelineConfig::default()
    })
    .fit(&train, &fairness_graph(&train))
    .expect("pipeline fits");

    // 2. Persist the deployable bundle.
    let bundle = fitted.into_bundle().expect("bundle assembles");
    let path = std::env::temp_dir().join("pfr_serve_demo.bundle");
    pfr::core::persistence::save_bundle(&bundle, &path).expect("bundle saves");
    println!("bundle persisted to {}", path.display());

    // 3. Serve it on an ephemeral port — an event-driven reactor *pool*
    //    sized to the machine (one epoll loop per thread, accepted
    //    connections spread across them); set `frontend: Frontend::Threaded`
    //    for the thread-per-connection baseline. `--journal <dir>` adds a
    //    write-ahead journal: every accepted request becomes durable before
    //    its response, and a crashed server can be rebuilt from the log.
    let reactors = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1);
    let refit_mode = std::env::args().any(|a| a == "--refit");
    let metrics_mode = std::env::args().any(|a| a == "--metrics");
    let journal_dir = {
        let mut args = std::env::args();
        args.find(|a| a == "--journal")
            .map(|_| std::path::PathBuf::from(args.next().expect("--journal takes a directory")))
    }
    .or_else(|| {
        // `--refit` needs a journal to tail; give it a fresh scratch one.
        refit_mode.then(|| {
            let dir = std::env::temp_dir().join("pfr_serve_demo_refit_journal");
            let _ = std::fs::remove_dir_all(&dir);
            dir
        })
    });
    let make_config = || ServerConfig {
        frontend: Frontend::reactor(reactors),
        workers: 4,
        batcher: BatcherConfig {
            max_batch: 32,
            linger: Duration::from_micros(300),
        },
        journal: journal_dir.clone().map(JournalConfig::new),
        // With `--metrics`, sample a full span breakdown for one in
        // every 16 otherwise-untraced requests.
        trace_sample_every: if metrics_mode { 16 } else { 0 },
        ..ServerConfig::default()
    };
    let server = Server::spawn(make_config()).expect("server spawns");
    if let Some(dir) = &journal_dir {
        println!("journaling every request to {}", dir.display());
    }
    let addr = server.addr();
    println!("serving on {addr} ({reactors}-reactor front-end pool)");

    let (raw, _) = test.features_with_protected().expect("raw features");

    // 4. A client loads the model over the wire ...
    {
        let stream = TcpStream::connect(addr).expect("client connects");
        stream.set_nodelay(true).expect("nodelay sets");
        let mut reader = BufReader::new(stream.try_clone().expect("stream clones"));
        let mut writer = stream;
        writeln!(writer, "LOAD admissions {}", path.display()).expect("request writes");
        let mut response = String::new();
        reader.read_line(&mut response).expect("response reads");
        println!("LOAD -> {}", response.trim_end());
    }

    // 4b. Warm the score cache from a recorded request log (a wire capture
    //     of SCORE lines), so day-one traffic starts at cache-hit latency.
    let log_path = std::env::temp_dir().join("pfr_serve_demo_requests.log");
    let mut log = String::new();
    for i in 0..raw.rows().min(32) {
        log.push_str(&format!(
            "SCORE admissions {}\n",
            format_numbers(raw.row(i))
        ));
    }
    std::fs::write(&log_path, log).expect("request log writes");
    let (warmed, skipped) = server.warm_from_log(&log_path).expect("warm-up succeeds");
    println!("cache warmed with {warmed} entries from a recorded request log ({skipped} skipped)");

    // 5. ... and four client threads score the whole test split concurrently.
    let rows: Arc<Vec<Vec<f64>>> = Arc::new((0..raw.rows()).map(|i| raw.row(i).to_vec()).collect());
    let started = Instant::now();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let rows = Arc::clone(&rows);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("client connects");
                stream.set_nodelay(true).expect("nodelay sets");
                let mut reader = BufReader::new(stream.try_clone().expect("stream clones"));
                let mut writer = stream;
                let mut positives = 0usize;
                for i in 0..rows.len() {
                    let row = &rows[(i + t * 13) % rows.len()];
                    writeln!(writer, "SCORE admissions {}", format_numbers(row))
                        .expect("request writes");
                    let mut response = String::new();
                    reader.read_line(&mut response).expect("response reads");
                    let label: u8 = response
                        .split_whitespace()
                        .nth(2)
                        .expect("OK <score> <label>")
                        .parse()
                        .expect("label parses");
                    positives += label as usize;
                }
                positives
            })
        })
        .collect();
    let positives: usize = handles
        .into_iter()
        .map(|h| h.join().expect("client joins"))
        .sum();
    let total = 4 * rows.len();
    let elapsed = started.elapsed();
    println!(
        "{total} scores in {elapsed:?} ({:.0} requests/sec), {positives} positive decisions",
        total as f64 / elapsed.as_secs_f64()
    );

    // 6. The server reports its own telemetry.
    let stream = TcpStream::connect(addr).expect("client connects");
    stream.set_nodelay(true).expect("nodelay sets");
    let mut reader = BufReader::new(stream.try_clone().expect("stream clones"));
    let mut writer = stream;
    writeln!(writer, "STATS").expect("request writes");
    let mut stats = String::new();
    reader.read_line(&mut stats).expect("response reads");
    println!("STATS -> {}", stats.trim_end());

    // 6b. With `--metrics`: scrape the full exposition over the wire (the
    //     `METRICS` verb answers `OK <payload>` with the multi-line text
    //     escaped onto one line) and show the slowest sampled trace span.
    if metrics_mode {
        writeln!(writer, "METRICS").expect("request writes");
        let mut response = String::new();
        reader.read_line(&mut response).expect("response reads");
        let payload = response
            .trim_end()
            .strip_prefix("OK ")
            .expect("METRICS answers OK <payload>");
        println!("METRICS ->");
        for line in pfr::obs::unescape_multiline(payload).lines() {
            println!("  {line}");
        }
        match server.traces().slowest() {
            Some(span) => {
                println!("slowest sampled request:");
                print!("{}", span.render(2));
            }
            None => println!("no request was sampled (traffic below the sampling stride)"),
        }
    }

    // 7. With `--refit`: close the loop. A background worker tails the very
    //    journal the server writes, watches the live feature stream for
    //    drift against the serving bundle's own training statistics, and on
    //    detection warm-refits, shadow-gates and hot-swaps — while clients
    //    keep scoring.
    if refit_mode {
        println!("starting the refit worker (tailing the journal) ...");
        let serving_text = pfr::core::persistence::bundle_to_string(&bundle);
        let mut refit_config = RefitConfig::new(
            journal_dir.clone().expect("refit mode forces a journal"),
            "admissions",
        );
        refit_config.window_rows = 256;
        refit_config.holdback_rows = 64;
        refit_config.holdback_every = 4;
        refit_config.min_refit_rows = 96;
        refit_config.check_every_frames = 32;
        refit_config.cooldown_frames = 64;
        refit_config.model_config = RefitModelConfig {
            dim: bundle.model.dim(),
            knn_k: 8,
            // `features_with_protected` appends the group flag last.
            protected_column: raw.cols() - 1,
            ..RefitModelConfig::default()
        };
        refit_config.gate = GateConfig {
            min_agreement: 0.7,
            max_mean_abs_diff: 0.35,
            min_rows: 8,
        };
        let refit_loop = RefitLoop::new(
            refit_config,
            &serving_text,
            SwapTarget::Backends(vec![addr]),
        )
        .expect("refit loop builds");
        let worker = RefitWorker::spawn(refit_loop);
        // The worker's counters ride the server's own STATS line — and its
        // gauges (cursor lag against the server's journal tip included)
        // join the server's METRICS exposition.
        server.attach_stats_source(worker.stats_source());
        let journal_tip = {
            let stats = server
                .journal()
                .expect("refit mode forces a journal")
                .shared_stats();
            Arc::new(move || stats.last_seq()) as Arc<dyn Fn() -> u64 + Send + Sync>
        };
        worker
            .stats()
            .register_metrics(server.metrics(), Some(journal_tip));
        let refit_stats = worker.stats();

        // The upstream distribution shifts: every feature moves by 0.8 of
        // its serving-time standard deviation (the protected flag stays).
        let stds = bundle
            .standardizer
            .as_ref()
            .expect("pipeline bundles carry a standardizer")
            .stds
            .clone();
        println!("traffic drifts (+0.8 sigma per feature) — scoring until the worker swaps ...");
        let stream = TcpStream::connect(addr).expect("client connects");
        stream.set_nodelay(true).expect("nodelay sets");
        let mut drift_reader = BufReader::new(stream.try_clone().expect("stream clones"));
        let mut drift_writer = stream;
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut sent = 0usize;
        'drift: loop {
            for i in 0..rows.len() {
                if refit_stats.refits_swapped() > 0 {
                    break 'drift;
                }
                assert!(Instant::now() < deadline, "refit did not swap within 60s");
                let drifted: Vec<f64> = rows[i]
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| {
                        if j + 1 == rows[i].len() {
                            v
                        } else {
                            v + 0.8 * stds[j]
                        }
                    })
                    .collect();
                writeln!(
                    drift_writer,
                    "SCORE admissions {}",
                    format_numbers(&drifted)
                )
                .expect("request writes");
                let mut response = String::new();
                drift_reader
                    .read_line(&mut response)
                    .expect("response reads");
                assert!(
                    response.starts_with("OK"),
                    "drifted score failed: {response}"
                );
                sent += 1;
            }
        }
        println!(
            "hot-swap after {sent} drifted requests: {} drift checks, {} detected, \
             {} attempted, {} gated, {} swapped",
            refit_stats.drift_checks(),
            refit_stats.drift_detected(),
            refit_stats.refits_attempted(),
            refit_stats.refits_gated(),
            refit_stats.refits_swapped(),
        );
        writeln!(drift_writer, "STATS").expect("request writes");
        let mut stats = String::new();
        drift_reader.read_line(&mut stats).expect("response reads");
        println!("STATS -> {}", stats.trim_end());
        if metrics_mode {
            println!("refit gauges riding the server's METRICS exposition:");
            for line in server
                .metrics()
                .render()
                .lines()
                .filter(|l| l.starts_with("pfr_refit_"))
            {
                println!("  {line}");
            }
        }
        worker.stop();
    }

    // 8. With a journal: crash the server outright and recover a new one.
    if journal_dir.is_some() {
        // No shutdown, no Drop — the process state is simply abandoned, the
        // way a SIGKILL would leave it. Everything the clients saw
        // acknowledged is already fsynced in the journal.
        drop((reader, writer));
        std::mem::forget(server);
        println!("server crashed (no graceful shutdown) — recovering from the journal ...");
        let recovered = Server::spawn(make_config()).expect("recovery server spawns");
        let report = recovered
            .recover_from_journal()
            .expect("journal replay succeeds");
        println!(
            "replayed {} frames: {} installs, {} scores ({} cache entries warmed), {} skipped",
            report.frames, report.installs, report.scores, report.warmed, report.skipped
        );
        // The first request after recovery is already a cache hit.
        let stream = TcpStream::connect(recovered.addr()).expect("client connects");
        stream.set_nodelay(true).expect("nodelay sets");
        let mut reader = BufReader::new(stream.try_clone().expect("stream clones"));
        let mut writer = stream;
        writeln!(writer, "SCORE admissions {}", format_numbers(raw.row(0)))
            .expect("request writes");
        let mut response = String::new();
        reader.read_line(&mut response).expect("response reads");
        println!(
            "first post-recovery score -> {} (cache hits: {})",
            response.trim_end(),
            recovered.stats().cache_hits()
        );
        recovered.shutdown();
    } else {
        server.shutdown();
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&log_path);
}
