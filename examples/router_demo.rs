//! Demo of the routing tier: train a fair pipeline offline, `PUSH` its
//! bundle onto a 3-shard local cluster over the wire (no shared
//! filesystem), verify all replicas serve identical content, hammer the
//! tier from concurrent client threads, kill a backend mid-traffic — then
//! *heal the cluster live*: join a replacement backend, retire the dead
//! one, and watch placements reconcile while every score stays bit-exact —
//! then go **multi-router**: a second router bootstraps the entire
//! replicated placement catalog from a single seed address (and a
//! hard-killed-and-restarted one recovers the same way), agreeing with the
//! first router on the exact catalog version with no shared filesystem —
//! then drive thousands of in-flight scores from one caller thread through
//! the asynchronous ticket/completion-queue API.
//!
//! ```text
//! cargo run --release --example router_demo
//! ```
//!
//! With `--journal <dir>` every backend runs with its own write-ahead
//! journal under `<dir>/backend-<n>`, and the healing step changes
//! character: the replacement backend boots on the *dead member's* journal
//! directory and replays it — recovering the model and the warmed score
//! cache from the victim's own durable request log, with no re-push needed:
//!
//! ```text
//! cargo run --release --example router_demo -- --journal /tmp/pfr-cluster-journal
//! ```
//!
//! With `--metrics` the demo finishes by scoring one explicitly traced
//! request (the trace id travels to the backend as a `T=<id>` wire token)
//! and printing its cross-tier span tree, then scatter-gathers `METRICS`
//! from every backend and prints the cluster-wide merged exposition —
//! per-verb latency histograms summed bucket-wise, so the printed
//! p50/p99/p999 are true cluster quantiles:
//!
//! ```text
//! cargo run --release --example router_demo -- --metrics
//! ```

use pfr::journal::JournalConfig;
use pfr::pipeline::{FairPipeline, FairPipelineConfig};
use pfr::router::{BreakerConfig, LocalCluster, Router, RouterConfig};
use pfr::serve::ServerConfig;
use pfr_data::{split, synthetic, Dataset};
use pfr_graph::{fairness, SparseGraph};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fairness_graph(ds: &Dataset) -> SparseGraph {
    let scores: Vec<f64> = ds
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    fairness::between_group_quantile_graph(ds.groups(), &scores, 5)
        .expect("fairness graph construction succeeds")
}

fn main() {
    // 1. Train offline on the paper's synthetic admissions data.
    println!("training a fair pipeline on synthetic admissions data ...");
    let dataset = synthetic::generate_default(42).expect("synthetic data generates");
    let split = split::train_test_split(&dataset, 0.3, 42).expect("split succeeds");
    let train = dataset.subset(&split.train).expect("train subset");
    let test = dataset.subset(&split.test).expect("test subset");
    let fitted = FairPipeline::new(FairPipelineConfig {
        gamma: 0.9,
        ..FairPipelineConfig::default()
    })
    .fit(&train, &fairness_graph(&train))
    .expect("pipeline fits");
    let expected = fitted.predict_proba(&test).expect("offline predictions");
    let (raw, _) = test.features_with_protected().expect("raw features");
    let bundle = fitted.into_bundle().expect("bundle assembles");

    // 2. Boot a 3-shard cluster and a replicated router over it. With
    //    `--journal <dir>` each backend gets a private journal directory
    //    (two servers must never append to the same write-ahead log).
    let journal_root = {
        let mut args = std::env::args();
        args.find(|a| a == "--journal")
            .map(|_| std::path::PathBuf::from(args.next().expect("--journal takes a directory")))
    };
    let backend_config = |n: usize| ServerConfig {
        journal: journal_root
            .as_ref()
            .map(|root| JournalConfig::new(root.join(format!("backend-{n}")))),
        ..ServerConfig::default()
    };
    let mut cluster = LocalCluster::boot(0, ServerConfig::default()).expect("cluster allocates");
    for n in 0..3 {
        cluster
            .add_backend_with(backend_config(n))
            .expect("backend boots");
    }
    if let Some(root) = &journal_root {
        println!("each backend journaling to {}/backend-<n>", root.display());
    }
    let router = Arc::new(
        cluster
            .router(RouterConfig {
                replication: 2,
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    probation: Duration::from_millis(250),
                },
                health_interval: Some(Duration::from_millis(25)),
                ..RouterConfig::default()
            })
            .expect("router connects"),
    );
    println!("cluster up on {:?}", cluster.addrs());

    // 3. Place the model: the ring picks the replica set, PUSH ships the
    //    bundle text over the wire — no backend ever reads a file.
    let replicas = router
        .push("admissions", &bundle)
        .expect("placement succeeds");
    let digest = router.verify("admissions").expect("replicas agree");
    println!(
        "pushed 'admissions' to {replicas} replicas {:?}, digest {digest}",
        router.replica_set("admissions")
    );

    // 4. Concurrent traffic; a replica dies halfway through.
    let rows: Vec<Vec<f64>> = (0..raw.rows()).map(|i| raw.row(i).to_vec()).collect();
    let rows = Arc::new(rows);
    let expected = Arc::new(expected);
    let victim = router.replica_set("admissions")[0];
    println!("scoring from 4 client threads, killing backend {victim} mid-stream ...");
    let start = Instant::now();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let router = Arc::clone(&router);
            let rows = Arc::clone(&rows);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                for round in 0..50 {
                    let idx = (round * 7 + t * 13) % rows.len();
                    let score = router
                        .score("admissions", &rows[idx])
                        .expect("every request survives the kill");
                    assert_eq!(
                        score.to_bits(),
                        expected[idx].to_bits(),
                        "routed score must be bit-exact"
                    );
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(5));
    cluster.kill(victim);
    for handle in handles {
        handle.join().expect("client thread succeeds");
    }
    println!(
        "200 requests, one backend killed, 0 errors, {:.1} ms total",
        start.elapsed().as_secs_f64() * 1e3
    );

    // 5. Heal the cluster live: a replacement backend joins the ring, the
    //    dead one is retired, and reconciliation PUSHes the model wherever
    //    the new replica set demands — all while the router keeps serving.
    //    When journaling, the replacement boots on the DEAD member's
    //    journal directory and replays it first: model and warmed cache
    //    come back from the victim's own durable request log.
    let addr = cluster
        .add_backend_with(backend_config(victim))
        .expect("replacement backend boots");
    if journal_root.is_some() {
        let replacement = cluster.len() - 1;
        let report = cluster
            .server(replacement)
            .expect("replacement is alive")
            .recover_from_journal()
            .expect("journal replay succeeds");
        println!(
            "replacement replayed backend {victim}'s journal: {} frames, {} installs, {} cache entries warmed",
            report.frames, report.installs, report.warmed
        );
        assert!(
            cluster
                .server(replacement)
                .unwrap()
                .registry()
                .get("admissions")
                .is_some(),
            "the model must come back from the journal, not a re-push"
        );
    }
    let new_id = router.add_backend(addr).expect("joins the live ring");
    router.remove_backend(victim).expect("dead member retires");
    println!(
        "healed: backend {new_id} joined at {addr}, backend {victim} retired; members now {:?}",
        router.membership().ids()
    );
    assert_eq!(
        router.verify("admissions").expect("replicas still agree"),
        digest,
        "reconciled replicas must serve the original content"
    );
    for idx in [0, 1, 2] {
        let score = router
            .score("admissions", &rows[idx])
            .expect("scores flow across membership changes");
        assert_eq!(score.to_bits(), expected[idx].to_bits());
    }
    println!("post-heal scores verified bit-exact against offline inference");

    // 6. Multi-router: a SECOND router connects to ONE seed address and
    //    bootstraps the entire replicated catalog — roster and placement —
    //    from the cluster itself (`CATALOG`/`SYNC` anti-entropy). No shared
    //    filesystem, no config replay; both routers hold the exact same
    //    catalog version and serve bit-identical scores.
    let seed = [addr];
    let router2 = Router::connect(&seed, RouterConfig::default())
        .expect("second router bootstraps from one seed address");
    assert_eq!(router2.catalog_version(), router.catalog_version());
    assert_eq!(router2.membership().ids(), router.membership().ids());
    assert_eq!(
        router2.verify("admissions").expect("replicas agree"),
        digest,
        "both routers must see the same placed content"
    );
    let score = router2
        .score("admissions", &rows[5])
        .expect("second router serves");
    assert_eq!(score.to_bits(), expected[5].to_bits());
    println!(
        "second router bootstrapped from {addr} alone: {}, members {:?}, scores bit-exact",
        router2.catalog_version().summary(),
        router2.membership().ids()
    );
    //    Hard-kill it (drop — no graceful handoff) and restart: the
    //    catalog comes back from the peers, identical again.
    drop(router2);
    let router3 =
        Router::connect(&seed, RouterConfig::default()).expect("restarted router bootstraps again");
    assert_eq!(router3.catalog_version(), router.catalog_version());
    println!(
        "hard-killed and restarted: catalog recovered from peers, {}",
        router3.catalog_version().summary()
    );
    drop(router3);

    // 7. The asynchronous submission API: ONE caller thread keeps thousands
    //    of scores in flight at once. `submit_score` returns immediately
    //    with a tag; the completion queue delivers results as replicas
    //    answer, and every resolution runs the same failover/cache path as
    //    the blocking calls — so the bits cannot differ.
    const IN_FLIGHT: usize = 2000;
    println!("driving {IN_FLIGHT} in-flight scores from a single caller thread ...");
    let start = Instant::now();
    let queue = router.completion_queue();
    let mut tags = std::collections::HashMap::with_capacity(IN_FLIGHT);
    for i in 0..IN_FLIGHT {
        let idx = (i * 17) % rows.len();
        tags.insert(queue.submit_score("admissions", &rows[idx]), idx);
    }
    let mut completed = 0usize;
    while !queue.is_empty() {
        let (tag, outcome) = queue.pop();
        let idx = tags[&tag];
        let score = outcome.expect("asynchronous score succeeds");
        assert_eq!(
            score.to_bits(),
            expected[idx].to_bits(),
            "ticket-API score must be bit-exact"
        );
        completed += 1;
    }
    println!(
        "{completed} asynchronous completions, 0 errors, {:.1} ms total",
        start.elapsed().as_secs_f64() * 1e3
    );

    // 8. The tier's own accounting.
    let stats = router.stats();
    println!(
        "router stats: routed={} failovers={} scatters={} retried_rows={} hot_hits={} hot_misses={} coalesced={} probes={} sync_rounds={} repair_pushes={}",
        stats.routed(),
        stats.failovers(),
        stats.scatters(),
        stats.retried_rows(),
        stats.hot_cache_hits(),
        stats.hot_cache_misses(),
        stats.coalesced(),
        stats.probes(),
        stats.sync_rounds(),
        stats.repair_pushes()
    );
    for backend in router.backends() {
        println!(
            "  backend {} at {}: open={} ejections={} readmissions={}",
            backend.id(),
            backend.addr(),
            backend.breaker().is_open(),
            backend.breaker().ejections(),
            backend.breaker().readmissions()
        );
    }
    println!("surviving backends: {}/4 booted", cluster.live());

    // 9. With `--metrics`: one traced request's span tree, then the
    //    cluster-wide merged scrape.
    if std::env::args().any(|a| a == "--metrics") {
        let (score, trace_id) = router
            .score_traced("admissions", &rows[3])
            .expect("traced score succeeds");
        assert_eq!(score.to_bits(), expected[3].to_bits());
        println!("traced score {score} under trace id {trace_id:016x}:");
        match router.trace(trace_id) {
            Some(tree) => {
                for line in tree.lines() {
                    println!("  {line}");
                }
            }
            None => println!("  (trace already evicted from the bounded span rings)"),
        }
        println!("cluster-wide METRICS (router series + bucket-wise merge of every backend):");
        for line in router.metrics().lines() {
            println!("  {line}");
        }
    }
}
