//! Recidivism prediction on the COMPAS-like dataset with a between-group
//! quantile fairness graph built from within-group decile scores
//! (Section 4.3 of the paper).
//!
//! This example shows the *incomparable groups* elicitation model: human
//! judges cannot fairly compare individuals across groups, but within-group
//! risk rankings (the decile scores) are available, so individuals in the
//! same risk quantile of their own group are linked as equally deserving.
//!
//! ```bash
//! cargo run --release --example recidivism
//! ```

use pfr::core::{Pfr, PfrConfig};
use pfr::data::{compas, split};
use pfr::graph::components::graph_stats;
use pfr::graph::{fairness, KnnGraphBuilder};
use pfr::linalg::stats::Standardizer;
use pfr::metrics::{consistency, roc_auc, GroupFairnessReport};
use pfr::opt::LogisticRegression;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A quarter-size COMPAS-like dataset keeps the example snappy; switch to
    // `compas::generate_default(42)` for the full 8803 offenders.
    let dataset = compas::generate(&compas::CompasConfig {
        n_non_protected: 1054,
        n_protected: 1146,
        seed: 42,
        ..compas::CompasConfig::default()
    })?;
    println!(
        "dataset: {} ({} offenders, base rates {:.2} / {:.2})",
        dataset.name,
        dataset.len(),
        dataset.base_rate(0).unwrap_or(0.0),
        dataset.base_rate(1).unwrap_or(0.0)
    );

    let split = split::train_test_split(&dataset, 0.3, 7)?;
    let train = dataset.subset(&split.train)?;
    let test = dataset.subset(&split.test)?;

    // Fairness graph: within-group decile scores → between-group quantile
    // graph (Definitions 2 and 3).
    let decile_scores: Vec<f64> = train
        .side_information()
        .iter()
        .map(|s| s.expect("every offender has a decile score"))
        .collect();
    let wf = fairness::between_group_quantile_graph(train.groups(), &decile_scores, 10)?;
    let stats = graph_stats(&wf);
    println!(
        "fairness graph: {} edges over {} offenders ({} covered, {} components)",
        stats.num_edges, stats.num_nodes, stats.covered_nodes, stats.num_components
    );

    // Representation learning input includes the protected attribute; WX is
    // built on the masked features.
    let (train_raw, _) = train.features_with_protected()?;
    let (test_raw, _) = test.features_with_protected()?;
    let (standardizer, x_train) = Standardizer::fit_transform(&train_raw)?;
    let x_test = standardizer.transform(&test_raw)?;
    let (_, x_train_masked) = Standardizer::fit_transform(train.features())?;
    let wx = KnnGraphBuilder::new(10).build(&x_train_masked)?;

    for &gamma in &[0.0, 0.5, 1.0] {
        let model = Pfr::new(PfrConfig {
            gamma,
            dim: x_train.cols() - 1,
            ..PfrConfig::default()
        })
        .fit(&x_train, &wx, &wf)?;
        let mut clf = LogisticRegression::default();
        clf.fit(&model.transform(&x_train)?, train.labels())?;
        let probs = clf.predict_proba(&model.transform(&x_test)?)?;
        let preds: Vec<u8> = probs.iter().map(|&p| u8::from(p >= 0.5)).collect();
        let preds_f: Vec<f64> = preds.iter().map(|&p| p as f64).collect();

        let test_deciles: Vec<f64> = test
            .side_information()
            .iter()
            .map(|s| s.unwrap_or(0.0))
            .collect();
        let wf_test = fairness::between_group_quantile_graph(test.groups(), &test_deciles, 10)?;
        let report =
            GroupFairnessReport::compute(test.labels(), &preds, test.groups(), Some(&probs))?;
        println!(
            "gamma = {gamma:.1}: AUC = {:.3}, Consistency(WF) = {:.3}, DP gap = {:.3}, EqOdds gap = {:.3}",
            roc_auc(test.labels(), &probs)?,
            consistency(&wf_test, &preds_f)?,
            report.demographic_parity_gap(),
            report.equalized_odds_gap()
        );
    }
    println!("\nHigher gamma puts more weight on the decile-score fairness judgments,");
    println!("trading a little utility for more consistent treatment of equally risky");
    println!("offenders across the two groups.");
    Ok(())
}
