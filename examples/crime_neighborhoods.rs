//! Violent-neighbourhood prediction on the Crime & Communities-like dataset
//! with an equivalence-class fairness graph built from resident star ratings
//! (Section 4.3 of the paper).
//!
//! This example shows the *comparable individuals* elicitation model
//! (Definition 1): communities whose aggregated resident safety ratings round
//! to the same star value are judged equally safe and linked in the fairness
//! graph. It also demonstrates the Hardt et al. post-processing baseline on
//! the same data.
//!
//! ```bash
//! cargo run --release --example crime_neighborhoods
//! ```

use pfr::baselines::hardt::HardtPostProcessor;
use pfr::core::{Pfr, PfrConfig};
use pfr::data::{crime, split};
use pfr::graph::{fairness, KnnGraphBuilder};
use pfr::linalg::stats::Standardizer;
use pfr::metrics::{consistency, roc_auc, GroupFairnessReport};
use pfr::opt::LogisticRegression;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = crime::generate_default(42)?;
    let rated = dataset
        .side_information()
        .iter()
        .filter(|s| s.is_some())
        .count();
    println!(
        "dataset: {} ({} communities, {} with resident ratings)",
        dataset.name,
        dataset.len(),
        rated
    );

    let split = split::train_test_split(&dataset, 0.3, 11)?;
    let train = dataset.subset(&split.train)?;
    let test = dataset.subset(&split.test)?;

    // Fairness graph from rounded mean star ratings (equivalence classes).
    let wf = fairness::rating_equivalence_graph(train.side_information())?;
    println!("fairness graph: {} edges", wf.num_edges());

    let (train_raw, _) = train.features_with_protected()?;
    let (test_raw, _) = test.features_with_protected()?;
    let (standardizer, x_train) = Standardizer::fit_transform(&train_raw)?;
    let x_test = standardizer.transform(&test_raw)?;
    let (masked_standardizer, x_train_masked) = Standardizer::fit_transform(train.features())?;
    let x_test_masked = masked_standardizer.transform(test.features())?;
    let wx = KnnGraphBuilder::new(10).build(&x_train_masked)?;

    // --- Original (masked) baseline + Hardt post-processing ---
    let mut original = LogisticRegression::default();
    original.fit(&x_train_masked, train.labels())?;
    let original_train_scores = original.predict_proba(&x_train_masked)?;
    let original_test_scores = original.predict_proba(&x_test_masked)?;
    let original_preds: Vec<u8> = original_test_scores
        .iter()
        .map(|&p| u8::from(p >= 0.5))
        .collect();
    let hardt =
        HardtPostProcessor::fit_default(&original_train_scores, train.labels(), train.groups())?;
    let hardt_preds = hardt.predict(&original_test_scores, test.groups())?;

    // --- PFR ---
    let model = Pfr::new(PfrConfig {
        gamma: 0.2,
        dim: x_train.cols() - 1,
        ..PfrConfig::default()
    })
    .fit(&x_train, &wx, &wf)?;
    let mut clf = LogisticRegression::default();
    clf.fit(&model.transform(&x_train)?, train.labels())?;
    let pfr_scores = clf.predict_proba(&model.transform(&x_test)?)?;
    let pfr_preds: Vec<u8> = pfr_scores.iter().map(|&p| u8::from(p >= 0.5)).collect();

    // --- Evaluation ---
    let wf_test = fairness::rating_equivalence_graph(test.side_information())?;
    let describe =
        |name: &str, scores: &[f64], preds: &[u8]| -> Result<(), Box<dyn std::error::Error>> {
            let preds_f: Vec<f64> = preds.iter().map(|&p| p as f64).collect();
            let report =
                GroupFairnessReport::compute(test.labels(), preds, test.groups(), Some(scores))?;
            println!(
            "{name:<10} AUC = {:.3}, Consistency(WF) = {:.3}, DP gap = {:.3}, EqOdds gap = {:.3}",
            roc_auc(test.labels(), scores)?,
            consistency(&wf_test, &preds_f)?,
            report.demographic_parity_gap(),
            report.equalized_odds_gap()
        );
            Ok(())
        };
    println!("\n=== test-split comparison ===");
    describe("Original", &original_test_scores, &original_preds)?;
    describe("Hardt", &original_test_scores, &hardt_preds)?;
    describe("PFR", &pfr_scores, &pfr_preds)?;

    println!("\nPFR narrows the error-rate gap between majority-white and protected");
    println!("communities without an explicit group-fairness objective; Hardt equalizes");
    println!("the odds by post-processing but does not touch individual fairness.");
    Ok(())
}
