//! The observability acceptance test: a router fronting three *journaling*
//! serve backends must expose ONE merged metrics scrape — router-local
//! series, per-backend latency histograms, and the bucket-wise sum of
//! every backend's serve and journal series — and a single traced request
//! must come back as one span tree: the router span at indent 0 with its
//! routing events, the backend's `serve/SCORE` span nested below it with
//! per-stage events, both under the same trace id that travelled on the
//! wire as a `T=<id>` token.
//!
//! The scenario runs against both connection architectures (reactor front
//! end + reactor transport, thread-per-connection front end + threaded
//! transport): the exposition and the trace tree are wire formats, so both
//! stacks must produce them identically.

use pfr::core::persistence::bundle_to_string;
use pfr::journal::JournalConfig;
use pfr::obs::Scrape;
use pfr::pipeline::{FairPipeline, FairPipelineConfig};
use pfr::refit::{RefitConfig, RefitLoop, RefitWorker, SwapTarget};
use pfr::router::{LocalCluster, RouterConfig, TransportMode};
use pfr::serve::{Frontend, ServerConfig};
use pfr_data::{split, synthetic, Dataset};
use pfr_graph::{fairness, SparseGraph};
use std::path::PathBuf;
use std::sync::Arc;

fn fairness_graph(ds: &Dataset) -> SparseGraph {
    let scores: Vec<f64> = ds
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    fairness::between_group_quantile_graph(ds.groups(), &scores, 5).unwrap()
}

/// A fresh private journal directory per backend — two servers must never
/// append to the same write-ahead journal.
fn journal_dir(tag: &str, i: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pfr_obs_e2e_{tag}_{}_{i}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn one_scrape_and_one_trace_tree_span_every_tier_reactor() {
    one_scrape_and_one_trace_tree_span_every_tier(
        Frontend::reactor(1),
        TransportMode::Reactor,
        "reactor",
    );
}

#[test]
fn one_scrape_and_one_trace_tree_span_every_tier_threaded() {
    one_scrape_and_one_trace_tree_span_every_tier(
        Frontend::Threaded,
        TransportMode::Threaded,
        "threaded",
    );
}

fn one_scrape_and_one_trace_tree_span_every_tier(
    frontend: Frontend,
    transport: TransportMode,
    tag: &str,
) {
    // --- Offline ground truth and a 3-backend journaling cluster. ----------
    let dataset = synthetic::generate_default(91).unwrap();
    let split = split::train_test_split(&dataset, 0.3, 91).unwrap();
    let train = dataset.subset(&split.train).unwrap();
    let test = dataset.subset(&split.test).unwrap();
    let fitted = FairPipeline::new(FairPipelineConfig {
        gamma: 0.9,
        ..FairPipelineConfig::default()
    })
    .fit(&train, &fairness_graph(&train))
    .unwrap();
    let expected = fitted.predict_proba(&test).unwrap();
    let (raw, _) = test.features_with_protected().unwrap();
    let bundle = fitted.into_bundle().unwrap();

    let mut cluster = LocalCluster::boot(0, ServerConfig::default()).unwrap();
    let mut dirs = Vec::new();
    for i in 0..3 {
        let dir = journal_dir(tag, i);
        cluster
            .add_backend_with(ServerConfig {
                frontend,
                journal: Some(JournalConfig::new(dir.clone())),
                ..ServerConfig::default()
            })
            .unwrap();
        dirs.push(dir);
    }
    let router = cluster
        .router(RouterConfig {
            replication: 2,
            transport,
            ..RouterConfig::default()
        })
        .unwrap();
    assert_eq!(cluster.place(&router, "admissions", &bundle).unwrap(), 2);

    // --- Traffic: distinct rows so every request reaches a backend. --------
    for i in 0..20 {
        let idx = i % raw.rows();
        let score = router.score("admissions", raw.row(idx)).unwrap();
        assert_eq!(score.to_bits(), expected[idx].to_bits(), "row {idx}");
    }

    // --- A refit worker tails backend 0's journal; its gauges register on
    //     that backend's registry and so ride the merged scrape too. --------
    let server0 = cluster.server(0).expect("backend 0 is alive");
    let worker = RefitWorker::spawn(
        RefitLoop::new(
            RefitConfig::new(dirs[0].clone(), "admissions"),
            &bundle_to_string(&bundle),
            SwapTarget::Backends(vec![cluster.addrs()[0]]),
        )
        .expect("refit loop builds"),
    );
    let journal_tip = {
        let stats = server0
            .journal()
            .expect("backend 0 journals")
            .shared_stats();
        Arc::new(move || stats.last_seq()) as Arc<dyn Fn() -> u64 + Send + Sync>
    };
    worker
        .stats()
        .register_metrics(server0.metrics(), Some(journal_tip));

    // --- One merged scrape across every tier. ------------------------------
    let text = router.metrics();
    // Router-local series render first.
    assert!(text.contains("pfr_router_routed_total "), "{text}");
    assert!(
        text.contains("pfr_router_backend_latency_ns_count{backend="),
        "per-backend latency histograms missing:\n{text}"
    );
    // All three backends answered the scatter.
    assert!(text.contains("pfr_router_backends_scraped 3"), "{text}");
    // Serve-tier series merged bucket-wise: cluster-wide quantiles exist.
    assert!(
        text.contains("pfr_serve_latency_ns_p999{verb=\"score\"}"),
        "merged serve latency quantiles missing:\n{text}"
    );
    // Journal-tier series rode the same scrape.
    assert!(text.contains("pfr_journal_appends_total "), "{text}");
    assert!(text.contains("pfr_journal_fsync_ns_count "), "{text}");
    // Refit-tier gauges rode it from backend 0, cursor lag included.
    assert!(text.contains("pfr_refit_cursor_seq "), "{text}");
    assert!(text.contains("pfr_refit_cursor_lag "), "{text}");

    let merged = Scrape::parse(&text);
    // 20 scores reached the serve tier (hot rows were distinct) and the
    // count survived the scatter-merge arithmetic.
    let scored = merged
        .scalar("pfr_serve_requests_total{verb=\"score\"}")
        .expect("merged score-request counter");
    assert!(scored >= 20.0, "merged score requests = {scored}");
    // Every accepted request was journaled before it executed: two LOAD
    // placements plus the scores.
    let appends = merged
        .scalar("pfr_journal_appends_total")
        .expect("merged journal append counter");
    assert!(appends >= 22.0, "merged journal appends = {appends}");
    let verb_latency = merged
        .histogram("pfr_serve_latency_ns{verb=\"score\"}")
        .expect("merged score latency histogram");
    assert!(
        verb_latency.count >= 20,
        "histogram count = {}",
        verb_latency.count
    );
    assert!(verb_latency.p999() > 0);

    // --- One traced request = one cross-tier span tree. --------------------
    // A row no prior request scored, so the backend's cache misses and the
    // span shows the full execute path.
    let fresh = raw.row(raw.rows() - 1).to_vec();
    let (score, id) = router.score_traced("admissions", &fresh).unwrap();
    assert_eq!(score.to_bits(), expected[raw.rows() - 1].to_bits());
    let tree = router.trace(id).expect("trace recorded");
    let header = format!("span router/SCORE trace={id:016x}");
    assert!(
        tree.lines().any(|l| l.starts_with(&header)),
        "router span missing at indent 0:\n{tree}"
    );
    // The backend's span is nested one level below, under the SAME id —
    // the token demonstrably travelled on the wire.
    assert!(
        tree.contains(&format!("  span serve/SCORE trace={id:016x}")),
        "nested backend span missing:\n{tree}"
    );
    // Router-side routing events.
    assert!(tree.contains("@ submit"), "{tree}");
    assert!(tree.contains("@ backend-reply"), "{tree}");
    // Backend-side stage events: durability, then the batch execute path.
    assert!(tree.contains("@ journal-append"), "{tree}");
    assert!(tree.contains("@ batch-scored"), "{tree}");

    // --- The same id resolves against the backend's own TRACE ring. --------
    let owner = cluster
        .addrs()
        .iter()
        .enumerate()
        .find_map(|(i, _)| {
            let server = cluster.server(i)?;
            (!server.traces().find(id).is_empty()).then_some(server)
        })
        .expect("some backend recorded the span");
    let spans = owner.traces().find(id);
    assert_eq!(spans[0].name, "serve/SCORE");
    assert_eq!(spans[0].trace_id, id);

    worker.stop();
    for dir in dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
