//! End-to-end serving test: train offline, persist a bundle, `LOAD` it into
//! a live TCP server, fire concurrent `SCORE` requests from several client
//! threads, and assert every response is *bitwise* identical to offline
//! `FittedFairPipeline::predict_proba` — plus that the score cache actually
//! absorbed repeated requests.
//!
//! The whole scenario runs across the front-end matrix — threaded,
//! single-reactor and a 4-thread reactor pool ([`Frontend::Threaded`],
//! [`Frontend::reactor(1)`](Frontend::reactor) and
//! [`Frontend::reactor(4)`](Frontend::reactor)): the connection-handling
//! designs must stay wire-compatible and bit-identical at every pool
//! width, and keeping all runs in CI is what enforces that differential.

use pfr::pipeline::{FairPipeline, FairPipelineConfig};
use pfr::serve::{BatcherConfig, Frontend, Server, ServerConfig};
use pfr_data::{split, synthetic, Dataset};
use pfr_graph::{fairness, SparseGraph};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn fairness_graph(ds: &Dataset) -> SparseGraph {
    let scores: Vec<f64> = ds
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    fairness::between_group_quantile_graph(ds.groups(), &scores, 5).unwrap()
}

/// One protocol exchange on an existing connection.
fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> String {
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

#[test]
fn concurrent_tcp_scores_match_offline_predictions_bitwise_reactor() {
    concurrent_tcp_scores_match_offline_predictions_bitwise(Frontend::reactor(1), "reactor1");
}

#[test]
fn concurrent_tcp_scores_match_offline_predictions_bitwise_reactor_pool() {
    concurrent_tcp_scores_match_offline_predictions_bitwise(Frontend::reactor(4), "reactor4");
}

#[test]
fn concurrent_tcp_scores_match_offline_predictions_bitwise_threaded() {
    concurrent_tcp_scores_match_offline_predictions_bitwise(Frontend::Threaded, "threaded");
}

fn concurrent_tcp_scores_match_offline_predictions_bitwise(frontend: Frontend, label: &str) {
    // --- Train offline on synthetic admissions data. -----------------------
    let dataset = synthetic::generate_default(77).unwrap();
    let split = split::train_test_split(&dataset, 0.3, 77).unwrap();
    let train = dataset.subset(&split.train).unwrap();
    let test = dataset.subset(&split.test).unwrap();

    let fitted = FairPipeline::new(FairPipelineConfig {
        gamma: 0.9,
        ..FairPipelineConfig::default()
    })
    .fit(&train, &fairness_graph(&train))
    .unwrap();

    // Offline ground truth, and the raw vectors a decision service would
    // receive (the learner features: regular attributes + protected).
    let expected = fitted.predict_proba(&test).unwrap();
    let (raw, _) = test.features_with_protected().unwrap();

    // --- Persist the bundle (one scratch file per front-end mode: the
    // mode variants of this test may run concurrently). ----------------------
    let bundle = fitted.into_bundle().unwrap();
    let path = std::env::temp_dir().join(format!("pfr_serve_e2e_{label}.bundle"));
    pfr::core::persistence::save_bundle(&bundle, &path).unwrap();

    // --- Serve it. ----------------------------------------------------------
    let server = Server::spawn(ServerConfig {
        frontend,
        workers: 4,
        batcher: BatcherConfig {
            max_batch: 16,
            linger: Duration::from_micros(500),
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let response = roundtrip(
            &mut reader,
            &mut writer,
            &format!("LOAD admissions {}", path.display()),
        );
        assert!(response.starts_with("OK loaded admissions@"), "{response}");
    }

    // --- 100 concurrent SCOREs from 4 client threads. -----------------------
    // All threads cover the same 25 rows but start at different offsets, so
    // every row is requested four times at *different* moments — later
    // requests must be absorbed by the cache rather than recomputed.
    let rows: Vec<Vec<f64>> = (0..25).map(|i| raw.row(i % raw.rows()).to_vec()).collect();
    let rows = Arc::new(rows);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let rows = Arc::clone(&rows);
            std::thread::spawn(move || -> Vec<(usize, f64)> {
                let stream = TcpStream::connect(addr).unwrap();
                stream.set_nodelay(true).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                (0..rows.len())
                    .map(|i| {
                        let idx = (i + t * 7) % rows.len();
                        let line = format!(
                            "SCORE admissions {}",
                            pfr::serve::protocol::format_numbers(&rows[idx])
                        );
                        let response = roundtrip(&mut reader, &mut writer, &line);
                        let mut parts = response.split_whitespace();
                        assert_eq!(parts.next(), Some("OK"), "{response}");
                        (idx, parts.next().unwrap().parse::<f64>().unwrap())
                    })
                    .collect()
            })
        })
        .collect();

    let per_thread: Vec<Vec<(usize, f64)>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    for scores in &per_thread {
        assert_eq!(scores.len(), 25);
        for (idx, score) in scores {
            let want = expected[idx % raw.rows()];
            assert_eq!(
                score.to_bits(),
                want.to_bits(),
                "served score {score} differs from offline prediction {want} for row {idx}"
            );
        }
    }

    // --- STATS must report the traffic and at least one cache hit. ----------
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let stats_line = roundtrip(&mut reader, &mut writer, "STATS");
    assert!(stats_line.starts_with("OK "), "{stats_line}");
    let field = |key: &str| -> u64 {
        stats_line
            .split_whitespace()
            .find_map(|pair| pair.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("no {key} in '{stats_line}'"))
            .parse()
            .unwrap()
    };
    assert_eq!(field("score_requests"), 100);
    assert_eq!(field("score_errors"), 0);
    assert!(
        field("cache_hits") >= 1,
        "expected repeated requests to hit the cache: {stats_line}"
    );
    assert!(field("cache_misses") <= 25 * 4 - field("cache_hits"));
    assert!(field("batches") >= 1);
    assert_eq!(roundtrip(&mut reader, &mut writer, "QUIT"), "OK bye");

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn server_survives_malformed_traffic_while_serving_reactor() {
    server_survives_malformed_traffic_while_serving(Frontend::reactor(1));
}

#[test]
fn server_survives_malformed_traffic_while_serving_reactor_pool() {
    server_survives_malformed_traffic_while_serving(Frontend::reactor(4));
}

#[test]
fn server_survives_malformed_traffic_while_serving_threaded() {
    server_survives_malformed_traffic_while_serving(Frontend::Threaded);
}

fn server_survives_malformed_traffic_while_serving(frontend: Frontend) {
    let dataset = synthetic::generate_default(78).unwrap();
    let fitted = FairPipeline::default()
        .fit(&dataset, &fairness_graph(&dataset))
        .unwrap();
    let expected = fitted.predict_proba(&dataset).unwrap();
    let (raw, _) = dataset.features_with_protected().unwrap();
    let bundle = fitted.into_bundle().unwrap();
    let text = pfr::core::persistence::bundle_to_string(&bundle);

    let server = Server::spawn(ServerConfig {
        frontend,
        ..ServerConfig::default()
    })
    .unwrap();
    server.registry().load_from_str("m", &text).unwrap();

    let stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    // Interleave garbage with a valid request; the valid one still works.
    assert!(roundtrip(&mut reader, &mut writer, "SCORE m not numbers").starts_with("ERR"));
    assert!(roundtrip(&mut reader, &mut writer, "LOAD m /no/such/file").starts_with("ERR"));
    assert!(roundtrip(&mut reader, &mut writer, "SCORE nobody 1 2").starts_with("ERR"));
    let line = format!(
        "SCORE m {}",
        pfr::serve::protocol::format_numbers(raw.row(0))
    );
    let response = roundtrip(&mut reader, &mut writer, &line);
    let score: f64 = response.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert_eq!(score.to_bits(), expected[0].to_bits());
    server.shutdown();
}
