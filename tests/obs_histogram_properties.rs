//! Property tests for the lock-free log-linear histogram behind every
//! latency series: quantile estimates stay within the documented `1/SUB`
//! relative-error bound of an exact sorted oracle, snapshot merging is
//! indistinguishable from one recorder having seen both streams (the
//! invariant the router's cluster-wide `METRICS` merge rests on), the
//! exposition round-trips bucket-exactly through `Scrape::parse`, and
//! concurrent recording loses no counts.

use pfr::obs::{LatencyHisto, MetricsRegistry, Scrape, SUB};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

/// Spreads raw uniform `u64`s across every magnitude decade: a plain
/// uniform draw almost never lands below 2^50, which would leave the
/// log-linear layout's small decades untested.
fn spread_magnitudes(raws: &[u64]) -> Vec<u64> {
    raws.iter().map(|&r| r >> (r % 57)).collect()
}

/// Exact nearest-rank quantile of `sorted` (the oracle `Snapshot::quantile`
/// approximates).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every reported quantile is ≥ the exact order statistic and
    /// overstates it by at most `1/SUB` (the bucket-width bound).
    #[test]
    fn quantiles_stay_within_the_relative_error_bound(
        raws in vec(0u64..u64::MAX, 1..250),
    ) {
        let values = spread_magnitudes(&raws);
        let histo = LatencyHisto::new();
        for &v in &values {
            histo.record(v);
        }
        let snap = histo.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&sorted, q);
            let estimate = snap.quantile(q);
            prop_assert!(estimate >= exact, "q={q}: {estimate} < exact {exact}");
            let bound = exact as f64 * (1.0 + 1.0 / SUB as f64);
            prop_assert!(
                estimate as f64 <= bound,
                "q={q}: {estimate} overstates exact {exact} beyond 1/{SUB}"
            );
        }
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
    }

    /// Merging two snapshots equals one recorder having seen both streams
    /// — bucket-for-bucket, not approximately. Values are bounded so the
    /// total stays below u64 wrap: past it the live recorder's relaxed
    /// `fetch_add` sum wraps while `merge` saturates, and neither is a
    /// meaningful nanosecond total anyway (~584 years of accumulated
    /// latency).
    #[test]
    fn merge_is_exactly_the_combined_stream(
        raws_a in vec(0u64..(1u64 << 50), 0..150),
        raws_b in vec(0u64..(1u64 << 50), 0..150),
    ) {
        let (a_vals, b_vals) = (spread_magnitudes(&raws_a), spread_magnitudes(&raws_b));
        let a = LatencyHisto::new();
        let b = LatencyHisto::new();
        let combined = LatencyHisto::new();
        for &v in &a_vals {
            a.record(v);
            combined.record(v);
        }
        for &v in &b_vals {
            b.record(v);
            combined.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        prop_assert_eq!(merged, combined.snapshot());
    }

    /// Rendering a histogram through the registry and parsing the text
    /// back reconstructs the bucket counts, count and sum exactly — the
    /// contract that makes the router's scatter-merge lossless.
    #[test]
    fn exposition_round_trips_bucket_exact(
        raws in vec(0u64..u64::MAX, 1..200),
    ) {
        let histo = Arc::new(LatencyHisto::new());
        for &v in &spread_magnitudes(&raws) {
            histo.record(v);
        }
        let registry = MetricsRegistry::new();
        registry.histogram("pfr_prop_ns", &[], Arc::clone(&histo));
        let scrape = Scrape::parse(&registry.render());
        let parsed = scrape.histogram("pfr_prop_ns").expect("histogram parsed back");
        let original = histo.snapshot();
        prop_assert_eq!(&parsed.buckets, &original.buckets);
        prop_assert_eq!(parsed.count, original.count);
        prop_assert_eq!(parsed.sum, original.sum);
    }
}

/// Concurrent recorders on one histogram lose no counts and corrupt no
/// buckets — the lock-free hot-path claim.
#[test]
fn concurrent_recording_loses_no_counts() {
    let histo = Arc::new(LatencyHisto::new());
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let histo = Arc::clone(&histo);
            std::thread::spawn(move || {
                for i in 0..25_000u64 {
                    histo.record((i << (t % 5)) + t);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let snap = histo.snapshot();
    assert_eq!(snap.count, 8 * 25_000);
    assert_eq!(snap.buckets.iter().sum::<u64>(), 8 * 25_000);
}
