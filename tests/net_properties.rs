//! Property tests for the `pfr-net` reactor primitives: the line-protocol
//! connection state machine must yield **identical frames regardless of how
//! the byte stream is split across readiness events**. TCP makes no framing
//! promises — a request can arrive one byte per `epoll_wait` wakeup or in
//! one slab — so frame extraction has to be a pure function of the stream.
//! The write side gets the mirrored property: the bytes a peer receives
//! are independent of how the kernel splits the drain into short writes.

use pfr::net::LineConn;
use proptest::prelude::*;
use std::io::{self, Read, Write};

/// A reader yielding `data` in chunks drawn from `sizes` (cycled), with a
/// `WouldBlock` after every chunk — the shape of a non-blocking socket
/// under edge-triggered readiness.
struct SplitReader {
    data: Vec<u8>,
    pos: usize,
    sizes: Vec<usize>,
    turn: usize,
    ready: bool,
}

impl SplitReader {
    fn new(data: Vec<u8>, sizes: Vec<usize>) -> SplitReader {
        SplitReader {
            data,
            pos: 0,
            sizes,
            turn: 0,
            ready: true,
        }
    }
}

impl Read for SplitReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if !self.ready {
            self.ready = true;
            return Err(io::ErrorKind::WouldBlock.into());
        }
        if self.pos == self.data.len() {
            return Ok(0); // EOF
        }
        let want = self.sizes[self.turn % self.sizes.len()].max(1);
        self.turn += 1;
        let n = want.min(self.data.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        self.ready = false;
        Ok(n)
    }
}

/// Drives a `LineConn` read side over `data` split per `sizes`, simulating
/// readiness events until EOF; returns every extracted frame.
fn frames_with_splits(data: &[u8], sizes: Vec<usize>) -> Vec<String> {
    let mut conn = LineConn::new(1 << 20);
    let mut src = SplitReader::new(data.to_vec(), sizes);
    let mut frames = Vec::new();
    loop {
        let outcome = conn.fill(&mut src).expect("in-bounds lines never error");
        while let Some(frame) = conn.next_line() {
            frames.push(frame);
        }
        if outcome.eof {
            return frames;
        }
    }
}

/// A writer accepting at most `caps[turn]` bytes per call with a
/// `WouldBlock` between calls — the shape of a full socket buffer.
struct SplitWriter {
    accepted: Vec<u8>,
    caps: Vec<usize>,
    turn: usize,
    ready: bool,
}

impl Write for SplitWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if !self.ready {
            self.ready = true;
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let n = self.caps[self.turn % self.caps.len()].max(1).min(buf.len());
        self.turn += 1;
        self.accepted.extend_from_slice(&buf[..n]);
        self.ready = false;
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Strategy: a protocol-shaped line (printable ASCII without `\n` / `\r`).
fn line_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 0..40)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reading one byte at a time, in random chunk sizes, or in one slab
    /// yields exactly the same frames.
    #[test]
    fn frames_are_invariant_under_read_splitting(
        lines in proptest::collection::vec(line_strategy(), 1..20),
        sizes in proptest::collection::vec(1usize..64, 1..8),
    ) {
        let mut stream = Vec::new();
        for line in &lines {
            stream.extend_from_slice(line.as_bytes());
            stream.push(b'\n');
        }
        let whole = frames_with_splits(&stream, vec![stream.len().max(1)]);
        prop_assert_eq!(&whole, &lines);
        let one_byte = frames_with_splits(&stream, vec![1]);
        prop_assert_eq!(&one_byte, &lines);
        let random = frames_with_splits(&stream, sizes);
        prop_assert_eq!(&random, &lines);
    }

    /// A trailing partial line (no newline yet) is held back identically
    /// under every split — no split boundary can leak a partial frame.
    #[test]
    fn partial_tails_never_leak_under_any_split(
        lines in proptest::collection::vec(line_strategy(), 1..10),
        tail in line_strategy(),
        sizes in proptest::collection::vec(1usize..32, 1..6),
    ) {
        let mut stream = Vec::new();
        for line in &lines {
            stream.extend_from_slice(line.as_bytes());
            stream.push(b'\n');
        }
        stream.extend_from_slice(tail.as_bytes()); // unterminated
        let got = frames_with_splits(&stream, sizes);
        prop_assert_eq!(&got, &lines, "the unterminated tail must not appear");
    }

    /// The byte stream a peer receives is independent of how the kernel
    /// splits the drain into short writes.
    #[test]
    fn flushed_bytes_are_invariant_under_write_splitting(
        lines in proptest::collection::vec(line_strategy(), 1..20),
        caps in proptest::collection::vec(1usize..48, 1..8),
    ) {
        let mut conn = LineConn::new(1 << 20);
        let mut expected = Vec::new();
        for line in &lines {
            conn.enqueue_line(line);
            expected.extend_from_slice(line.as_bytes());
            expected.push(b'\n');
        }
        let mut dst = SplitWriter { accepted: Vec::new(), caps, turn: 0, ready: true };
        let mut spins = 0;
        while !conn.flush_into(&mut dst).unwrap().drained {
            spins += 1;
            prop_assert!(spins < 1_000_000, "flush failed to make progress");
        }
        prop_assert_eq!(&dst.accepted, &expected);
        prop_assert_eq!(conn.pending_out(), 0);
    }

    /// CRLF and LF line endings parse to the same frames under any split —
    /// a client on a platform that writes `\r\n` is indistinguishable.
    #[test]
    fn crlf_and_lf_parse_identically(
        lines in proptest::collection::vec(line_strategy(), 1..10),
        sizes in proptest::collection::vec(1usize..16, 1..5),
    ) {
        let mut lf = Vec::new();
        let mut crlf = Vec::new();
        for line in &lines {
            lf.extend_from_slice(line.as_bytes());
            lf.push(b'\n');
            crlf.extend_from_slice(line.as_bytes());
            crlf.extend_from_slice(b"\r\n");
        }
        let a = frames_with_splits(&lf, sizes.clone());
        let b = frames_with_splits(&crlf, sizes);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &lines);
    }
}
