//! The asynchronous submission API's acceptance test: ONE caller thread
//! drives thousands of concurrently in-flight `submit_score` requests
//! against a live 3-shard cluster — far more concurrency than one thread
//! could ever reach with the blocking `score` call — and every completion
//! must be bitwise identical to offline `FittedFairPipeline` predictions
//! with zero failures.
//!
//! Three phases, all from a single thread:
//!
//! 1. **Ticket fan-out**: 5 000+ [`pfr::router::Ticket`]s held in flight
//!    simultaneously, then drained with `wait()`.
//! 2. **Completion queue**: another wave submitted through
//!    [`pfr::router::CompletionQueue`] and popped in completion order.
//! 3. **Batch tickets**: concurrent `submit_score_batch` scatters resolved
//!    out of submission order.
//!
//! The router's hot-key cache is disabled so every request genuinely
//! crosses the network — this is a transport stress test, not a cache test.

use pfr::pipeline::{FairPipeline, FairPipelineConfig};
use pfr::router::{LocalCluster, RouterConfig, TransportMode};
use pfr::serve::{Frontend, ServerConfig};
use pfr_data::{split, synthetic, Dataset};
use pfr_graph::{fairness, SparseGraph};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// In-flight tickets held simultaneously by the single caller thread.
/// The acceptance bar is 5 000; a little headroom guards the margin.
const IN_FLIGHT: usize = 6000;
/// Requests pushed through the completion queue in phase 2.
const QUEUED: usize = 2000;

fn fairness_graph(ds: &Dataset) -> SparseGraph {
    let scores: Vec<f64> = ds
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    fairness::between_group_quantile_graph(ds.groups(), &scores, 5).unwrap()
}

#[test]
fn one_caller_thread_sustains_thousands_of_in_flight_tickets() {
    // --- Offline ground truth. ---------------------------------------------
    let dataset = synthetic::generate_default(97).unwrap();
    let split = split::train_test_split(&dataset, 0.3, 97).unwrap();
    let train = dataset.subset(&split.train).unwrap();
    let test = dataset.subset(&split.test).unwrap();
    let fitted = FairPipeline::new(FairPipelineConfig {
        gamma: 0.9,
        ..FairPipelineConfig::default()
    })
    .fit(&train, &fairness_graph(&train))
    .unwrap();
    let expected = fitted.predict_proba(&test).unwrap();
    let (raw, _) = test.features_with_protected().unwrap();
    let bundle = fitted.into_bundle().unwrap();
    let rows: Vec<Vec<f64>> = (0..raw.rows()).map(|i| raw.row(i).to_vec()).collect();

    // --- A 3-shard cluster; reactor front ends behind a reactor router. ----
    let mut cluster = LocalCluster::boot(
        3,
        ServerConfig {
            frontend: Frontend::reactor(2),
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let router = cluster
        .router(RouterConfig {
            replication: 2,
            transport: TransportMode::Reactor,
            // Every request must cross the wire: this is a transport
            // concurrency test, and cache hits would fake the in-flight
            // count.
            hot_cache_capacity: 0,
            ..RouterConfig::default()
        })
        .unwrap();
    assert_eq!(cluster.place(&router, "admissions", &bundle).unwrap(), 2);
    router.verify("admissions").unwrap();

    // --- Phase 1: thousands of tickets in flight from one thread. ----------
    let mut tickets = Vec::with_capacity(IN_FLIGHT);
    for i in 0..IN_FLIGHT {
        let idx = (i * 13) % rows.len();
        tickets.push((idx, router.submit_score("admissions", &rows[idx])));
    }
    // All submissions are live before the first result is consumed: the
    // caller thread genuinely holds IN_FLIGHT concurrent requests.
    assert_eq!(tickets.len(), IN_FLIGHT);
    let mut failures = 0usize;
    for (idx, ticket) in tickets {
        match ticket.wait() {
            Ok(score) => assert_eq!(
                score.to_bits(),
                expected[idx].to_bits(),
                "in-flight ticket for row {idx} resolved to different bits"
            ),
            Err(e) => {
                eprintln!("ticket for row {idx} failed: {e}");
                failures += 1;
            }
        }
    }
    assert_eq!(failures, 0, "in-flight tickets must never fail");

    // --- Phase 2: the completion queue drains in completion order. ---------
    let queue = router.completion_queue();
    let mut tags: HashMap<u64, usize> = HashMap::with_capacity(QUEUED);
    for i in 0..QUEUED {
        let idx = (i * 29 + 7) % rows.len();
        tags.insert(queue.submit_score("admissions", &rows[idx]), idx);
    }
    assert_eq!(queue.in_flight(), QUEUED);
    let mut drained = 0usize;
    while !queue.is_empty() {
        let (tag, outcome) = queue.pop();
        let idx = *tags.get(&tag).expect("completion tag was issued here");
        let score = outcome.unwrap_or_else(|e| panic!("queued score {idx} failed: {e}"));
        assert_eq!(
            score.to_bits(),
            expected[idx].to_bits(),
            "completion-queue score for row {idx} differs from offline"
        );
        drained += 1;
    }
    assert_eq!(drained, QUEUED);
    assert_eq!(queue.in_flight(), 0);

    // --- Phase 3: batch tickets resolve out of submission order. -----------
    let mut batches: Vec<_> = (0..8)
        .map(|_| router.submit_score_batch("admissions", &rows))
        .collect();
    // Resolve the most recently submitted first — completion order must not
    // depend on submission order.
    while let Some(ticket) = batches.pop() {
        let deadline = Instant::now() + Duration::from_secs(60);
        let scores = match ticket.wait_deadline(deadline) {
            Ok(outcome) => outcome.unwrap(),
            Err(_) => panic!("batch ticket missed a 60s deadline"),
        };
        assert_eq!(scores.len(), rows.len());
        for (i, (got, want)) in scores.iter().zip(expected.iter()).enumerate() {
            assert_eq!(got.to_bits(), want.to_bits(), "batch row {i}");
        }
    }

    // The tier really did the work over the wire: no hot-cache absorption.
    let stats = router.stats();
    assert_eq!(stats.hot_cache_hits(), 0);
    assert!(stats.routed() >= (IN_FLIGHT + QUEUED) as u64);
}
