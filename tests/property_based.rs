//! Property-based integration tests (proptest) on the core invariants that
//! span multiple crates.

use pfr::core::{Pfr, PfrConfig};
use pfr::graph::{fairness, KnnGraphBuilder, LaplacianKind, SparseGraph};
use pfr::linalg::{Eigen, Matrix};
use pfr::metrics::{consistency, roc_auc, ConfusionMatrix};
use proptest::prelude::*;

/// Strategy: a small data matrix with values in a sane range.
fn data_matrix(max_rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    (4..max_rows).prop_flat_map(move |rows| {
        proptest::collection::vec(-50.0..50.0_f64, rows * cols).prop_map(move |data| {
            Matrix::from_vec(rows, cols, data).expect("shape matches the generated buffer")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The symmetric eigendecomposition reconstructs the matrix and produces
    /// orthonormal eigenvectors for arbitrary symmetric matrices.
    #[test]
    fn eigendecomposition_reconstructs(symmetric_seed in proptest::collection::vec(-10.0..10.0_f64, 36)) {
        let mut a = Matrix::zeros(6, 6);
        let mut idx = 0;
        for i in 0..6 {
            for j in i..6 {
                a[(i, j)] = symmetric_seed[idx];
                a[(j, i)] = symmetric_seed[idx];
                idx += 1;
            }
        }
        let eig = Eigen::decompose(&a).unwrap();
        let rec = eig.reconstruct().unwrap();
        prop_assert!(rec.sub(&a).unwrap().max_abs() < 1e-7);
        let vtv = eig.eigenvectors.transpose_matmul(&eig.eigenvectors).unwrap();
        prop_assert!(vtv.sub(&Matrix::identity(6)).unwrap().max_abs() < 1e-8);
    }

    /// Graph Laplacians are positive semi-definite: the smoothness loss and
    /// the quadratic form are non-negative for any representation.
    #[test]
    fn laplacian_quadratic_form_is_psd(x in data_matrix(12, 3), k in 1usize..3) {
        let k = k.min(x.rows() - 1).max(1);
        let wx = KnnGraphBuilder::new(k).build(&x).unwrap();
        prop_assert!(wx.smoothness_loss(&x).unwrap() >= -1e-9);
        let q = wx.quadratic_form(&x, LaplacianKind::Unnormalized).unwrap();
        // Diagonal of a PSD matrix is non-negative.
        for d in q.diag() {
            prop_assert!(d >= -1e-9);
        }
    }

    /// PFR's projection is orthonormal and its objective is non-negative for
    /// any data, any valid gamma and any fairness pairing.
    #[test]
    fn pfr_projection_is_orthonormal(
        x in data_matrix(16, 3),
        gamma in 0.0..=1.0_f64,
        pair_seed in any::<u64>(),
    ) {
        let n = x.rows();
        let wx = KnnGraphBuilder::new(2.min(n - 1).max(1)).build(&x).unwrap();
        // Build a pseudo-random sparse fairness graph.
        let mut wf = SparseGraph::new(n);
        let mut state = pair_seed | 1;
        for i in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state as usize) % n;
            if i != j {
                wf.add_edge(i, j, 1.0).unwrap();
            }
        }
        let model = Pfr::new(PfrConfig { gamma, dim: 2, ..PfrConfig::default() })
            .fit(&x, &wx, &wf)
            .unwrap();
        let v = model.projection();
        let vtv = v.transpose_matmul(v).unwrap();
        prop_assert!(vtv.sub(&Matrix::identity(2)).unwrap().max_abs() < 1e-8);
        prop_assert!(model.objective() >= -1e-9);
        // Transform stays finite.
        let z = model.transform(&x).unwrap();
        prop_assert!(z.as_slice().iter().all(|v| v.is_finite()));
    }

    /// Consistency is always in [0, 1] and equals 1 for constant predictions.
    #[test]
    fn consistency_bounds(
        preds in proptest::collection::vec(0u8..=1, 8),
        constant in 0u8..=1,
    ) {
        let n = preds.len();
        let mut g = SparseGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 1.0).unwrap();
        }
        let as_f: Vec<f64> = preds.iter().map(|&p| p as f64).collect();
        let c = consistency(&g, &as_f).unwrap();
        prop_assert!((0.0..=1.0).contains(&c));
        let constant_preds = vec![constant as f64; n];
        prop_assert!((consistency(&g, &constant_preds).unwrap() - 1.0).abs() < 1e-12);
    }

    /// AUC is invariant under strictly monotone transformations of the score.
    #[test]
    fn auc_is_rank_based(scores in proptest::collection::vec(0.0..1.0_f64, 10)) {
        let labels: Vec<u8> = (0..10).map(|i| (i % 2) as u8).collect();
        let base = roc_auc(&labels, &scores).unwrap();
        let transformed: Vec<f64> = scores.iter().map(|s| (3.0 * s).exp()).collect();
        let after = roc_auc(&labels, &transformed).unwrap();
        prop_assert!((base - after).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&base));
    }

    /// Confusion-matrix counts always sum to the number of examples and the
    /// derived rates stay in [0, 1].
    #[test]
    fn confusion_matrix_counts_are_consistent(
        labels in proptest::collection::vec(0u8..=1, 1..40),
    ) {
        let preds: Vec<u8> = labels.iter().map(|&y| 1 - y).collect();
        let cm = ConfusionMatrix::from_predictions(&labels, &preds).unwrap();
        prop_assert_eq!(cm.total(), labels.len());
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!((0.0..=1.0).contains(&cm.positive_prediction_rate()));
    }

    /// The between-group quantile graph never links individuals of the same
    /// group, for arbitrary group assignments and scores.
    #[test]
    fn quantile_graph_is_strictly_cross_group(
        groups in proptest::collection::vec(0usize..3, 6..24),
        quantiles in 1usize..6,
    ) {
        let scores: Vec<f64> = (0..groups.len()).map(|i| (i as f64 * 7.3) % 5.0).collect();
        let g = fairness::between_group_quantile_graph(&groups, &scores, quantiles).unwrap();
        for e in g.edges() {
            prop_assert_ne!(groups[e.i as usize], groups[e.j as usize]);
        }
    }
}
