//! Crash-recovery test for the journaled server: train offline, `PUSH` the
//! bundle into a journaling server over TCP, score real traffic, then kill
//! the server **without any graceful shutdown** (`mem::forget` — no `Drop`,
//! no final fsync beyond what each request already got) and start a fresh
//! server on the same journal directory. `recover_from_journal` must
//! rebuild the registry from the inlined bundle frames and re-warm the
//! score cache so the replayed vectors are served as immediate cache hits,
//! bitwise identical to both the pre-crash responses and offline
//! `predict_proba`.
//!
//! Runs once per front-end architecture, like the other end-to-end tests.

use pfr::journal::JournalConfig;
use pfr::pipeline::{FairPipeline, FairPipelineConfig};
use pfr::serve::{Frontend, Server, ServerConfig};
use pfr_data::{synthetic, Dataset};
use pfr_graph::{fairness, SparseGraph};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

fn fairness_graph(ds: &Dataset) -> SparseGraph {
    let scores: Vec<f64> = ds
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    fairness::between_group_quantile_graph(ds.groups(), &scores, 5).unwrap()
}

fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> String {
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

fn scratch_journal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pfr_crash_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn hard_crash_then_journal_replay_restores_state_reactor() {
    hard_crash_then_journal_replay_restores_state(Frontend::reactor(1));
}

#[test]
fn hard_crash_then_journal_replay_restores_state_threaded() {
    hard_crash_then_journal_replay_restores_state(Frontend::Threaded);
}

fn hard_crash_then_journal_replay_restores_state(frontend: Frontend) {
    // --- Offline ground truth. ---------------------------------------------
    let dataset = synthetic::generate_default(79).unwrap();
    let fitted = FairPipeline::new(FairPipelineConfig {
        gamma: 0.9,
        ..FairPipelineConfig::default()
    })
    .fit(&dataset, &fairness_graph(&dataset))
    .unwrap();
    let expected = fitted.predict_proba(&dataset).unwrap();
    let (raw, _) = dataset.features_with_protected().unwrap();
    let bundle_text = pfr::core::persistence::bundle_to_string(&fitted.into_bundle().unwrap());

    let journal_dir = scratch_journal_dir(&format!("{frontend:?}"));
    let journal_config = JournalConfig::new(journal_dir.clone());
    let server_config = || ServerConfig {
        frontend,
        journal: Some(journal_config.clone()),
        ..ServerConfig::default()
    };

    // --- Phase A: a journaling server takes real traffic. -------------------
    // The model arrives over the wire (`PUSH`): in-process registry loads
    // bypass the handlers and are deliberately not journaled.
    let server_a = Server::spawn(server_config()).unwrap();
    let score_lines: Vec<String> = [0, 1, 2, 3, 0, 1, 2, 3] // repeats exercise the cache
        .iter()
        .map(|&i| {
            format!(
                "SCORE admissions {}",
                pfr::serve::protocol::format_numbers(raw.row(i))
            )
        })
        .collect();
    let phase_a: Vec<String> = {
        let (mut reader, mut writer) = connect(server_a.addr());
        write!(
            writer,
            "PUSH admissions {}\n{bundle_text}",
            bundle_text.len()
        )
        .unwrap();
        writer.flush().unwrap();
        let mut pushed = String::new();
        reader.read_line(&mut pushed).unwrap();
        assert!(pushed.starts_with("OK loaded admissions@"), "{pushed}");
        let transform = format!(
            "TRANSFORM admissions {}",
            pfr::serve::protocol::format_numbers(raw.row(0))
        );
        assert!(roundtrip(&mut reader, &mut writer, &transform).starts_with("OK "));
        score_lines
            .iter()
            .map(|line| roundtrip(&mut reader, &mut writer, line))
            .collect()
    };
    for response in &phase_a {
        assert!(response.starts_with("OK "), "{response}");
    }

    // --- Hard crash: no shutdown, no Drop, no final flush. ------------------
    // Every response above was only sent after its frame was fsynced
    // (`FsyncPolicy::PerRecord`, the default), so the journal on disk must
    // already contain everything the clients saw acknowledged.
    std::mem::forget(server_a);

    // --- Phase B: a fresh server on the same journal directory. -------------
    let server_b = Server::spawn(server_config()).unwrap();
    let report = server_b.recover_from_journal().unwrap();
    assert_eq!(report.frames, 10, "1 push + 1 transform + 8 scores");
    assert_eq!(report.installs, 1);
    assert_eq!(report.transforms, 1);
    assert_eq!(report.scores, 8);
    assert_eq!(report.warmed, 4, "4 distinct vectors were scored");
    assert_eq!(report.skipped, 0);
    assert_eq!(report.last_seq, 10);

    // The registry holds the pushed model again, scoring exactly as before.
    let model = server_b
        .registry()
        .get("admissions")
        .expect("replay reinstalls the pushed model");
    assert_eq!(model.num_features(), raw.cols());

    // Replayed vectors are served from the warmed cache — zero misses — and
    // every response is byte-identical to the pre-crash ones, which were
    // themselves bitwise equal to offline predictions.
    let phase_b: Vec<String> = {
        let (mut reader, mut writer) = connect(server_b.addr());
        score_lines
            .iter()
            .map(|line| roundtrip(&mut reader, &mut writer, line))
            .collect()
    };
    assert_eq!(phase_a, phase_b, "recovery must not change a single byte");
    for (i, response) in phase_b.iter().enumerate() {
        let score: f64 = response.split_whitespace().nth(1).unwrap().parse().unwrap();
        let want = expected[[0, 1, 2, 3, 0, 1, 2, 3][i]];
        assert_eq!(score.to_bits(), want.to_bits(), "request {i}");
    }
    assert_eq!(
        server_b.stats().cache_misses(),
        0,
        "every replayed vector must be an immediate hit"
    );
    assert_eq!(server_b.stats().cache_hits(), score_lines.len() as u64);

    // STATS exposes the journal counters, and the re-scored traffic was
    // itself journaled: the sequence advanced past the replayed history.
    let (mut reader, mut writer) = connect(server_b.addr());
    let stats_line = roundtrip(&mut reader, &mut writer, "STATS");
    let journal_seq: u64 = stats_line
        .split_whitespace()
        .find_map(|pair| pair.strip_prefix("journal_seq="))
        .unwrap_or_else(|| panic!("no journal_seq in '{stats_line}'"))
        .parse()
        .unwrap();
    assert_eq!(journal_seq, 18, "10 replayed + 8 re-scored");

    server_b.shutdown();
    let _ = std::fs::remove_dir_all(&journal_dir);
}
