//! End-to-end online-refit scenario — the PR's acceptance test:
//!
//! 1. A journaling server starts and a serving bundle is installed over the
//!    wire (`PUSH`), so the install itself is journaled.
//! 2. A client streams stationary `SCORE` traffic; the refit loop tails the
//!    journal, folds the frames, and stays quiet (no drift).
//! 3. The traffic distribution shifts. A second client thread keeps firing
//!    drifted requests *continuously* — including across the hot-swap —
//!    and every single response must come back `OK` (zero dropped or
//!    failed in-flight requests).
//! 4. The refit loop detects the drift, warm-refits from the serving
//!    projection, passes the shadow gate on the held-back slice, and ships
//!    the candidate back through the wire-level `PUSH` path.
//! 5. Post-swap, served scores are **bitwise** equal to offline
//!    predictions of the refreshed bundle, and the refit counters ride the
//!    server's own `STATS` line.

use pfr::core::persistence::{
    bundle_from_string, bundle_to_string, ClassifierSection, ModelBundle, StandardizerParams,
};
use pfr::core::{Pfr, PfrConfig};
use pfr::graph::{fairness, KnnGraphBuilder};
use pfr::journal::{FsyncPolicy, JournalConfig};
use pfr::linalg::stats::Standardizer;
use pfr::linalg::Matrix;
use pfr::opt::{LogisticRegression, LogisticRegressionConfig};
use pfr::refit::{GateConfig, RefitConfig, RefitLoop, RefitModelConfig, RefitStep, SwapTarget};
use pfr::serve::{Frontend, ServableModel, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MODEL: &str = "risk";

/// Four-feature traffic: protected group flag in column 0, two blobs per
/// group along the rest. `shift` moves the blob centres — the drift knob.
fn traffic(n: usize, seed: u64, shift: f64) -> Matrix {
    let mut state = seed.max(1);
    let mut uniform = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state as f64 / u64::MAX as f64
    };
    let mut w = Matrix::zeros(n, 4);
    for i in 0..n {
        let blob = if uniform() > 0.5 { 1.0 } else { -1.0 };
        w[(i, 0)] = (i % 2) as f64;
        for j in 1..4 {
            w[(i, j)] = shift + blob + 0.3 * (uniform() - 0.5);
        }
    }
    w
}

/// Fits the initial serving bundle offline on stationary data: standardize,
/// kNN data graph, between-group quantile fairness graph, cold PFR fit,
/// logistic head on the blob sign.
fn serving_bundle(window: &Matrix) -> ModelBundle {
    let (standardizer, x) = Standardizer::fit_transform(window).unwrap();
    let wx = KnnGraphBuilder::new(4).build(&x).unwrap();
    let groups: Vec<usize> = (0..window.rows())
        .map(|i| (window[(i, 0)] > 0.5) as usize)
        .collect();
    let ranking: Vec<f64> = (0..window.rows()).map(|i| window[(i, 1)]).collect();
    let wf = fairness::between_group_quantile_graph(&groups, &ranking, 5).unwrap();
    let model = Pfr::new(PfrConfig {
        gamma: 0.5,
        dim: 2,
        ..PfrConfig::default()
    })
    .fit(&x, &wx, &wf)
    .unwrap();
    let z = model.transform(&x).unwrap();
    let labels: Vec<u8> = (0..window.rows())
        .map(|i| (window[(i, 1)] > 0.0) as u8)
        .collect();
    let mut head = LogisticRegression::new(LogisticRegressionConfig::default());
    head.fit(&z, &labels).unwrap();
    ModelBundle {
        model,
        standardizer: Some(StandardizerParams {
            means: standardizer.means().to_vec(),
            stds: standardizer.stds().to_vec(),
        }),
        classifier: Some(ClassifierSection {
            threshold: 0.5,
            text: head.to_text().unwrap(),
        }),
    }
}

fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> String {
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

fn score_line(row: &[f64]) -> String {
    let values: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
    format!("SCORE {MODEL} {}", values.join(" "))
}

#[test]
fn drifted_traffic_triggers_gated_hot_swap_with_bitwise_consistency() {
    let journal_dir = std::env::temp_dir().join(format!("pfr_refit_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);

    // --- Serving tier with a write-ahead journal. --------------------------
    let mut journal_config = JournalConfig::new(journal_dir.clone());
    journal_config.fsync = FsyncPolicy::Never;
    let server = Server::spawn(ServerConfig {
        frontend: Frontend::Threaded,
        workers: 2,
        journal: Some(journal_config),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // --- Install the serving bundle over the wire (journaled PUSH). --------
    let baseline = traffic(192, 11, 0.0);
    let serving = serving_bundle(&baseline);
    let serving_text = bundle_to_string(&serving);
    let (mut reader, mut writer) = connect(addr);
    {
        write!(
            writer,
            "PUSH {MODEL} {}\n{serving_text}",
            serving_text.len()
        )
        .unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(response.starts_with("OK loaded"), "PUSH failed: {response}");
    }

    // --- Refit loop tailing that journal, swapping over the same wire. -----
    let mut config = RefitConfig::new(&journal_dir, MODEL);
    config.window_rows = 192;
    config.holdback_rows = 64;
    config.holdback_every = 4;
    config.min_refit_rows = 96;
    config.check_every_frames = 32;
    config.cooldown_frames = 64;
    config.model_config = RefitModelConfig {
        dim: 2,
        knn_k: 4,
        ..RefitModelConfig::default()
    };
    config.gate = GateConfig {
        min_agreement: 0.7,
        max_mean_abs_diff: 0.35,
        min_rows: 8,
    };
    let mut refit =
        RefitLoop::new(config, &serving_text, SwapTarget::Backends(vec![addr])).unwrap();

    // The refit counters ride the server's own STATS line.
    let stats = refit.stats();
    server.attach_stats_source(Arc::new({
        let stats = Arc::clone(&stats);
        move || stats.to_line()
    }));

    // --- Phase 1: stationary traffic. No refit should trigger. -------------
    let stationary = traffic(160, 23, 0.0);
    for i in 0..stationary.rows() {
        let response = roundtrip(&mut reader, &mut writer, &score_line(stationary.row(i)));
        assert!(
            response.starts_with("OK "),
            "stationary score failed: {response}"
        );
    }
    while refit.pump(64).unwrap() > 0 {}
    let step = refit.maybe_refit().unwrap();
    assert!(
        matches!(step, RefitStep::Idle | RefitStep::Stationary(_)),
        "stationary traffic must not trigger a swap: {step:?}"
    );
    assert_eq!(stats.refits_swapped(), 0);

    // --- Phase 2: drifted traffic, streaming continuously across the swap.
    let stop = Arc::new(AtomicBool::new(false));
    let sent = Arc::new(AtomicUsize::new(0));
    let failed = Arc::new(AtomicUsize::new(0));
    let client = std::thread::spawn({
        let (stop, sent, failed) = (Arc::clone(&stop), Arc::clone(&sent), Arc::clone(&failed));
        let drifted = traffic(256, 47, 0.8);
        move || {
            let (mut reader, mut writer) = connect(addr);
            let mut i = 0;
            while !stop.load(Ordering::Relaxed) {
                let response = roundtrip(&mut reader, &mut writer, &score_line(drifted.row(i)));
                sent.fetch_add(1, Ordering::Relaxed);
                if !response.starts_with("OK ") {
                    failed.fetch_add(1, Ordering::Relaxed);
                }
                i = (i + 1) % drifted.rows();
            }
        }
    });

    // Drive the loop until the candidate ships; the client keeps firing the
    // whole time, so the swap happens under live traffic.
    let deadline = Instant::now() + Duration::from_secs(120);
    let swapped = loop {
        assert!(
            Instant::now() < deadline,
            "refit did not swap within deadline"
        );
        let pumped = refit.pump(256).unwrap();
        match refit.maybe_refit().unwrap() {
            RefitStep::Swapped {
                drift,
                gate,
                placed,
                bundle_text,
            } => break (drift, gate, placed, bundle_text),
            _ if pumped == 0 => std::thread::sleep(Duration::from_millis(10)),
            _ => {}
        }
    };
    stop.store(true, Ordering::Relaxed);
    client.join().unwrap();

    let (drift, gate, placed, bundle_text) = swapped;
    assert!(drift.drifted && drift.max_mean_shift > 0.5);
    assert!(gate.passed, "shipped candidate must have passed the gate");
    assert_eq!(placed, 1, "exactly one backend should accept the push");
    assert!(sent.load(Ordering::Relaxed) > 0, "client sent no traffic");
    assert_eq!(
        failed.load(Ordering::Relaxed),
        0,
        "in-flight requests failed across the hot-swap"
    );

    // --- Post-swap: served scores are bitwise the refreshed bundle's. ------
    let refreshed = bundle_from_string(&bundle_text).unwrap();
    let offline = ServableModel::from_bundle("offline", &refreshed).unwrap();
    let eval = traffic(32, 91, 0.8);
    let expected = offline.score_batch(&eval).unwrap();
    let (mut reader, mut writer) = connect(addr);
    for (i, &expected_p) in expected.iter().enumerate() {
        let response = roundtrip(&mut reader, &mut writer, &score_line(eval.row(i)));
        let mut parts = response.split_whitespace();
        assert_eq!(
            parts.next(),
            Some("OK"),
            "post-swap score failed: {response}"
        );
        let probability: f64 = parts.next().unwrap().parse().unwrap();
        let label: u8 = parts.next().unwrap().parse().unwrap();
        assert_eq!(
            probability.to_bits(),
            expected_p.to_bits(),
            "row {i}: served {probability} != offline {expected_p}"
        );
        assert_eq!(label, u8::from(expected_p >= offline.threshold()));
    }

    // --- The STATS line carries the refit counters next to journal_seq. ----
    let stats_line = roundtrip(&mut reader, &mut writer, "STATS");
    assert!(
        stats_line.contains("journal_seq="),
        "missing journal stats: {stats_line}"
    );
    assert!(
        stats_line.contains("refits_swapped=1"),
        "missing refit stats: {stats_line}"
    );
    assert!(
        stats_line.contains("refit_cursor_seq="),
        "missing cursor position: {stats_line}"
    );

    drop(reader);
    drop(writer);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&journal_dir);
}
