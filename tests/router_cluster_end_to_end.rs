//! The routing-tier acceptance test: boot a 3-shard local cluster behind a
//! router, fire 200 concurrent `SCORE` requests from 8 client threads,
//! kill one replica backend mid-stream, and assert that *every* request
//! still succeeds with scores bitwise identical to offline
//! `FittedFairPipeline` predictions — a backend loss degrades capacity,
//! never correctness.
//!
//! The scenario runs across the architecture matrix: the event-driven
//! stack at two reactor-pool widths (1-thread and 4-thread serve front
//! ends behind a reactor-transport router) and the original
//! thread-per-connection stack. All architectures must stay bitwise
//! interchangeable under concurrent load *and* mid-stream failure; CI runs
//! the full matrix to enforce the differential.

use pfr::pipeline::{FairPipeline, FairPipelineConfig};
use pfr::router::{BreakerConfig, ConnConfig, LocalCluster, RouterConfig, TransportMode};
use pfr::serve::{Frontend, ServerConfig};
use pfr_data::{split, synthetic, Dataset};
use pfr_graph::{fairness, SparseGraph};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn fairness_graph(ds: &Dataset) -> SparseGraph {
    let scores: Vec<f64> = ds
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    fairness::between_group_quantile_graph(ds.groups(), &scores, 5).unwrap()
}

#[test]
fn cluster_survives_a_backend_kill_with_bitwise_identical_scores_reactor() {
    cluster_survives_a_backend_kill(Frontend::reactor(1), TransportMode::Reactor);
}

#[test]
fn cluster_survives_a_backend_kill_with_bitwise_identical_scores_reactor_pool() {
    cluster_survives_a_backend_kill(Frontend::reactor(4), TransportMode::Reactor);
}

#[test]
fn cluster_survives_a_backend_kill_with_bitwise_identical_scores_threaded() {
    cluster_survives_a_backend_kill(Frontend::Threaded, TransportMode::Threaded);
}

fn cluster_survives_a_backend_kill(frontend: Frontend, transport: TransportMode) {
    // --- Offline ground truth. ---------------------------------------------
    let dataset = synthetic::generate_default(91).unwrap();
    let split = split::train_test_split(&dataset, 0.3, 91).unwrap();
    let train = dataset.subset(&split.train).unwrap();
    let test = dataset.subset(&split.test).unwrap();
    let fitted = FairPipeline::new(FairPipelineConfig {
        gamma: 0.9,
        ..FairPipelineConfig::default()
    })
    .fit(&train, &fairness_graph(&train))
    .unwrap();
    let expected = fitted.predict_proba(&test).unwrap();
    let (raw, _) = test.features_with_protected().unwrap();
    let bundle = fitted.into_bundle().unwrap();

    // --- A 3-shard cluster with replication 2 and fast failure detection. --
    let mut cluster = LocalCluster::boot(
        3,
        ServerConfig {
            frontend,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let router = Arc::new(
        cluster
            .router(RouterConfig {
                replication: 2,
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    probation: Duration::from_millis(250),
                },
                conn: ConnConfig {
                    connect_timeout: Duration::from_millis(250),
                    io_timeout: Duration::from_secs(5),
                    max_idle: 8,
                },
                transport,
                health_interval: Some(Duration::from_millis(25)),
                ..RouterConfig::default()
            })
            .unwrap(),
    );
    assert_eq!(cluster.place(&router, "admissions", &bundle).unwrap(), 2);
    // Both replicas serve bit-identical content before traffic starts.
    let digest = router.verify("admissions").unwrap();
    assert_eq!(digest.len(), 16);

    // --- 200 concurrent scores; a replica dies mid-stream. -----------------
    const THREADS: usize = 8;
    const PER_THREAD: usize = 25;
    let rows: Vec<Vec<f64>> = (0..PER_THREAD)
        .map(|i| raw.row(i % raw.rows()).to_vec())
        .collect();
    let rows = Arc::new(rows);
    let completed = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let router = Arc::clone(&router);
            let rows = Arc::clone(&rows);
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || -> Vec<(usize, f64)> {
                (0..rows.len())
                    .map(|i| {
                        let idx = (i + t * 3) % rows.len();
                        let score = router
                            .score("admissions", &rows[idx])
                            .unwrap_or_else(|e| panic!("request failed after kill: {e}"));
                        completed.fetch_add(1, Ordering::Relaxed);
                        (idx, score)
                    })
                    .collect()
            })
        })
        .collect();

    // Wait until the stream is genuinely in flight, then kill one replica
    // of the model's shard.
    while completed.load(Ordering::Relaxed) < THREADS * PER_THREAD / 4 {
        std::thread::yield_now();
    }
    let victim = router.replica_set("admissions")[0];
    assert!(cluster.kill(victim));

    let per_thread: Vec<Vec<(usize, f64)>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(cluster.live(), 2);
    let mut total = 0;
    for scores in &per_thread {
        for (idx, score) in scores {
            total += 1;
            let want = expected[idx % raw.rows()];
            assert_eq!(
                score.to_bits(),
                want.to_bits(),
                "routed score {score} differs from offline prediction {want} for row {idx}"
            );
        }
    }
    assert_eq!(total, THREADS * PER_THREAD);

    // --- Scatter-gather still reassembles correctly on the survivors. ------
    let all_rows: Vec<Vec<f64>> = (0..raw.rows()).map(|i| raw.row(i).to_vec()).collect();
    let batch = router.score_batch("admissions", &all_rows).unwrap();
    assert_eq!(batch.len(), expected.len());
    for (i, (got, want)) in batch.iter().zip(expected.iter()).enumerate() {
        assert_eq!(got.to_bits(), want.to_bits(), "batch row {i}");
    }
    // The survivors still agree on content.
    assert_eq!(router.verify("admissions").unwrap(), digest);
    // The dead backend was discovered and ejected (by probes or traffic).
    assert!(
        router.backend(victim).unwrap().breaker().ejections() >= 1,
        "the killed replica was never ejected"
    );
}
