//! Integration tests asserting the paper's *qualitative* findings using the
//! experiment drivers (fast mode), i.e. the "shape" of the evaluation:
//! who wins on which metric and in which direction the γ knob moves things.

use pfr::eval::experiments::{gamma, representations, table1, tradeoff};
use pfr::eval::pipeline::DatasetSpec;

#[test]
fn table1_statistics_match_the_papers_setting() {
    let table = table1::run(true, 42).unwrap();
    assert_eq!(table.rows.len(), 3);
    let synthetic = &table.rows[0];
    assert_eq!(synthetic.size_s0, synthetic.size_s1);
    // Base rates near 0.5 on the synthetic data.
    assert!((synthetic.base_rate_s0 - 0.5).abs() < 0.1);
    // Crime: protected group has the much higher base rate (0.86 vs 0.35).
    let crime = &table.rows[1];
    assert!(crime.base_rate_s1 > 0.75);
    assert!(crime.base_rate_s0 < 0.45);
    // Compas: protected group base rate is higher (0.55 vs 0.41).
    let compas = &table.rows[2];
    assert!(compas.base_rate_s1 > compas.base_rate_s0);
}

#[test]
fn figure1_pfr_maps_equally_deserving_individuals_closest() {
    let fig = representations::run(true, 42).unwrap();
    let original = fig
        .per_method
        .iter()
        .find(|g| g.method == "Original")
        .unwrap();
    let pfr = fig.per_method.iter().find(|g| g.method == "PFR").unwrap();
    // The paper's two observations: learned representations mix the groups,
    // and PFR places equally deserving individuals of different groups close.
    assert!(pfr.group_separation <= original.group_separation + 1e-9);
    assert!(pfr.deserving_pair_distance < original.deserving_pair_distance);
}

#[test]
fn figure2_and_3_pfr_wins_on_fairness_without_losing_utility_on_synthetic_data() {
    let results = tradeoff::run_tradeoff(DatasetSpec::Synthetic, true, 42).unwrap();
    let original = results.method("Original").unwrap();
    let pfr = results.method("PFR").unwrap();
    // Individual fairness w.r.t. WF improves markedly.
    assert!(
        pfr.consistency_wf > original.consistency_wf,
        "PFR Consistency(WF) {} should beat Original {}",
        pfr.consistency_wf,
        original.consistency_wf
    );
    // Utility does not collapse (the fairness edges agree with ground truth).
    assert!(pfr.auc >= original.auc - 0.05);
    // Group fairness improves even though PFR does not optimize it.
    assert!(
        pfr.group_report.demographic_parity_gap() < original.group_report.demographic_parity_gap()
    );
    assert!(pfr.group_report.equalized_odds_gap() < original.group_report.equalized_odds_gap());
}

#[test]
fn figure4_gamma_increases_fairness_consistency_on_synthetic_data() {
    let sweep = gamma::run(DatasetSpec::Synthetic, true, 42).unwrap();
    let first = sweep.rows.first().unwrap();
    let last = sweep.rows.last().unwrap();
    assert!(last.consistency_wf >= first.consistency_wf - 1e-9);
    // Consistency w.r.t. WX moves the other way (or stays flat).
    assert!(last.consistency_wx <= first.consistency_wx + 0.05);
}

#[test]
fn figure5_6_crime_pfr_narrows_group_gaps() {
    let results = tradeoff::run_tradeoff(DatasetSpec::Crime, true, 42).unwrap();
    let original = results.method("Original +").unwrap();
    let pfr = results.method("PFR").unwrap();
    let hardt = results.method("Hardt +").unwrap();
    // PFR narrows the equalized-odds gap relative to the Original baseline.
    assert!(
        pfr.group_report.equalized_odds_gap() <= original.group_report.equalized_odds_gap() + 0.05
    );
    // Hardt post-processing reduces the equalized-odds gap, as designed.
    assert!(
        hardt.group_report.equalized_odds_gap()
            <= original.group_report.equalized_odds_gap() + 0.02
    );
    // The utility / individual-fairness numbers are in a sane range.
    assert!(pfr.auc > 0.55);
    assert!(pfr.consistency_wf > 0.5);
}

#[test]
fn figure8_9_compas_pfr_keeps_utility_and_improves_parity() {
    let results = tradeoff::run_tradeoff(DatasetSpec::Compas, true, 42).unwrap();
    let original = results.method("Original +").unwrap();
    let pfr = results.method("PFR").unwrap();
    // The paper: "PFR performs similarly as the other representation learning
    // methods in terms of utility" — allow a modest slack.
    assert!(pfr.auc >= original.auc - 0.08);
    // And improves demographic parity relative to the Original baseline.
    assert!(
        pfr.group_report.demographic_parity_gap()
            <= original.group_report.demographic_parity_gap() + 0.02
    );
}

#[test]
fn figure10_gamma_sweep_on_compas_is_monotone_in_the_expected_directions() {
    let sweep = gamma::run(DatasetSpec::Compas, true, 42).unwrap();
    let first = sweep.rows.first().unwrap();
    let last = sweep.rows.last().unwrap();
    // Consistency(WF) does not decrease; AUC does not collapse.
    assert!(last.consistency_wf >= first.consistency_wf - 0.03);
    assert!(last.auc_any >= first.auc_any - 0.08);
}
