//! Cross-crate integration tests: the full PFR pipeline (data → graphs →
//! representation → classifier → metrics) on each of the paper's datasets.

use pfr::core::{Pfr, PfrConfig};
use pfr::data::{compas, crime, split, synthetic, Dataset};
use pfr::graph::{fairness, KnnGraphBuilder, SparseGraph};
use pfr::linalg::stats::Standardizer;
use pfr::linalg::Matrix;
use pfr::metrics::{consistency, roc_auc, GroupFairnessReport};
use pfr::opt::LogisticRegression;

/// Runs the full pipeline and returns (AUC, Consistency(WF), DP gap).
fn run_pipeline(
    dataset: &Dataset,
    wf_builder: impl Fn(&Dataset) -> SparseGraph,
    gamma: f64,
) -> (f64, f64, f64) {
    let split = split::train_test_split(dataset, 0.3, 5).unwrap();
    let train = dataset.subset(&split.train).unwrap();
    let test = dataset.subset(&split.test).unwrap();

    let (train_raw, _) = train.features_with_protected().unwrap();
    let (test_raw, _) = test.features_with_protected().unwrap();
    let (standardizer, x_train) = Standardizer::fit_transform(&train_raw).unwrap();
    let x_test = standardizer.transform(&test_raw).unwrap();
    let (_, x_train_masked) = Standardizer::fit_transform(train.features()).unwrap();
    let wx = KnnGraphBuilder::new(5).build(&x_train_masked).unwrap();
    let wf = wf_builder(&train);

    let model = Pfr::new(PfrConfig {
        gamma,
        dim: (x_train.cols() - 1).max(1),
        ..PfrConfig::default()
    })
    .fit(&x_train, &wx, &wf)
    .unwrap();
    let z_train = model.transform(&x_train).unwrap();
    let z_test = model.transform(&x_test).unwrap();

    let mut clf = LogisticRegression::default();
    clf.fit(&z_train, train.labels()).unwrap();
    let probs = clf.predict_proba(&z_test).unwrap();
    let preds: Vec<u8> = probs.iter().map(|&p| u8::from(p >= 0.5)).collect();
    let preds_f: Vec<f64> = preds.iter().map(|&p| p as f64).collect();

    let wf_test = wf_builder(&test);
    let auc = roc_auc(test.labels(), &probs).unwrap();
    let cons_wf = consistency(&wf_test, &preds_f).unwrap();
    let report =
        GroupFairnessReport::compute(test.labels(), &preds, test.groups(), Some(&probs)).unwrap();
    (auc, cons_wf, report.demographic_parity_gap())
}

fn quantile_wf(ds: &Dataset) -> SparseGraph {
    let scores: Vec<f64> = ds
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    fairness::between_group_quantile_graph(ds.groups(), &scores, 5).unwrap()
}

fn rating_wf(ds: &Dataset) -> SparseGraph {
    fairness::rating_equivalence_graph(ds.side_information()).unwrap()
}

#[test]
fn synthetic_pipeline_beats_chance_and_is_fair() {
    let dataset = synthetic::generate_default(3).unwrap();
    let (auc, cons_wf, dp_gap) = run_pipeline(&dataset, quantile_wf, 0.9);
    assert!(auc > 0.85, "AUC {auc} too low on the synthetic data");
    assert!(cons_wf > 0.8, "Consistency(WF) {cons_wf} too low");
    assert!(dp_gap < 0.25, "demographic parity gap {dp_gap} too large");
}

#[test]
fn synthetic_gamma_zero_vs_one_shows_the_fairness_tradeoff() {
    let dataset = synthetic::generate_default(4).unwrap();
    let (_, cons_low, _) = run_pipeline(&dataset, quantile_wf, 0.0);
    let (_, cons_high, _) = run_pipeline(&dataset, quantile_wf, 1.0);
    assert!(
        cons_high >= cons_low - 0.02,
        "Consistency(WF) should not degrade when gamma goes from 0 ({cons_low}) to 1 ({cons_high})"
    );
}

#[test]
fn compas_like_pipeline_runs_at_reduced_scale() {
    let dataset = compas::generate(&compas::small_config(6)).unwrap();
    let (auc, cons_wf, _) = run_pipeline(&dataset, quantile_wf, 0.5);
    assert!(
        auc > 0.55,
        "AUC {auc} should beat chance on COMPAS-like data"
    );
    assert!(cons_wf > 0.5, "Consistency(WF) {cons_wf} unexpectedly low");
}

#[test]
fn crime_like_pipeline_runs_at_reduced_scale() {
    let dataset = crime::generate(&crime::small_config(7)).unwrap();
    let (auc, cons_wf, _) = run_pipeline(&dataset, rating_wf, 0.2);
    assert!(auc > 0.6, "AUC {auc} should beat chance on Crime-like data");
    assert!(cons_wf > 0.4, "Consistency(WF) {cons_wf} unexpectedly low");
}

#[test]
fn pfr_transform_generalizes_to_unseen_individuals() {
    // Fit on one synthetic sample, transform a *fresh* sample drawn with a
    // different seed — dimensions and numerical sanity must hold.
    let train = synthetic::generate_default(8).unwrap();
    let unseen = synthetic::generate_default(9).unwrap();
    let (train_raw, _) = train.features_with_protected().unwrap();
    let (standardizer, x_train) = Standardizer::fit_transform(&train_raw).unwrap();
    let (_, x_masked) = Standardizer::fit_transform(train.features()).unwrap();
    let wx = KnnGraphBuilder::new(5).build(&x_masked).unwrap();
    let wf = quantile_wf(&train);
    let model = Pfr::new(PfrConfig {
        gamma: 0.5,
        dim: 2,
        ..PfrConfig::default()
    })
    .fit(&x_train, &wx, &wf)
    .unwrap();

    let (unseen_raw, _) = unseen.features_with_protected().unwrap();
    let x_unseen = standardizer.transform(&unseen_raw).unwrap();
    let z = model.transform(&x_unseen).unwrap();
    assert_eq!(z.shape(), (unseen.len(), 2));
    assert!(z.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn projection_is_orthonormal_across_datasets() {
    for (dataset, wf) in [
        {
            let d = synthetic::generate_default(10).unwrap();
            let wf = quantile_wf(&d);
            (d, wf)
        },
        {
            let d = crime::generate(&crime::small_config(10)).unwrap();
            let wf = rating_wf(&d);
            (d, wf)
        },
    ] {
        let (raw, _) = dataset.features_with_protected().unwrap();
        let (_, x) = Standardizer::fit_transform(&raw).unwrap();
        let (_, x_masked) = Standardizer::fit_transform(dataset.features()).unwrap();
        let wx = KnnGraphBuilder::new(5).build(&x_masked).unwrap();
        let model = Pfr::new(PfrConfig {
            gamma: 0.5,
            dim: 2,
            ..PfrConfig::default()
        })
        .fit(&x, &wx, &wf)
        .unwrap();
        let v = model.projection();
        let vtv = v.transpose_matmul(v).unwrap();
        let err = vtv.sub(&Matrix::identity(2)).unwrap().max_abs();
        assert!(
            err < 1e-8,
            "VᵀV far from identity on {}: {err}",
            dataset.name
        );
    }
}
