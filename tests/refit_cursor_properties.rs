//! Property tests for the journal-tailing cursor that feeds the online
//! refit worker: under concurrent appends with forced segment rotations
//! (tiny `segment_bytes`) and aggressive retention, a durable cursor must
//! observe **every frame exactly once, in sequence order, bitwise
//! intact** — including across a checkpoint-restore restart that swaps in
//! a fresh cursor handle mid-stream. Retention is enabled throughout, so
//! the same cases also exercise the checkpoint-pinning rule: a segment a
//! registered cursor still needs must never be deleted out from under it.

use pfr::journal::{FsyncPolicy, Journal, JournalConfig, JournalCursor, Record};
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "pfr_refit_cursor_props_{tag}_{}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: PathBuf, segment_bytes: u64, retain: usize) -> JournalConfig {
    let mut config = JournalConfig::new(dir);
    config.segment_bytes = segment_bytes;
    config.retain_segments = retain;
    config.fsync = FsyncPolicy::Never;
    config
}

fn records_from(batches: &[Vec<f64>]) -> Vec<Record> {
    batches
        .iter()
        .enumerate()
        .map(|(i, values)| Record::Score {
            model: format!("m{}", i % 3),
            features: values.clone(),
        })
        .collect()
}

fn assert_delivery(delivered: &[(u64, Record)], expected: &[Record]) {
    assert_eq!(
        delivered.len(),
        expected.len(),
        "expected {} frames, observed {}",
        expected.len(),
        delivered.len()
    );
    for (i, ((seq, got), want)) in delivered.iter().zip(expected.iter()).enumerate() {
        assert_eq!(*seq, i as u64 + 1, "frame {i} arrived out of order");
        assert!(got.bitwise_eq(want), "frame {i} corrupted in transit");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A cursor tailing a journal that is being appended to from another
    /// thread — across rotations forced by tiny segments, with retention
    /// pruning behind the reader — sees each frame exactly once, in order.
    #[test]
    fn concurrent_tailing_is_exactly_once_in_order(
        batches in vec(vec(-1e6..1e6f64, 0..6), 30..90),
        segment_bytes in 96u64..640,
    ) {
        let dir = scratch_dir("tail");
        let records = records_from(&batches);
        let journal = Journal::open(config(dir.clone(), segment_bytes, 2)).unwrap();
        // Register the cursor before the writer starts so retention can
        // never outrun a reader that has not seen its first frame yet.
        let mut cursor = JournalCursor::open(&dir, "tailer", 1).unwrap();

        let writer_records = records.clone();
        let writer = std::thread::spawn(move || {
            for record in &writer_records {
                journal.append(record).unwrap();
            }
            journal.close();
        });

        let mut delivered = Vec::with_capacity(records.len());
        while delivered.len() < records.len() {
            match cursor.next().unwrap() {
                Some(frame) => {
                    delivered.push(frame);
                    // Durable progress after every frame: the strongest
                    // (and most retention-hostile) checkpoint cadence.
                    cursor.checkpoint().unwrap();
                }
                None => std::thread::yield_now(),
            }
        }
        writer.join().unwrap();
        // Nothing extra may appear after the writer is done.
        assert!(cursor.next().unwrap().is_none());
        assert_delivery(&delivered, &records);

        cursor.deregister().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Dropping the cursor mid-stream and reopening under the same name
    /// resumes from the checkpoint: the two handles together deliver every
    /// frame exactly once, in order, across the restart boundary.
    #[test]
    fn checkpoint_restore_restart_is_exactly_once(
        batches in vec(vec(-1e3..1e3f64, 0..5), 20..60),
        segment_bytes in 96u64..512,
        cut_permille in 100usize..900,
    ) {
        let dir = scratch_dir("restart");
        let records = records_from(&batches);
        let journal = Journal::open(config(dir.clone(), segment_bytes, 3)).unwrap();
        let mut first = JournalCursor::open(&dir, "worker", 1).unwrap();
        for record in &records {
            journal.append(record).unwrap();
        }
        journal.close();

        // First incarnation reads a prefix, checkpointing each frame, then
        // "crashes" (dropped without deregistering).
        let cut = (records.len() * cut_permille / 1000).max(1);
        let mut delivered = Vec::with_capacity(records.len());
        while delivered.len() < cut {
            if let Some(frame) = first.next().unwrap() {
                delivered.push(frame);
                first.checkpoint().unwrap();
            }
        }
        drop(first);

        // The restarted incarnation ignores its `from_seq` argument in
        // favour of the persisted checkpoint and continues seamlessly.
        let mut second = JournalCursor::open(&dir, "worker", 1).unwrap();
        while delivered.len() < records.len() {
            if let Some(frame) = second.next().unwrap() {
                delivered.push(frame);
                second.checkpoint().unwrap();
            }
        }
        assert!(second.next().unwrap().is_none());
        assert_delivery(&delivered, &records);

        second.deregister().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
