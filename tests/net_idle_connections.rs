//! The reactor front end's acceptance test: 1 000 concurrently connected
//! *idle* clients plus 100 *active* scoring connections against one
//! `pfr-serve` instance in reactor mode, run under a 1-thread and a
//! 4-thread reactor pool. Two assertions, held at both pool widths:
//!
//! 1. **Thread count stays O(1)**: the process thread count remains below a
//!    fixed bound (reactor pool + worker pool + batcher + the test's own
//!    client threads — not O(clients)). Thread-per-connection would need
//!    ≥ 1 100 threads to pass the traffic below.
//! 2. **Correctness under load**: every response served while the 1 000
//!    idle sockets sit connected is bitwise identical to offline
//!    `FittedFairPipeline::predict_proba` — so a 4-reactor pool and a
//!    single reactor serve identical bits.

use pfr::pipeline::{FairPipeline, FairPipelineConfig};
use pfr::serve::{Frontend, Server, ServerConfig};
use pfr_data::{split, synthetic, Dataset};
use pfr_graph::{fairness, SparseGraph};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

const IDLE_CLIENTS: usize = 1000;
const ACTIVE_CLIENTS: usize = 100;
const CLIENT_THREADS: usize = 10;
const REQUESTS_PER_CONN: usize = 20;

/// Process thread count bound. Expected population: the test main thread
/// plus libtest, 10 client threads, up to 4 reactors, 4 workers, 1 batcher
/// — well under 32 even with runtime helpers; 64 leaves slack while
/// staying two orders of magnitude below the 1 100 threads
/// thread-per-connection would burn on this connection count.
const MAX_THREADS: usize = 64;

fn fairness_graph(ds: &Dataset) -> SparseGraph {
    let scores: Vec<f64> = ds
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    fairness::between_group_quantile_graph(ds.groups(), &scores, 5).unwrap()
}

/// Current thread count of this process (Linux: `Threads:` in
/// /proc/self/status).
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs is available");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: field present")
}

/// Runs the full idle-plus-active scenario against a reactor pool of the
/// given width and returns every `(row, score)` pair that was served.
fn idle_load_scenario(
    threads: usize,
    text: &str,
    rows: &Arc<Vec<Vec<f64>>>,
    expected: &[f64],
) -> Vec<(usize, f64)> {
    // --- One reactor-mode server at the requested pool width. --------------
    let server = Server::spawn(ServerConfig {
        frontend: Frontend::reactor(threads),
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    server.registry().load_from_str("admissions", text).unwrap();
    let addr = server.addr();

    // --- 1 000 idle clients connect and just sit there. --------------------
    let idle: Vec<TcpStream> = (0..IDLE_CLIENTS)
        .map(|i| {
            TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("idle client {i} failed to connect: {e}"))
        })
        .collect();

    // --- 100 active connections score concurrently from 10 threads. --------
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let rows = Arc::clone(rows);
            std::thread::spawn(move || -> Vec<(usize, f64)> {
                let conns: Vec<TcpStream> = (0..ACTIVE_CLIENTS / CLIENT_THREADS)
                    .map(|_| {
                        let s = TcpStream::connect(addr).unwrap();
                        s.set_nodelay(true).unwrap();
                        s
                    })
                    .collect();
                let mut sessions: Vec<(BufReader<TcpStream>, TcpStream)> = conns
                    .into_iter()
                    .map(|s| (BufReader::new(s.try_clone().unwrap()), s))
                    .collect();
                let mut scored = Vec::new();
                for r in 0..REQUESTS_PER_CONN {
                    for (c, (reader, writer)) in sessions.iter_mut().enumerate() {
                        let idx = (t * 31 + c * 7 + r) % rows.len();
                        writeln!(
                            writer,
                            "SCORE admissions {}",
                            pfr::serve::protocol::format_numbers(&rows[idx])
                        )
                        .unwrap();
                        writer.flush().unwrap();
                        let mut response = String::new();
                        reader.read_line(&mut response).unwrap();
                        let mut parts = response.split_whitespace();
                        assert_eq!(parts.next(), Some("OK"), "{response}");
                        scored.push((idx, parts.next().unwrap().parse::<f64>().unwrap()));
                    }
                }
                scored
            })
        })
        .collect();

    // --- The thread bound, measured while everything is connected. ---------
    // (Client threads are still running; idle sockets are still open.)
    std::thread::sleep(std::time::Duration::from_millis(100));
    let count = process_threads();
    assert!(
        count < MAX_THREADS,
        "{count} process threads with {IDLE_CLIENTS} idle + {ACTIVE_CLIENTS} active \
         connections under a {threads}-reactor pool — the front end is paying \
         threads per connection"
    );

    // --- Bitwise correctness of every served score. ------------------------
    let mut served = Vec::new();
    for handle in handles {
        for (idx, score) in handle.join().unwrap() {
            assert_eq!(
                score.to_bits(),
                expected[idx].to_bits(),
                "served score differs from offline prediction for row {idx} \
                 ({threads} reactor threads)"
            );
            served.push((idx, score));
        }
    }
    assert_eq!(served.len(), ACTIVE_CLIENTS * REQUESTS_PER_CONN);
    assert!(server.stats().connections() >= (IDLE_CLIENTS + ACTIVE_CLIENTS) as u64);

    // The idle sockets were genuinely connected the whole time: dropping
    // them now and shutting down cleanly proves they were being tracked by
    // the reactor, not queued in an accept backlog.
    drop(idle);
    server.shutdown();
    served
}

#[test]
fn a_thousand_idle_clients_cost_buffers_not_threads() {
    // --- Offline ground truth. ---------------------------------------------
    let dataset = synthetic::generate_default(83).unwrap();
    let split = split::train_test_split(&dataset, 0.3, 83).unwrap();
    let train = dataset.subset(&split.train).unwrap();
    let test = dataset.subset(&split.test).unwrap();
    let fitted = FairPipeline::new(FairPipelineConfig {
        gamma: 0.9,
        ..FairPipelineConfig::default()
    })
    .fit(&train, &fairness_graph(&train))
    .unwrap();
    let expected = fitted.predict_proba(&test).unwrap();
    let (raw, _) = test.features_with_protected().unwrap();
    let bundle = fitted.into_bundle().unwrap();
    let text = pfr::core::persistence::bundle_to_string(&bundle);
    let rows: Vec<Vec<f64>> = (0..raw.rows()).map(|i| raw.row(i).to_vec()).collect();
    let rows = Arc::new(rows);

    // Same workload against a 1-reactor and a 4-reactor pool: both must
    // hold the thread bound, and both must serve bits identical to offline
    // inference — which also makes the two runs bitwise identical to each
    // other (the request schedule is deterministic, so the served
    // `(row, score)` sequences line up pair for pair).
    let single = idle_load_scenario(1, &text, &rows, &expected);
    let pooled = idle_load_scenario(4, &text, &rows, &expected);
    assert_eq!(single.len(), pooled.len());
    for ((row_a, score_a), (row_b, score_b)) in single.iter().zip(pooled.iter()) {
        assert_eq!(
            row_a, row_b,
            "request schedule diverged between pool widths"
        );
        assert_eq!(
            score_a.to_bits(),
            score_b.to_bits(),
            "row {row_a}: 1-reactor and 4-reactor pools served different bits"
        );
    }
}
