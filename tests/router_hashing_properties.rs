//! Property tests for the router's consistent-hash ring (via the offline
//! `proptest` shim): load balance within ±25% of uniform across 8 shards,
//! and minimal remapping — removing one shard moves at most `2/N` of keys,
//! every one of them *off the removed shard only*.

use pfr::router::HashRing;
use proptest::prelude::*;

fn ring_of(n: usize) -> HashRing {
    let mut ring = HashRing::with_default_vnodes();
    for b in 0..n {
        ring.add(b);
    }
    ring
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random key populations spread within ±25% of uniform over 8 shards.
    #[test]
    fn keys_distribute_within_25_percent_of_uniform(
        seeds in proptest::collection::vec(any::<u64>(), 2000..4000)
    ) {
        let ring = ring_of(8);
        let mut counts = [0usize; 8];
        for seed in &seeds {
            let key = format!("model-{seed:x}");
            counts[ring.primary(&key).unwrap()] += 1;
        }
        let ideal = seeds.len() as f64 / 8.0;
        for (shard, &count) in counts.iter().enumerate() {
            let skew = (count as f64 - ideal).abs() / ideal;
            prop_assert!(
                skew <= 0.25,
                "shard {} owns {} of {} keys, {:.1}% off uniform",
                shard, count, seeds.len(), skew * 100.0
            );
        }
    }

    /// Removing one of 8 shards remaps at most 2/N of keys, and only keys
    /// that lived on the removed shard move at all.
    #[test]
    fn removing_a_shard_remaps_at_most_2_over_n_of_keys(
        seeds in proptest::collection::vec(any::<u64>(), 500..1500),
        removed in 0usize..8
    ) {
        let n = 8usize;
        let mut ring = ring_of(n);
        let keys: Vec<String> = seeds.iter().map(|s| format!("model-{s:x}")).collect();
        let before: Vec<usize> = keys.iter().map(|k| ring.primary(k).unwrap()).collect();
        ring.remove(removed);
        let mut remapped = 0usize;
        for (key, &was) in keys.iter().zip(before.iter()) {
            let now = ring.primary(key).unwrap();
            if was == removed {
                prop_assert!(now != removed, "{} still on the removed shard", key);
                remapped += 1;
            } else {
                prop_assert_eq!(now, was, "{} moved although shard {} survived", key, was);
            }
        }
        let bound = 2.0 * keys.len() as f64 / n as f64;
        prop_assert!(
            (remapped as f64) <= bound,
            "removing shard {} remapped {} of {} keys (bound {:.0})",
            removed, remapped, keys.len(), bound
        );
    }

    /// Replica sets are distinct backends, in preference order, and stable
    /// for a fixed membership (routing is deterministic).
    #[test]
    fn replica_sets_are_distinct_stable_prefixes(
        seed in any::<u64>(),
        r in 1usize..=4
    ) {
        let ring = ring_of(5);
        let key = format!("model-{seed:x}");
        let replicas = ring.replicas(&key, r);
        prop_assert_eq!(replicas.len(), r.min(5));
        let mut sorted = replicas.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), replicas.len(), "replica set has duplicates");
        let preference = ring.preference(&key);
        prop_assert_eq!(&replicas[..], &preference[..replicas.len()]);
        prop_assert_eq!(replicas, ring.replicas(&key, r));
    }
}
