//! Property-based tests (proptest) pinning the blocked, multi-threaded GEMM
//! kernel to the retained naive reference and to the determinism contract
//! the serving tier depends on.

use pfr::linalg::gemm::{gemm_into, MatRef};
use pfr::linalg::Matrix;
use proptest::prelude::*;
use std::num::NonZeroUsize;

/// Strategy: a matrix of the given shape with entries in `[-25, 25]`.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-25.0..25.0_f64, rows * cols).prop_map(move |data| {
        Matrix::from_vec(rows, cols, data).expect("shape matches the generated buffer")
    })
}

/// Strategy: `(A, B)` with compatible inner dimensions, spanning both the
/// small-product path and the packed path (`k·n` up to 6400, well past the
/// 2048 cutoff), plus micro-tile fringes on every edge.
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..24, 1usize..80, 1usize..80).prop_flat_map(|(m, n, k)| (matrix(m, k), matrix(k, n)))
}

/// Relative error of `got` against `want`, scaled by the magnitude of the
/// expected result.
fn max_rel_err(got: &Matrix, want: &Matrix) -> f64 {
    got.sub(want).expect("shapes agree").max_abs() / want.max_abs().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The blocked kernel agrees with the naive i-k-j reference to 1e-9
    /// relative over random shapes (the two differ only in rounding: the
    /// vector micro-kernels fuse multiply-adds).
    #[test]
    fn blocked_matches_naive_reference(pair in matmul_pair()) {
        let (a, b) = pair;
        let got = a.matmul(&b).unwrap();
        let want = a.matmul_naive(&b).unwrap();
        prop_assert!(
            max_rel_err(&got, &want) < 1e-9,
            "blocked kernel diverged from naive at {:?}x{:?}",
            a.shape(),
            b.shape()
        );
    }

    /// Thread count never changes a single bit of the result: the row-band
    /// split decides who computes a row, not how the row's reduction runs.
    #[test]
    fn thread_count_is_bitwise_irrelevant(pair in matmul_pair()) {
        let (a, b) = pair;
        let (m, k) = a.shape();
        let n = b.cols();
        let run = |threads: usize| {
            let mut c = vec![0.0f64; m * n];
            gemm_into(
                m,
                n,
                k,
                MatRef::new(a.as_slice(), k, 1),
                MatRef::new(b.as_slice(), n, 1),
                &mut c,
                Some(NonZeroUsize::new(threads).unwrap()),
            );
            c
        };
        let reference = run(1);
        for threads in [2usize, 3, 5, 8] {
            let c = run(threads);
            for (i, (x, y)) in reference.iter().zip(c.iter()).enumerate() {
                prop_assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "threads={} changed element {} of a {}x{}x{} product",
                    threads,
                    i,
                    m,
                    k,
                    n
                );
            }
        }
    }

    /// Row `i` of a product depends only on row `i` of `A`: scoring one
    /// vector and scoring it inside a larger batch give identical bits —
    /// the invariant pfr-serve's online-vs-offline equality rests on.
    #[test]
    fn rows_do_not_depend_on_batch_height(pair in matmul_pair(), row in 0usize..24) {
        let (a, b) = pair;
        let row = row % a.rows();
        let full = a.matmul(&b).unwrap();
        let single = Matrix::from_vec(1, a.cols(), a.row(row).to_vec())
            .unwrap()
            .matmul(&b)
            .unwrap();
        for j in 0..b.cols() {
            prop_assert_eq!(
                single[(0, j)].to_bits(),
                full[(row, j)].to_bits(),
                "row {} col {} changed with batch height",
                row,
                j
            );
        }
    }

    /// The transpose-absorbing entry points agree with explicit transposes
    /// bitwise: all three route through the same kernel and packing.
    #[test]
    fn transpose_entry_points_share_the_kernel(pair in matmul_pair()) {
        let (a, b) = pair;
        let bt = b.transpose();
        let via_view = a.matmul_transpose(&bt).unwrap();
        prop_assert_eq!(&via_view, &a.matmul(&b).unwrap());
        let at = a.transpose();
        let via_view = at.transpose_matmul(&b).unwrap();
        prop_assert_eq!(&via_view, &a.matmul(&b).unwrap());
    }

    /// Degenerate inner dimensions: k = 1 products are plain outer
    /// products and must match the reference exactly.
    #[test]
    fn k_equals_one_is_an_outer_product(u in proptest::collection::vec(-25.0..25.0_f64, 1..40),
                                        v in proptest::collection::vec(-25.0..25.0_f64, 1..40)) {
        let a = Matrix::from_vec(u.len(), 1, u.clone()).unwrap();
        let b = Matrix::from_vec(1, v.len(), v.clone()).unwrap();
        let c = a.matmul(&b).unwrap();
        for i in 0..u.len() {
            for j in 0..v.len() {
                prop_assert_eq!(c[(i, j)].to_bits(), (u[i] * v[j]).to_bits());
            }
        }
    }
}

#[test]
fn zero_row_and_zero_col_shapes() {
    let a = Matrix::zeros(0, 7);
    let b = Matrix::zeros(7, 3);
    assert_eq!(a.matmul(&b).unwrap().shape(), (0, 3));
    let a = Matrix::zeros(5, 0);
    let b = Matrix::zeros(0, 4);
    let c = a.matmul(&b).unwrap();
    assert_eq!(c.shape(), (5, 4));
    assert!(c.as_slice().iter().all(|&x| x == 0.0));
    assert_eq!(
        Matrix::zeros(1, 1).matmul(&Matrix::zeros(1, 1)).unwrap()[(0, 0)],
        0.0
    );
}
