//! Live-elasticity chaos test: while 200 concurrent clients score through
//! a 3-shard router, a 4th backend **joins** the live ring and an original
//! replica is **removed** (then its process killed) — with zero failed
//! requests, every response bitwise equal to offline predictions, the
//! `≤ 2/N` remap bound holding on the live ring at both transitions, and
//! every replica populated over the wire via `PUSH` (no shared-filesystem
//! `LOAD` for the model under traffic).
//!
//! Also pins down the placement-path equivalence the routing tier's
//! correctness story rests on: a PUSH-placed replica serves scores
//! bitwise identical to a file-LOADed one (same bundle, two placement
//! verbs, one truth).

use pfr::pipeline::{FairPipeline, FairPipelineConfig};
use pfr::router::{BreakerConfig, ConnConfig, HashRing, LocalCluster, RouterConfig};
use pfr_data::{split, synthetic, Dataset};
use pfr_graph::{fairness, SparseGraph};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn fairness_graph(ds: &Dataset) -> SparseGraph {
    let scores: Vec<f64> = ds
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    fairness::between_group_quantile_graph(ds.groups(), &scores, 5).unwrap()
}

/// Counts keys whose primary moved between two rings, asserting the
/// consistency contract: on growth keys may only move *to* `gained`, on
/// shrink only keys owned by `lost` may move at all.
fn remapped(
    before: &HashRing,
    after: &HashRing,
    keys: &[String],
    gained: Option<usize>,
    lost: Option<usize>,
) -> usize {
    let mut moved = 0;
    for key in keys {
        let was = before.primary(key).unwrap();
        let now = after.primary(key).unwrap();
        if now != was {
            moved += 1;
            if let Some(gained) = gained {
                assert_eq!(now, gained, "{key} moved between surviving backends");
            }
            if let Some(lost) = lost {
                assert_eq!(was, lost, "{key} moved although its shard survived");
            }
        }
    }
    moved
}

#[test]
fn membership_changes_under_load_keep_every_score_bitwise_identical() {
    // --- Offline ground truth. ---------------------------------------------
    let dataset = synthetic::generate_default(73).unwrap();
    let split = split::train_test_split(&dataset, 0.3, 73).unwrap();
    let train = dataset.subset(&split.train).unwrap();
    let test = dataset.subset(&split.test).unwrap();
    let fitted = FairPipeline::new(FairPipelineConfig {
        gamma: 0.9,
        ..FairPipelineConfig::default()
    })
    .fit(&train, &fairness_graph(&train))
    .unwrap();
    let expected = fitted.predict_proba(&test).unwrap();
    let (raw, _) = test.features_with_protected().unwrap();
    let bundle = fitted.into_bundle().unwrap();

    // --- A 3-shard cluster; hot-key cache off so every request exercises ---
    // --- the network path the chaos is aimed at. ---------------------------
    let mut cluster = LocalCluster::boot(3, pfr::serve::ServerConfig::default()).unwrap();
    let router = Arc::new(
        cluster
            .router(RouterConfig {
                replication: 2,
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    probation: Duration::from_millis(250),
                },
                conn: ConnConfig {
                    connect_timeout: Duration::from_millis(250),
                    io_timeout: Duration::from_secs(5),
                    max_idle: 8,
                },
                health_interval: Some(Duration::from_millis(25)),
                hot_cache_capacity: 0,
                ..RouterConfig::default()
            })
            .unwrap(),
    );

    // --- Placement is wire-level only: PUSH, never a shared-fs LOAD. -------
    assert_eq!(router.push("admissions", &bundle).unwrap(), 2);
    let digest = router.verify("admissions").unwrap();
    // Auxiliary models spread placements over the whole ring, so the
    // backend that joins below deterministically ends up owning some of
    // them — proving reconciliation populates a newcomer via PUSH.
    for aux in 0..8 {
        assert!(router.push(&format!("aux-{aux}"), &bundle).unwrap() >= 1);
    }

    // --- PUSH-placed and file-LOADed replicas are interchangeable. ---------
    assert!(cluster.place(&router, "filed", &bundle).unwrap() >= 1);
    for (i, want) in expected.iter().enumerate().take(8) {
        let pushed = router.score("admissions", raw.row(i)).unwrap();
        let filed = router.score("filed", raw.row(i)).unwrap();
        assert_eq!(
            pushed.to_bits(),
            filed.to_bits(),
            "row {i}: PUSH and LOAD placement must serve identical bits"
        );
        assert_eq!(pushed.to_bits(), want.to_bits(), "row {i}");
    }

    // --- ≥ 200 concurrent scores; the cluster grows and shrinks with -------
    // --- traffic *guaranteed* in flight across both transitions: the -------
    // --- clients keep scoring until a quota of requests has completed ------
    // --- after each membership change, so the changes cannot slip into -----
    // --- a quiet window however fast the scoring path is. ------------------
    const THREADS: usize = 8;
    const MIN_TOTAL: usize = 200;
    /// Requests that must complete *after* each membership change while
    /// the stream is still running.
    const OVERLAP: usize = 50;
    let rows: Vec<Vec<f64>> = (0..25).map(|i| raw.row(i % raw.rows()).to_vec()).collect();
    let rows = Arc::new(rows);
    let completed = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let original_replicas = router.replica_set("admissions");

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let router = Arc::clone(&router);
            let rows = Arc::clone(&rows);
            let completed = Arc::clone(&completed);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> Vec<(usize, f64)> {
                let mut scored = Vec::new();
                for i in 0.. {
                    if stop.load(Ordering::Relaxed) && i >= rows.len() {
                        break;
                    }
                    let idx = (i + t * 3) % rows.len();
                    let score = router
                        .score("admissions", &rows[idx])
                        .unwrap_or_else(|e| panic!("request failed mid-elasticity: {e}"));
                    completed.fetch_add(1, Ordering::Relaxed);
                    scored.push((idx, score));
                }
                scored
            })
        })
        .collect();
    let wait_past = |mark: usize| {
        while completed.load(Ordering::Relaxed) < mark {
            std::thread::yield_now();
        }
    };

    // Grow once the stream is genuinely in flight.
    wait_past(OVERLAP);
    let before_add = router.ring();
    let addr = cluster.add_backend().unwrap();
    let new_id = router.add_backend(addr).unwrap();
    let after_add = router.ring();

    // Shrink under traffic: retire an original replica of the model, then
    // kill its process outright (requests racing the removal on the old
    // snapshot must fail over, not fail).
    wait_past(completed.load(Ordering::Relaxed) + OVERLAP);
    let victim = original_replicas[0];
    router.remove_backend(victim).unwrap();
    let after_remove = router.ring();
    assert!(cluster.kill(victim));

    // Keep traffic flowing on the post-shrink membership, then wind down.
    wait_past(completed.load(Ordering::Relaxed) + OVERLAP);
    wait_past(MIN_TOTAL);
    stop.store(true, Ordering::Relaxed);
    let per_thread: Vec<Vec<(usize, f64)>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    // --- Zero failures, every score bitwise equal to offline truth. --------
    let mut total = 0;
    for scores in &per_thread {
        for (idx, score) in scores {
            total += 1;
            let want = expected[idx % raw.rows()];
            assert_eq!(
                score.to_bits(),
                want.to_bits(),
                "routed score {score} differs from offline prediction {want} for row {idx}"
            );
        }
    }
    assert!(total >= MIN_TOTAL, "only {total} requests completed");

    // --- The ≤ 2/N remap bound held on the live ring at both steps. --------
    let keys: Vec<String> = (0..2000).map(|i| format!("model-{i}")).collect();
    let moved_on_add = remapped(&before_add, &after_add, &keys, Some(new_id), None);
    assert!(
        moved_on_add as f64 <= 2.0 * keys.len() as f64 / after_add.len() as f64,
        "adding backend {new_id} remapped {moved_on_add} of {} keys (> 2/N)",
        keys.len()
    );
    let moved_on_remove = remapped(&after_add, &after_remove, &keys, None, Some(victim));
    assert!(
        moved_on_remove as f64 <= 2.0 * keys.len() as f64 / after_add.len() as f64,
        "removing backend {victim} remapped {moved_on_remove} of {} keys (> 2/N)",
        keys.len()
    );

    // --- Membership settled: 3 members, the victim's id retired. -----------
    let membership = router.membership();
    assert_eq!(membership.len(), 3);
    assert!(membership.ids().contains(&new_id));
    assert!(!membership.ids().contains(&victim));

    // --- Reconciliation populated the newcomer over the wire: every -------
    // --- model's current replica set serves it, digest-verified, and ------
    // --- the new backend holds its share (placed by PUSH — this test ------
    // --- never wrote a file for these models). ----------------------------
    assert_eq!(router.verify("admissions").unwrap(), digest);
    let new_server = cluster.server(3).expect("the added backend is alive");
    let mut new_backend_models = 0;
    let names: Vec<String> = std::iter::once("admissions".to_string())
        .chain((0..8).map(|aux| format!("aux-{aux}")))
        .collect();
    for name in &names {
        assert_eq!(router.verify(name).unwrap().len(), 16);
        for rid in router.replica_set(name) {
            assert!(
                cluster.server(rid).unwrap().registry().get(name).is_some(),
                "replica {rid} of '{name}' missing after reconciliation"
            );
            if rid == new_id {
                new_backend_models += 1;
            }
        }
    }
    assert!(
        new_backend_models >= 1,
        "the joined backend owns no replicas — reconciliation never pushed to it"
    );
    assert!(new_server.registry().len() >= new_backend_models);

    // --- And the tier still scores, bit-exactly, after all of it. ----------
    let all_rows: Vec<Vec<f64>> = (0..raw.rows()).map(|i| raw.row(i).to_vec()).collect();
    let batch = router.score_batch("admissions", &all_rows).unwrap();
    for (i, (got, want)) in batch.iter().zip(expected.iter()).enumerate() {
        assert_eq!(got.to_bits(), want.to_bits(), "batch row {i}");
    }
}
