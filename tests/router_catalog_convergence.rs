//! The replicated-placement-catalog acceptance suite: multiple routers
//! over one backend cluster converge to identical `(epoch, roster,
//! placements)` views through the `CATALOG`/`SYNC` anti-entropy protocol
//! — with no shared filesystem and no config replay.
//!
//! Three scenarios, straight from the issue's acceptance list:
//!
//! 1. **Convergence + bootstrap** — a second router connected to a single
//!    seed address bootstraps the whole catalog (including a member the
//!    first router added after boot), membership churn initiated on
//!    *either* router converges on both, and a hard-killed-and-restarted
//!    router rebuilds everything from its peers. Responses from every
//!    router stay bitwise identical to offline inference.
//! 2. **Readmission repair** — a placement that skips a breaker-open
//!    backend is healed after the breaker re-admits it: the next sync
//!    round digest-checks the returning replica and `PUSH`es exactly the
//!    missing content, exactly once (a second round is a no-op because
//!    the digest now matches).
//! 3. **Stampede coalescing** — 100 concurrent identical cold-key misses
//!    cost the backend tier exactly one `SCORE` round trip; the other 99
//!    callers ride the leader's flight or the hot cache, all bitwise
//!    equal.

use pfr::core::persistence::ModelBundle;
use pfr::pipeline::{FairPipeline, FairPipelineConfig};
use pfr::router::{BreakerConfig, ConnConfig, LocalCluster, Router, RouterConfig, TransportMode};
use pfr::serve::{Frontend, ServerConfig};
use pfr_data::{split, synthetic, Dataset};
use pfr_graph::{fairness, SparseGraph};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn fairness_graph(ds: &Dataset) -> SparseGraph {
    let scores: Vec<f64> = ds
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    fairness::between_group_quantile_graph(ds.groups(), &scores, 5).unwrap()
}

/// Offline ground truth shared by every scenario: a fitted pipeline's
/// bundle, the raw test rows, and the bit-exact expected probabilities.
fn trained_fixture() -> (ModelBundle, Vec<Vec<f64>>, Vec<f64>) {
    let dataset = synthetic::generate_default(91).unwrap();
    let split = split::train_test_split(&dataset, 0.3, 91).unwrap();
    let train = dataset.subset(&split.train).unwrap();
    let test = dataset.subset(&split.test).unwrap();
    let fitted = FairPipeline::new(FairPipelineConfig {
        gamma: 0.9,
        ..FairPipelineConfig::default()
    })
    .fit(&train, &fairness_graph(&train))
    .unwrap();
    let expected = fitted.predict_proba(&test).unwrap();
    let (raw, _) = test.features_with_protected().unwrap();
    let rows: Vec<Vec<f64>> = (0..raw.rows()).map(|i| raw.row(i).to_vec()).collect();
    (fitted.into_bundle().unwrap(), rows, expected)
}

fn wait_for(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(
            Instant::now() < deadline,
            "timed out after {timeout:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn test_config() -> RouterConfig {
    RouterConfig {
        replication: 2,
        breaker: BreakerConfig {
            failure_threshold: 3,
            probation: Duration::from_millis(250),
        },
        conn: ConnConfig {
            connect_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_secs(5),
            max_idle: 8,
        },
        transport: TransportMode::Reactor,
        health_interval: Some(Duration::from_millis(25)),
        // Scenarios drive anti-entropy explicitly via `sync_now` so every
        // assertion is deterministic; the first scenario re-enables the
        // background worker on one router to prove the thread converges
        // on its own too.
        sync_interval: None,
        ..RouterConfig::default()
    }
}

/// Every router must hold the identical catalog version, membership and
/// replica set, and serve bitwise-identical scores for the same rows.
fn assert_converged(routers: &[&Router], model: &str, rows: &[Vec<f64>], expected: &[f64]) {
    let reference = routers[0];
    let version = reference.catalog_version();
    let ids = reference.membership().ids();
    let replicas = reference.replica_set(model);
    let digest = reference.verify(model).unwrap();
    for router in routers {
        assert_eq!(router.catalog_version(), version, "catalog versions differ");
        assert_eq!(router.control_epoch(), version.epoch);
        assert_eq!(router.membership().ids(), ids, "rosters differ");
        assert_eq!(router.replica_set(model), replicas, "replica sets differ");
        assert_eq!(router.verify(model).unwrap(), digest, "digests differ");
        for (i, row) in rows.iter().take(5).enumerate() {
            let got = router.score(model, row).unwrap();
            assert_eq!(
                got.to_bits(),
                expected[i].to_bits(),
                "routed score {got} differs from offline prediction for row {i}"
            );
        }
    }
}

/// Scenario 1: two routers over one cluster converge after churn from
/// either side, and a hard-killed-and-restarted router bootstraps its
/// entire catalog from cluster peers.
#[test]
fn two_routers_converge_and_a_restarted_router_bootstraps_from_peers() {
    let (bundle, rows, expected) = trained_fixture();
    let mut cluster = LocalCluster::boot(
        3,
        ServerConfig {
            frontend: Frontend::reactor(1),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Router A drives the cluster through its background sync worker —
    // the thread must keep A converged without any explicit sync calls.
    let router_a = cluster
        .router(RouterConfig {
            sync_interval: Some(Duration::from_millis(25)),
            ..test_config()
        })
        .unwrap();
    assert_eq!(router_a.push("admissions", &bundle).unwrap(), 2);
    let addr = cluster.add_backend().unwrap();
    let added = router_a.add_backend(addr).unwrap();
    assert_eq!(router_a.membership().len(), 4);

    // Router B connects to ONE seed address and must bootstrap the whole
    // four-member roster and the placement from the replicated catalog.
    let router_b = Router::connect(&cluster.addrs()[..1], test_config()).unwrap();
    assert_eq!(router_b.membership().len(), 4, "bootstrap missed members");
    assert_ne!(router_a.writer_id(), router_b.writer_id());
    assert_converged(&[&router_a, &router_b], "admissions", &rows, &expected);

    // Churn initiated on B: remove the member A added. A must observe the
    // higher catalog epoch through its background worker alone.
    router_b.remove_backend(added).unwrap();
    assert_eq!(router_b.membership().len(), 3);
    let target = router_b.catalog_version();
    wait_for(
        "router A to adopt the post-churn catalog",
        Duration::from_secs(5),
        || router_a.catalog_version() == target,
    );
    assert_converged(&[&router_a, &router_b], "admissions", &rows, &expected);
    assert!(
        router_a.stats().sync_rounds() >= 1,
        "background worker never ran a sync round"
    );

    // Hard-kill router B (drop = no graceful handoff, its private state
    // is gone). A fresh router over a different seed address rebuilds the
    // identical view purely from what the backends replicated.
    let version_before = router_b.catalog_version();
    drop(router_b);
    let router_b2 = Router::connect(&cluster.addrs()[1..2], test_config()).unwrap();
    assert_eq!(router_b2.catalog_version(), version_before);
    assert_converged(&[&router_a, &router_b2], "admissions", &rows, &expected);
}

/// Scenario 2: a breaker-open backend is skipped at placement time and
/// digest-check-repaired after re-admission — exactly once.
#[test]
fn readmitted_backend_is_repaired_exactly_once() {
    let (bundle, _rows, _expected) = trained_fixture();
    let cluster = LocalCluster::boot(
        3,
        ServerConfig {
            frontend: Frontend::reactor(1),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let router = cluster.router(test_config()).unwrap();
    assert_eq!(router.push("admissions", &bundle).unwrap(), 2);
    let digest = router.verify("admissions").unwrap();

    // Trip the breaker on one replica by hand (the server itself stays
    // up, so health probes will re-admit it after probation). The loop
    // guards against a concurrent probe resetting the failure streak.
    let victim = router.replica_set("admissions")[0];
    let backend = router.backend(victim).unwrap();
    while !backend.breaker().is_open() {
        backend.breaker().record_failure();
    }
    let readmissions_before = backend.breaker().readmissions();

    // Find a second model whose replica set includes the open backend and
    // place it: the open replica must be skipped, not written through.
    let name = (0..256)
        .map(|i| format!("risk-{i}"))
        .find(|n| router.replica_set(n).contains(&victim))
        .expect("no candidate model hashed onto the victim");
    assert_eq!(
        router.push(&name, &bundle).unwrap(),
        1,
        "placement wrote through a breaker-open backend"
    );

    // The prober re-admits the victim after probation; the next sync
    // round digest-checks it and pushes exactly the missing placement.
    wait_for(
        "the health prober to re-admit the victim",
        Duration::from_secs(5),
        || backend.breaker().readmissions() > readmissions_before,
    );
    assert_eq!(router.stats().repair_pushes(), 0);
    router.sync_now();
    assert_eq!(
        router.stats().repair_pushes(),
        1,
        "repair did not push exactly the one missing placement"
    );
    assert_eq!(router.verify(&name).unwrap().len(), 16);
    assert_eq!(router.verify("admissions").unwrap(), digest);

    // Idempotence: the victim's serving generation and the repair counter
    // must not move on a second round — the digest check short-circuits.
    let epoch_line = backend.exchange(&format!("EPOCH {name}")).unwrap();
    assert!(
        epoch_line.contains("generation="),
        "unexpected EPOCH payload: {epoch_line}"
    );
    router.sync_now();
    router.sync_now();
    assert_eq!(router.stats().repair_pushes(), 1, "repair re-pushed");
    assert_eq!(
        backend.exchange(&format!("EPOCH {name}")).unwrap(),
        epoch_line
    );

    // The repair PUSH is observable: the counter rides the metrics text.
    assert!(router
        .metrics()
        .contains("pfr_control_repair_pushes_total 1"));
}

/// Scenario 3: 100 concurrent identical cold-key misses cost the backend
/// tier exactly one `SCORE` round trip.
#[test]
fn cold_key_stampede_coalesces_to_one_backend_round_trip() {
    let (bundle, rows, expected) = trained_fixture();
    let cluster = LocalCluster::boot(
        3,
        ServerConfig {
            frontend: Frontend::reactor(1),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let router = Arc::new(cluster.router(test_config()).unwrap());
    assert_eq!(router.push("admissions", &bundle).unwrap(), 2);
    router.verify("admissions").unwrap();

    let backend_scores = |cluster: &LocalCluster| -> u64 {
        (0..cluster.len())
            .filter_map(|i| cluster.server(i))
            .map(|s| s.stats().score.requests())
            .sum()
    };
    let before = backend_scores(&cluster);

    const CALLERS: usize = 100;
    let row = Arc::new(rows[0].clone());
    let barrier = Arc::new(Barrier::new(CALLERS));
    let handles: Vec<_> = (0..CALLERS)
        .map(|_| {
            let router = Arc::clone(&router);
            let row = Arc::clone(&row);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                router.score("admissions", &row).unwrap()
            })
        })
        .collect();
    for handle in handles {
        let got = handle.join().unwrap();
        assert_eq!(
            got.to_bits(),
            expected[0].to_bits(),
            "stampede answer diverged from offline prediction"
        );
    }

    assert_eq!(
        backend_scores(&cluster) - before,
        1,
        "the stampede reached the backend tier more than once"
    );
    let stats = router.stats();
    assert_eq!(
        stats.coalesced() + stats.hot_cache_hits(),
        (CALLERS - 1) as u64,
        "every non-leader must ride the flight or the hot cache"
    );
    assert!(router.metrics().contains("pfr_router_coalesced_total"));
}
