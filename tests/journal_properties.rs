//! Property tests for the `pfr-journal` write-ahead log: arbitrary record
//! batches must survive write → close → reopen → replay bitwise intact
//! (across segment rotations and append-after-reopen), and a torn final
//! frame — the file cut at *any* byte offset inside the last record, the
//! shape a crash mid-`write` leaves behind — must recover every prior
//! frame exactly, inventing nothing.

use pfr::journal::{replay_dir, FsyncPolicy, Journal, JournalConfig, Record};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A scratch journal directory unique to this process *and* call site, so
/// concurrently running property cases never share state.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "pfr_journal_props_{tag}_{}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: PathBuf, segment_bytes: u64) -> JournalConfig {
    let mut config = JournalConfig::new(dir);
    config.segment_bytes = segment_bytes;
    config.fsync = FsyncPolicy::Never; // durability is not under test here
    config
}

/// Maps a generated `(kind, values)` tuple onto a concrete [`Record`]. The
/// text-bearing kinds reuse the float payload as text so the generator
/// stays a single simple strategy.
fn record_from(kind: u8, values: Vec<f64>) -> Record {
    let model = format!("m{}", values.len());
    match kind {
        0 => Record::Score {
            model,
            features: values,
        },
        1 => Record::Transform {
            model,
            features: values,
        },
        2 => Record::Load {
            model,
            bundle_text: format!("bundle {values:?}\n"),
        },
        _ => Record::Push {
            model,
            bundle_text: format!("pushed {values:?}"),
        },
    }
}

fn batch_strategy() -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(
        (0u8..4, proptest::collection::vec(-1e12..1e12_f64, 0..6)),
        1..40,
    )
    .prop_map(|tuples| {
        tuples
            .into_iter()
            .map(|(kind, values)| record_from(kind, values))
            .collect()
    })
}

/// Appends every record, closes cleanly, and returns the journal directory.
fn write_batch(dir: PathBuf, segment_bytes: u64, records: &[Record]) -> PathBuf {
    let journal = Journal::open(config(dir.clone(), segment_bytes)).unwrap();
    for (i, record) in records.iter().enumerate() {
        let seq = journal.append(record).unwrap();
        assert_eq!(seq, i as u64 + 1, "sequence numbers are consecutive from 1");
    }
    journal.close();
    dir
}

/// Replays a directory into `(seq, record)` pairs.
fn replay_all(dir: &std::path::Path) -> (Vec<(u64, Record)>, pfr::journal::ReplaySummary) {
    let mut replayed = Vec::new();
    let summary = replay_dir(dir, |seq, record| replayed.push((seq, record))).unwrap();
    (replayed, summary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any batch written through the journal replays bitwise intact, in
    /// order, with consecutive sequence numbers — whether it fits one
    /// segment or is forced across many by a tiny segment budget.
    #[test]
    fn batches_round_trip_bitwise_across_rotation(
        records in batch_strategy(),
        tiny_segments in 0u8..=1,
    ) {
        let segment_bytes = if tiny_segments == 0 { 128 } else { 8 << 20 };
        let dir = write_batch(scratch_dir("roundtrip"), segment_bytes, &records);
        let (replayed, summary) = replay_all(&dir);
        prop_assert_eq!(replayed.len(), records.len());
        prop_assert_eq!(summary.frames, records.len() as u64);
        prop_assert_eq!(summary.last_seq, records.len() as u64);
        prop_assert_eq!(summary.truncated_bytes, 0);
        if segment_bytes == 128 && records.len() > 4 {
            prop_assert!(summary.segments > 1, "tiny segments must force rotation");
        }
        for (i, (seq, replayed_record)) in replayed.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
            prop_assert!(
                replayed_record.bitwise_eq(&records[i]),
                "record {} changed across the round trip", i
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Close → reopen → append continues the same history: old and new
    /// records replay as one stream with unbroken sequence numbers.
    #[test]
    fn reopen_appends_continue_the_sequence(
        first in batch_strategy(),
        second in batch_strategy(),
    ) {
        let dir = write_batch(scratch_dir("reopen"), 512, &first);
        let journal = Journal::open(config(dir.clone(), 512)).unwrap();
        for (i, record) in second.iter().enumerate() {
            let seq = journal.append(record).unwrap();
            prop_assert_eq!(seq, (first.len() + i) as u64 + 1);
        }
        journal.close();
        let (replayed, _) = replay_all(&dir);
        let all: Vec<&Record> = first.iter().chain(second.iter()).collect();
        prop_assert_eq!(replayed.len(), all.len());
        for (i, (seq, replayed_record)) in replayed.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
            prop_assert!(replayed_record.bitwise_eq(all[i]));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A crash mid-write leaves the last frame cut at an arbitrary byte.
    /// Truncating the final segment at EVERY offset inside the last frame
    /// must (a) replay exactly the prior records, bitwise intact, and
    /// (b) leave a journal that reopens and accepts the next append at the
    /// sequence number the lost record held.
    #[test]
    fn torn_final_frame_recovers_every_prior_frame(records in batch_strategy()) {
        // Single big segment so "the last frame" lives in a known file.
        let dir = scratch_dir("torn");
        let journal = Journal::open(config(dir.clone(), 8 << 20)).unwrap();
        let (last, prior) = records.split_last().unwrap();
        for record in prior {
            journal.append(record).unwrap();
        }
        let segment = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "wal"))
            .unwrap();
        // Writer acks only after the OS write, so the file length observed
        // between appends brackets the final frame exactly.
        let len_before = std::fs::metadata(&segment).unwrap().len();
        journal.append(last).unwrap();
        journal.close();
        let full = std::fs::read(&segment).unwrap();
        prop_assert!(full.len() as u64 > len_before);

        let scratch = scratch_dir("torn_cut");
        let copy = scratch.join(segment.file_name().unwrap());
        for cut in len_before..full.len() as u64 {
            std::fs::write(&copy, &full[..cut as usize]).unwrap();
            let (replayed, summary) = replay_all(&scratch);
            prop_assert_eq!(
                replayed.len(),
                prior.len(),
                "cut at {} must keep exactly the prior records", cut
            );
            prop_assert_eq!(summary.truncated_bytes, cut - len_before);
            for (i, (_, replayed_record)) in replayed.iter().enumerate() {
                prop_assert!(replayed_record.bitwise_eq(&prior[i]));
            }
        }

        // Reopening the torn journal truncates the tail and hands out the
        // torn record's sequence number to the next append.
        std::fs::write(&copy, &full[..len_before as usize + 1]).unwrap();
        let reopened = Journal::open(config(scratch.clone(), 8 << 20)).unwrap();
        let seq = reopened.append(last).unwrap();
        prop_assert_eq!(seq, records.len() as u64);
        reopened.close();
        let (replayed, _) = replay_all(&scratch);
        prop_assert_eq!(replayed.len(), records.len());
        prop_assert!(replayed.last().unwrap().1.bitwise_eq(last));

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&scratch);
    }
}

/// Non-finite and signed-zero floats survive the journal bit-for-bit —
/// the frame body stores raw IEEE-754 bits, not a decimal rendering.
#[test]
fn non_finite_features_round_trip_bitwise() {
    let dir = scratch_dir("nonfinite");
    let record = Record::Score {
        model: "edge".to_string(),
        features: vec![
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            f64::MIN_POSITIVE,
            f64::from_bits(0x7ff0_dead_beef_0001), // a signalling-ish NaN payload
        ],
    };
    let dir = write_batch(dir, 8 << 20, std::slice::from_ref(&record));
    let (replayed, _) = replay_all(&dir);
    assert_eq!(replayed.len(), 1);
    assert!(replayed[0].1.bitwise_eq(&record));
    let _ = std::fs::remove_dir_all(&dir);
}
