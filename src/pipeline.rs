//! A batteries-included end-to-end pipeline: standardization + `WX`
//! construction + PFR + downstream logistic regression behind a single
//! `fit` / `predict` API.
//!
//! This is the interface a downstream adopter of the library would actually
//! use: hand it a [`Dataset`](pfr_data::Dataset) and a fairness graph over
//! its individuals, get back a classifier whose decisions respect the
//! pairwise fairness judgments — and which can score unseen individuals from
//! their regular attributes alone.

use pfr_core::persistence::{ClassifierSection, ModelBundle, StandardizerParams};
use pfr_core::{Pfr, PfrConfig, PfrModel};
use pfr_data::Dataset;
use pfr_graph::{KnnGraphBuilder, SparseGraph};
use pfr_linalg::stats::Standardizer;
use pfr_linalg::Matrix;
use pfr_opt::{LogisticRegression, LogisticRegressionConfig};

/// Errors produced by the high-level pipeline.
#[derive(Debug, Clone)]
pub struct PipelineError(String);

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pipeline error: {}", self.0)
    }
}

impl std::error::Error for PipelineError {}

impl PipelineError {
    fn from_display(e: impl std::fmt::Display) -> Self {
        PipelineError(e.to_string())
    }
}

/// Result alias for the pipeline.
pub type Result<T> = std::result::Result<T, PipelineError>;

/// Configuration of [`FairPipeline`].
#[derive(Debug, Clone)]
pub struct FairPipelineConfig {
    /// PFR's γ trade-off between `WX` and `WF`.
    pub gamma: f64,
    /// Dimensionality of the learned representation; `None` uses
    /// `num_features − 1`.
    pub dim: Option<usize>,
    /// Number of neighbours for the `WX` graph.
    pub knn_k: usize,
    /// Whether the representation learner sees the protected attribute
    /// (recommended; the classifier itself never sees it directly).
    pub use_protected_attribute: bool,
    /// L2 regularization of the downstream logistic regression.
    pub classifier_l2: f64,
    /// Decision threshold for hard predictions.
    pub threshold: f64,
}

impl Default for FairPipelineConfig {
    fn default() -> Self {
        FairPipelineConfig {
            gamma: 0.5,
            dim: None,
            knn_k: 10,
            use_protected_attribute: true,
            classifier_l2: 1e-4,
            threshold: 0.5,
        }
    }
}

/// An unfitted end-to-end pipeline.
#[derive(Debug, Clone, Default)]
pub struct FairPipeline {
    config: FairPipelineConfig,
}

/// A fitted pipeline: standardizer, PFR projection and classifier.
#[derive(Debug, Clone)]
pub struct FittedFairPipeline {
    config: FairPipelineConfig,
    standardizer: Standardizer,
    model: PfrModel,
    classifier: LogisticRegression,
}

impl FairPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: FairPipelineConfig) -> Self {
        FairPipeline { config }
    }

    /// Fits the pipeline on a training dataset and a fairness graph whose
    /// nodes are the dataset's records (in the same order).
    pub fn fit(&self, train: &Dataset, wf: &SparseGraph) -> Result<FittedFairPipeline> {
        if wf.num_nodes() != train.len() {
            return Err(PipelineError(format!(
                "fairness graph has {} nodes but the dataset has {} records",
                wf.num_nodes(),
                train.len()
            )));
        }
        // Learner input (optionally with the protected attribute).
        let raw = self.learner_features(train)?;
        let (standardizer, x) =
            Standardizer::fit_transform(&raw).map_err(PipelineError::from_display)?;

        // WX over the masked features, as the paper prescribes.
        let (_, x_masked) =
            Standardizer::fit_transform(train.features()).map_err(PipelineError::from_display)?;
        let k = self.config.knn_k.min(train.len().saturating_sub(1)).max(1);
        let wx = KnnGraphBuilder::new(k)
            .build(&x_masked)
            .map_err(PipelineError::from_display)?;

        let dim = self
            .config
            .dim
            .unwrap_or_else(|| x.cols().saturating_sub(1))
            .clamp(1, x.cols());
        let model = Pfr::new(PfrConfig {
            gamma: self.config.gamma,
            dim,
            ..PfrConfig::default()
        })
        .fit(&x, &wx, wf)
        .map_err(PipelineError::from_display)?;

        let z = model.transform(&x).map_err(PipelineError::from_display)?;
        let mut classifier = LogisticRegression::new(LogisticRegressionConfig {
            l2: self.config.classifier_l2,
            ..LogisticRegressionConfig::default()
        });
        classifier
            .fit(&z, train.labels())
            .map_err(PipelineError::from_display)?;

        Ok(FittedFairPipeline {
            config: self.config.clone(),
            standardizer,
            model,
            classifier,
        })
    }

    fn learner_features(&self, dataset: &Dataset) -> Result<Matrix> {
        if self.config.use_protected_attribute {
            let (x, _) = dataset
                .features_with_protected()
                .map_err(PipelineError::from_display)?;
            Ok(x)
        } else {
            Ok(dataset.features().clone())
        }
    }
}

impl FittedFairPipeline {
    /// The fitted PFR model.
    pub fn model(&self) -> &PfrModel {
        &self.model
    }

    /// Packages the fitted pipeline into a deployable [`ModelBundle`]:
    /// standardizer statistics, PFR projection and classifier weights plus
    /// the decision threshold — everything `pfr-serve` needs to score raw
    /// attribute vectors, with no training-time machinery attached.
    pub fn into_bundle(self) -> Result<ModelBundle> {
        let text = self
            .classifier
            .to_text()
            .map_err(PipelineError::from_display)?;
        Ok(ModelBundle {
            model: self.model,
            standardizer: Some(StandardizerParams {
                means: self.standardizer.means().to_vec(),
                stds: self.standardizer.stds().to_vec(),
            }),
            classifier: Some(ClassifierSection {
                threshold: self.config.threshold,
                text,
            }),
        })
    }

    /// Reassembles a fitted pipeline from a bundle.
    ///
    /// `config` supplies the fit-time settings a bundle does not carry
    /// (`knn_k`, `use_protected_attribute`, …); the representation-relevant
    /// fields (`gamma`, `dim`, decision threshold) are taken from the bundle
    /// itself. The bundle must contain a standardizer and a classifier —
    /// a projection-only bundle cannot score anyone.
    pub fn from_bundle(bundle: &ModelBundle, config: FairPipelineConfig) -> Result<Self> {
        let std = bundle
            .standardizer
            .as_ref()
            .ok_or_else(|| PipelineError("bundle has no standardizer section".to_string()))?;
        let clf = bundle
            .classifier
            .as_ref()
            .ok_or_else(|| PipelineError("bundle has no classifier section".to_string()))?;
        let standardizer = Standardizer::from_parts(std.means.clone(), std.stds.clone())
            .map_err(PipelineError::from_display)?;
        let classifier =
            LogisticRegression::from_text(&clf.text).map_err(PipelineError::from_display)?;
        let model_config = bundle.model.config();
        Ok(FittedFairPipeline {
            config: FairPipelineConfig {
                gamma: model_config.gamma,
                dim: Some(bundle.model.dim()),
                threshold: clf.threshold,
                ..config
            },
            standardizer,
            model: bundle.model.clone(),
            classifier,
        })
    }

    /// Embeds a dataset into the learned fair representation.
    pub fn transform(&self, dataset: &Dataset) -> Result<Matrix> {
        let raw = FairPipeline {
            config: self.config.clone(),
        }
        .learner_features(dataset)?;
        let x = self
            .standardizer
            .transform(&raw)
            .map_err(PipelineError::from_display)?;
        self.model
            .transform(&x)
            .map_err(PipelineError::from_display)
    }

    /// Predicted probability of the positive class for every record.
    pub fn predict_proba(&self, dataset: &Dataset) -> Result<Vec<f64>> {
        let z = self.transform(dataset)?;
        self.classifier
            .predict_proba(&z)
            .map_err(PipelineError::from_display)
    }

    /// Hard predictions at the configured threshold.
    pub fn predict(&self, dataset: &Dataset) -> Result<Vec<u8>> {
        Ok(self
            .predict_proba(dataset)?
            .into_iter()
            .map(|p| u8::from(p >= self.config.threshold))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfr_data::{split, synthetic};
    use pfr_graph::fairness;
    use pfr_metrics::roc_auc;

    fn fairness_graph(ds: &Dataset) -> SparseGraph {
        let scores: Vec<f64> = ds
            .side_information()
            .iter()
            .map(|s| s.unwrap_or(0.0))
            .collect();
        fairness::between_group_quantile_graph(ds.groups(), &scores, 5).unwrap()
    }

    #[test]
    fn pipeline_fits_and_scores_unseen_individuals() {
        let dataset = synthetic::generate_default(21).unwrap();
        let split = split::train_test_split(&dataset, 0.3, 21).unwrap();
        let train = dataset.subset(&split.train).unwrap();
        let test = dataset.subset(&split.test).unwrap();

        let fitted = FairPipeline::new(FairPipelineConfig {
            gamma: 0.9,
            ..FairPipelineConfig::default()
        })
        .fit(&train, &fairness_graph(&train))
        .unwrap();

        let probs = fitted.predict_proba(&test).unwrap();
        assert_eq!(probs.len(), test.len());
        let auc = roc_auc(test.labels(), &probs).unwrap();
        assert!(auc > 0.85, "pipeline AUC {auc} too low");
        let preds = fitted.predict(&test).unwrap();
        assert!(preds.iter().all(|&p| p <= 1));
        let z = fitted.transform(&test).unwrap();
        assert_eq!(z.rows(), test.len());
        assert_eq!(z.cols(), fitted.model().dim());
    }

    #[test]
    fn bundle_round_trip_reproduces_predictions_bitwise() {
        let dataset = synthetic::generate_default(24).unwrap();
        let split = split::train_test_split(&dataset, 0.3, 24).unwrap();
        let train = dataset.subset(&split.train).unwrap();
        let test = dataset.subset(&split.test).unwrap();

        let config = FairPipelineConfig {
            gamma: 0.8,
            threshold: 0.55,
            ..FairPipelineConfig::default()
        };
        let fitted = FairPipeline::new(config.clone())
            .fit(&train, &fairness_graph(&train))
            .unwrap();
        let expected = fitted.predict_proba(&test).unwrap();
        let expected_hard = fitted.predict(&test).unwrap();

        let bundle = fitted.into_bundle().unwrap();
        let text = pfr_core::persistence::bundle_to_string(&bundle);
        let restored_bundle = pfr_core::persistence::bundle_from_string(&text).unwrap();
        let restored = FittedFairPipeline::from_bundle(&restored_bundle, config).unwrap();

        let probs = restored.predict_proba(&test).unwrap();
        assert_eq!(probs, expected, "decimal round-trip must be exact");
        assert_eq!(restored.predict(&test).unwrap(), expected_hard);
    }

    #[test]
    fn from_bundle_rejects_projection_only_bundles() {
        let dataset = synthetic::generate_default(25).unwrap();
        let fitted = FairPipeline::default()
            .fit(&dataset, &fairness_graph(&dataset))
            .unwrap();
        let mut bundle = fitted.into_bundle().unwrap();
        bundle.classifier = None;
        assert!(FittedFairPipeline::from_bundle(&bundle, FairPipelineConfig::default()).is_err());
        bundle.standardizer = None;
        assert!(FittedFairPipeline::from_bundle(&bundle, FairPipelineConfig::default()).is_err());
    }

    #[test]
    fn pipeline_rejects_mismatched_fairness_graph() {
        let dataset = synthetic::generate_default(22).unwrap();
        let wrong = SparseGraph::new(3);
        assert!(FairPipeline::default().fit(&dataset, &wrong).is_err());
    }

    #[test]
    fn pipeline_without_protected_attribute_still_works() {
        let dataset = synthetic::generate_default(23).unwrap();
        let fitted = FairPipeline::new(FairPipelineConfig {
            use_protected_attribute: false,
            dim: Some(1),
            ..FairPipelineConfig::default()
        })
        .fit(&dataset, &fairness_graph(&dataset))
        .unwrap();
        let probs = fitted.predict_proba(&dataset).unwrap();
        assert_eq!(probs.len(), dataset.len());
    }
}
