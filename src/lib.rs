//! # pfr — Pairwise Fair Representations
//!
//! A complete Rust reproduction of *"Operationalizing Individual Fairness
//! with Pairwise Fair Representations"* (Lahoti, Gummadi, Weikum — VLDB
//! 2019).
//!
//! This facade crate re-exports every sub-crate of the workspace so that an
//! application can depend on a single crate:
//!
//! * [`linalg`] — dense matrices, symmetric eigensolvers, decompositions.
//! * [`graph`] — sparse graphs, k-NN similarity graphs, fairness graphs,
//!   Laplacian algebra.
//! * [`data`] — datasets, preprocessing, splits, the paper's three
//!   (synthetic) benchmarks.
//! * [`opt`] — optimizers and the downstream logistic-regression classifier.
//! * [`core`] — the PFR and kernel-PFR models.
//! * [`baselines`] — Original, iFair, LFR and Hardt et al. post-processing.
//! * [`metrics`] — AUC, individual-fairness consistency, group fairness.
//! * [`eval`] — the experiment harness that regenerates every table and
//!   figure of the paper.
//! * [`serve`] — the concurrent model-serving subsystem (registry, worker
//!   pool, micro-batching, score cache, TCP protocol).
//! * [`journal`] — the durable write-ahead request journal (checksummed
//!   frames, segment rotation, group-commit fsync, crash recovery).
//! * [`router`] — the sharded routing tier over multiple serve backends
//!   (consistent hashing, replication, scatter-gather, circuit breakers).
//!
//! ## Quick start
//!
//! ```
//! use pfr::core::{Pfr, PfrConfig};
//! use pfr::data::synthetic;
//! use pfr::graph::{fairness, KnnGraphBuilder};
//! use pfr::linalg::stats::Standardizer;
//!
//! // 1. Generate the paper's synthetic admissions data.
//! let dataset = synthetic::generate_default(42).unwrap();
//! let (_, x) = Standardizer::fit_transform(dataset.features()).unwrap();
//!
//! // 2. Build the similarity graph WX and a fairness graph WF from the
//! //    within-group deservingness rankings.
//! let wx = KnnGraphBuilder::new(10).build(&x).unwrap();
//! let scores: Vec<f64> = dataset
//!     .side_information()
//!     .iter()
//!     .map(|s| s.unwrap_or(0.0))
//!     .collect();
//! let wf = fairness::between_group_quantile_graph(dataset.groups(), &scores, 10).unwrap();
//!
//! // 3. Learn a pairwise fair representation.
//! let model = Pfr::new(PfrConfig { gamma: 0.9, dim: 2, ..PfrConfig::default() })
//!     .fit(&x, &wx, &wf)
//!     .unwrap();
//! let z = model.transform(&x).unwrap();
//! assert_eq!(z.shape(), (dataset.len(), 2));
//! ```
//!
//! See the `examples/` directory for end-to-end pipelines (quickstart,
//! graduate admissions, recidivism, crime neighbourhoods) and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology and results.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod pipeline;

pub use pfr_baselines as baselines;
pub use pfr_control as control;
pub use pfr_core as core;
pub use pfr_data as data;
pub use pfr_eval as eval;
pub use pfr_graph as graph;
pub use pfr_journal as journal;
pub use pfr_linalg as linalg;
pub use pfr_metrics as metrics;
pub use pfr_net as net;
pub use pfr_obs as obs;
pub use pfr_opt as opt;
pub use pfr_refit as refit;
pub use pfr_router as router;
pub use pfr_serve as serve;

/// The version of the reproduction workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
