//! # pfr-linalg
//!
//! Dense linear-algebra substrate for the Pairwise Fair Representations (PFR)
//! reproduction.
//!
//! The original paper solves its trace-optimization problem with
//! `scipy.linalg.lapack`. No LAPACK binding (nor `ndarray`/`nalgebra`) is
//! available in this offline environment, so this crate provides everything
//! the rest of the workspace needs, implemented from scratch:
//!
//! * [`Matrix`] — a dense, row-major, `f64` matrix with the usual algebraic
//!   operations (multiplication, transposition, slicing, norms, …).
//! * [`gemm`] — the blocked, packed, multi-threaded GEMM kernel every dense
//!   matrix product routes through (register-tiled micro-kernel, L1/L2
//!   cache blocking, deterministic thread-count-independent accumulation).
//! * [`eigen`] — symmetric eigensolvers: a cyclic Jacobi rotation solver and a
//!   Householder-tridiagonalization + implicit-QL solver, both returning full
//!   eigen-decompositions sorted by eigenvalue.
//! * [`subspace`] — warm-started block subspace iteration for just the `d`
//!   smallest eigenpairs, used by the online-refit path to re-solve the PFR
//!   problem from the serving model's projection at GEMM cost.
//! * [`cholesky`] — Cholesky factorization and SPD linear solves (used by the
//!   Newton/IRLS steps of the downstream logistic-regression classifier).
//! * [`solve`] — LU factorization with partial pivoting for general square
//!   systems.
//! * [`stats`] — column statistics, standardization, covariance/correlation
//!   and quantiles.
//!
//! The sizes involved in the paper are modest (at most a few thousand records
//! and on the order of a hundred features), so the dense `O(n^3)` algorithms
//! here are entirely adequate and keep the code dependency-free and easy to
//! audit.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cholesky;
pub mod eigen;
pub mod error;
pub mod gemm;
pub mod matrix;
pub mod pca;
pub mod solve;
pub mod stats;
pub mod subspace;
pub mod vector;

pub use cholesky::CholeskyDecomposition;
pub use eigen::{Eigen, EigenMethod};
pub use error::LinalgError;
pub use matrix::Matrix;
pub use solve::LuDecomposition;
pub use subspace::{smallest_eigenpairs_warm, SubspaceEigen, SubspaceOptions};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
