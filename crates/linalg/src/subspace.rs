//! Warm-started shift-invert subspace iteration for the smallest eigenpairs
//! of a symmetric matrix.
//!
//! The online-refit path re-solves the PFR trace optimization on a sliding
//! window whose matrix `M` is a small perturbation of the one the serving
//! model was fitted on. A full Jacobi decomposition costs `O(m³)` per sweep
//! and is the slowest substrate in a cold fit; when a good starting subspace
//! is available (the serving model's projection `V`), shift-invert subspace
//! iteration reaches the same `d` smallest eigenpairs with one Cholesky
//! factorization plus a handful of `O(m²d)` triangular solves:
//!
//! 1. Shift: factor `C = M − σI` with `σ < λ_min(M)`, so the smallest
//!    eigenvalues of `M` become the *largest* of `C⁻¹` and block power
//!    iteration on `C⁻¹` converges toward them. The shift is chosen from a
//!    ladder of candidates just below the smallest Rayleigh–Ritz value of
//!    the seed — a failed (non-positive-definite) Cholesky simply means the
//!    candidate overshot `λ_min` and the next, more conservative one is
//!    tried; the Gershgorin lower bound terminates the ladder and always
//!    factors. The closer `σ` sits to `λ_min`, the faster the contraction.
//! 2. Iterate: `V ← orth(C⁻¹C⁻¹·V)` — two triangular solves per column per
//!    sweep, with modified Gram-Schmidt re-orthonormalization.
//! 3. Rayleigh–Ritz: diagonalize the small projection `VᵀMV` (Jacobi —
//!    trivial at this size) to extract eigenvalue estimates and rotate `V`
//!    onto the Ritz vectors.
//! 4. Stop when every *returned* column's residual `‖Mv_k − λ_k v_k‖_∞`
//!    falls below a relative tolerance; fail with
//!    [`LinalgError::NoConvergence`] otherwise so callers can fall back to a
//!    dense solve.
//!
//! The block carries one extra *guard* column beyond the requested `d`: a
//! deterministic pseudo-random direction with components along every
//! eigendirection. Without it, a seed spanning an exactly invariant — but
//! wrong — subspace (e.g. coordinate axes of a diagonal matrix) would
//! converge silently inside its own span and miss smaller eigenvalues; the
//! guard pulls any missed direction into the block, where shift-invert
//! amplification sorts it into the returned bottom `d`.

use crate::cholesky::CholeskyDecomposition;
use crate::eigen::{Eigen, EigenMethod};
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Tuning knobs for [`smallest_eigenpairs_warm`].
#[derive(Debug, Clone)]
pub struct SubspaceOptions {
    /// Maximum block iterations (each applies `C⁻¹` twice) before giving up.
    pub max_iterations: usize,
    /// Relative residual tolerance: converged when
    /// `max_k ‖Mv_k − λ_k v_k‖_∞ ≤ tolerance · max(max|m_ij|, 1)`.
    pub tolerance: f64,
}

impl Default for SubspaceOptions {
    fn default() -> Self {
        SubspaceOptions {
            max_iterations: 200,
            tolerance: 1e-9,
        }
    }
}

/// Result of a converged subspace iteration.
#[derive(Debug, Clone)]
pub struct SubspaceEigen {
    /// The `d` smallest eigenvalues, ascending.
    pub eigenvalues: Vec<f64>,
    /// The matching eigenvectors as the columns of an `n×d` matrix with
    /// orthonormal columns.
    pub eigenvectors: Matrix,
    /// Block iterations performed before convergence.
    pub iterations: usize,
}

/// Computes the `seed.cols()` smallest eigenpairs of the symmetric matrix
/// `a`, warm-started from the subspace spanned by `seed`'s columns.
///
/// `seed` does not need orthonormal columns (it is orthonormalized first)
/// but the closer its span is to the true invariant subspace, the fewer
/// iterations are needed. Degenerate or rank-deficient seed columns are
/// replaced with deterministic fallback directions, so a bad seed degrades
/// to (slow) convergence rather than failure — until `max_iterations`, at
/// which point [`LinalgError::NoConvergence`] tells the caller to use a
/// dense decomposition instead.
pub fn smallest_eigenpairs_warm(
    a: &Matrix,
    seed: &Matrix,
    options: &SubspaceOptions,
) -> Result<SubspaceEigen> {
    let n = a.rows();
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let d = seed.cols();
    if n == 0 || d == 0 || d > n || seed.rows() != n {
        return Err(LinalgError::InvalidArgument(format!(
            "seed of shape {:?} does not fit a {n}×{n} eigenproblem",
            seed.shape()
        )));
    }
    if a.as_slice().iter().any(|v| !v.is_finite()) || seed.as_slice().iter().any(|v| !v.is_finite())
    {
        return Err(LinalgError::InvalidArgument(
            "matrix contains non-finite entries".to_string(),
        ));
    }

    let scale = a.max_abs().max(1.0);

    // Block = orthonormalized seed plus one guard column (when room allows):
    // a dense pseudo-random direction that overlaps every eigendirection, so
    // an exactly invariant wrong seed subspace cannot trap the iteration.
    let p = if d < n { d + 1 } else { d };
    let mut v = Matrix::zeros(n, p);
    for c in 0..d {
        v.set_col(c, &seed.col(c))?;
    }
    if p > d {
        let mut state = 0x9e3779b97f4a7c15_u64;
        let guard: Vec<f64> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) - 0.5
            })
            .collect();
        v.set_col(d, &guard)?;
    }
    orthonormalize_columns(&mut v);

    // Initial Rayleigh–Ritz: the smallest Ritz value upper-bounds λ_min and,
    // for a warm seed, sits right next to it — the ideal shift anchor.
    let av0 = a.matmul(&v)?;
    let t0 = v.transpose_matmul(&av0)?.symmetrize()?;
    let ritz0 = Eigen::decompose_with(&t0, EigenMethod::Jacobi)?;
    let r0 = ritz0.eigenvalues[0];
    let span = (ritz0.eigenvalues[p - 1] - r0).max(scale * 1e-3);

    // Gershgorin lower bound on λ_min: always a valid (if loose) shift.
    let mut lo = f64::INFINITY;
    for i in 0..n {
        let row = a.row(i);
        let radius: f64 = row
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, v)| v.abs())
            .sum();
        lo = lo.min(row[i] - radius);
    }

    // Shift ladder, aggressive → safe. A candidate above λ_min makes
    // `a − σI` indefinite and Cholesky reports Singular; the next rung is
    // tried. The Gershgorin rung keeps every eigenvalue ≥ scale·1e-6 > 0.
    let candidates = [
        r0 - 0.01 * span,
        r0 - 0.1 * span,
        r0 - span,
        lo - scale * 1e-6,
    ];
    let mut factor = None;
    for &sigma in &candidates {
        let mut c = a.clone();
        for i in 0..n {
            c[(i, i)] -= sigma;
        }
        if let Ok(f) = CholeskyDecomposition::new(&c) {
            factor = Some(f);
            break;
        }
    }
    let factor = factor.ok_or(LinalgError::Singular {
        op: "subspace shift",
    })?;

    let keep: Vec<usize> = (0..d).collect();
    for iteration in 1..=options.max_iterations {
        // Two inverse applications per sweep: squares the contraction for
        // the price of two O(n²) triangular solves per column.
        let mut w = Matrix::zeros(n, p);
        for c in 0..p {
            let once = factor.solve(&v.col(c))?;
            let twice = factor.solve(&once)?;
            w.set_col(c, &twice)?;
        }
        orthonormalize_columns(&mut w);

        // Rayleigh–Ritz on the original matrix: T = WᵀMW, rotate W onto the
        // Ritz vectors so columns line up with individual eigenpairs.
        let aw = a.matmul(&w)?;
        let t = w.transpose_matmul(&aw)?.symmetrize()?;
        let small = Eigen::decompose_with(&t, EigenMethod::Jacobi)?;
        v = w.matmul(&small.eigenvectors)?;
        let av = aw.matmul(&small.eigenvectors)?;

        // Only the d returned pairs need to be converged; the guard column
        // keeps sweeping the remainder of the spectrum.
        let mut residual = 0.0_f64;
        for k in 0..d {
            let lambda = small.eigenvalues[k];
            for i in 0..n {
                let r = (av[(i, k)] - lambda * v[(i, k)]).abs();
                if r > residual {
                    residual = r;
                }
            }
        }
        if residual <= options.tolerance * scale {
            return Ok(SubspaceEigen {
                eigenvalues: small.eigenvalues[..d].to_vec(),
                eigenvectors: v.select_cols(&keep)?,
                iterations: iteration,
            });
        }
    }

    Err(LinalgError::NoConvergence {
        op: "subspace iteration",
        iterations: options.max_iterations,
    })
}

/// In-place modified Gram-Schmidt over the columns of `m`. A column that
/// collapses to (numerical) zero — a rank-deficient seed — is replaced by a
/// deterministic xorshift direction re-orthogonalized against the columns
/// before it, so the result always has full column rank.
fn orthonormalize_columns(m: &mut Matrix) {
    let (n, d) = m.shape();
    let mut cols: Vec<Vec<f64>> = (0..d).map(|c| m.col(c)).collect();
    let mut rng_state = 0x2545f4914f6cdd1d_u64;
    for k in 0..d {
        let mut colk = std::mem::take(&mut cols[k]);
        let mut attempts = 0;
        loop {
            for prev in cols.iter().take(k) {
                let dot: f64 = prev.iter().zip(&colk).map(|(p, c)| p * c).sum();
                for (c, p) in colk.iter_mut().zip(prev) {
                    *c -= dot * p;
                }
            }
            let norm: f64 = colk.iter().map(|c| c * c).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for c in colk.iter_mut() {
                    *c /= norm;
                }
                break;
            }
            // Degenerate column: deterministic replacement direction.
            attempts += 1;
            if attempts == 1 {
                for (i, value) in colk.iter_mut().enumerate() {
                    *value = if i == k % n { 1.0 } else { 0.0 };
                }
            } else {
                for value in colk.iter_mut() {
                    rng_state ^= rng_state << 13;
                    rng_state ^= rng_state >> 7;
                    rng_state ^= rng_state << 17;
                    *value = (rng_state as f64 / u64::MAX as f64) - 0.5;
                }
            }
        }
        cols[k] = colk;
    }
    for (c, col) in cols.iter().enumerate() {
        m.set_col(c, col).expect("column shape unchanged");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        let mut state = seed;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    fn assert_matches_dense(a: &Matrix, result: &SubspaceEigen, tol: f64) {
        let dense = Eigen::decompose(a).unwrap();
        let d = result.eigenvalues.len();
        for k in 0..d {
            assert!(
                (result.eigenvalues[k] - dense.eigenvalues[k]).abs() < tol,
                "eigenvalue {k}: {} vs dense {}",
                result.eigenvalues[k],
                dense.eigenvalues[k]
            );
        }
        // Orthonormal columns.
        let vtv = result
            .eigenvectors
            .transpose_matmul(&result.eigenvectors)
            .unwrap();
        let err = vtv.sub(&Matrix::identity(d)).unwrap().max_abs();
        assert!(err < 1e-8, "VᵀV deviates from identity by {err}");
    }

    #[test]
    fn warm_seed_converges_to_the_dense_answer() {
        let a = random_symmetric(24, 7);
        let dense = Eigen::decompose(&a).unwrap();
        let seed = dense.smallest_eigenvectors(4).unwrap();
        // Perturb the matrix slightly — the refit scenario.
        let mut drifted = a.clone();
        let noise = random_symmetric(24, 99).scale(0.01);
        drifted.axpy(1.0, &noise).unwrap();
        let drifted = drifted.symmetrize().unwrap();
        let result =
            smallest_eigenpairs_warm(&drifted, &seed, &SubspaceOptions::default()).unwrap();
        assert_matches_dense(&drifted, &result, 1e-7);
        assert!(
            result.iterations < 100,
            "warm start should converge quickly, took {}",
            result.iterations
        );
    }

    #[test]
    fn cold_random_seed_still_converges_on_gapped_spectrum() {
        // Clear eigengap: diag(1, 2, ..., n) plus small symmetric noise.
        let n = 16;
        let mut a = random_symmetric(n, 3).scale(0.05);
        for i in 0..n {
            a[(i, i)] += (i + 1) as f64;
        }
        let a = a.symmetrize().unwrap();
        let seed = Matrix::filled(n, 3, 1.0); // rank-1: forces degeneracy repair
        let result = smallest_eigenpairs_warm(&a, &seed, &SubspaceOptions::default()).unwrap();
        assert_matches_dense(&a, &result, 1e-7);
    }

    #[test]
    fn diagonal_matrix_is_exact() {
        // Seed spans {e₀, e₁} — an exactly invariant subspace whose
        // eigenvalues (5, −2) are NOT the two smallest. The guard column
        // must pull e₂ (λ = 0.5) into the block.
        let a = Matrix::from_diag(&[5.0, -2.0, 0.5, 3.0]);
        let seed = Matrix::identity(4).select_cols(&[0, 1]).unwrap();
        let result = smallest_eigenpairs_warm(&a, &seed, &SubspaceOptions::default()).unwrap();
        assert!((result.eigenvalues[0] + 2.0).abs() < 1e-8);
        assert!((result.eigenvalues[1] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn full_width_seed_is_exact_in_one_pass() {
        // d == n leaves no room for a guard column; Rayleigh–Ritz over the
        // whole space is already exact.
        let a = random_symmetric(6, 41);
        let seed = Matrix::identity(6);
        let result = smallest_eigenpairs_warm(&a, &seed, &SubspaceOptions::default()).unwrap();
        assert_matches_dense(&a, &result, 1e-7);
    }

    #[test]
    fn rejects_bad_shapes_and_reports_non_convergence() {
        let a = random_symmetric(6, 11);
        assert!(smallest_eigenpairs_warm(&a, &Matrix::zeros(5, 2), &Default::default()).is_err());
        assert!(smallest_eigenpairs_warm(&a, &Matrix::zeros(6, 0), &Default::default()).is_err());
        assert!(smallest_eigenpairs_warm(&a, &Matrix::zeros(6, 7), &Default::default()).is_err());
        assert!(smallest_eigenpairs_warm(
            &Matrix::zeros(2, 3),
            &Matrix::zeros(2, 1),
            &Default::default()
        )
        .is_err());
        let tight = SubspaceOptions {
            max_iterations: 1,
            tolerance: 1e-16,
        };
        match smallest_eigenpairs_warm(&a, &Matrix::zeros(6, 2), &tight) {
            Err(LinalgError::NoConvergence { .. }) => {}
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_matrix_is_rejected() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = f64::NAN;
        assert!(smallest_eigenpairs_warm(&a, &Matrix::zeros(3, 1), &Default::default()).is_err());
    }
}
