//! Dense row-major `f64` matrix with the algebraic operations used throughout
//! the PFR reproduction.
//!
//! The matrix is intentionally simple: a `Vec<f64>` of length `rows * cols`
//! stored row-major, with bounds-checked accessors and shape-checked
//! operations that return [`LinalgError`] instead of panicking on user input.

use crate::error::LinalgError;
use crate::gemm;
use crate::Result;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use pfr_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a square matrix with `diag` on the diagonal and zeros elsewhere.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "buffer of length {} cannot form a {}x{} matrix",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from a slice of equally long rows.
    ///
    /// Returns an error if the rows are empty or have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidArgument(
                "cannot build a matrix from zero rows".to_string(),
            ));
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(LinalgError::InvalidArgument(
                "cannot build a matrix from empty rows".to_string(),
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::InvalidArgument(format!(
                    "row {} has length {}, expected {}",
                    i,
                    row.len(),
                    cols
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Bounds-checked element access; returns `None` when out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Returns a view of row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row index {r} out of range ({} rows)",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a mutable view of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row index {r} out of range ({} rows)",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "column index {c} out of range ({} cols)",
            self.cols
        );
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Overwrites column `c` with `values`.
    pub fn set_col(&mut self, c: usize, values: &[f64]) -> Result<()> {
        if c >= self.cols {
            return Err(LinalgError::InvalidArgument(format!(
                "column index {c} out of range ({} cols)",
                self.cols
            )));
        }
        if values.len() != self.rows {
            return Err(LinalgError::InvalidArgument(format!(
                "column of length {} cannot be assigned to a matrix with {} rows",
                values.len(),
                self.rows
            )));
        }
        for (r, &v) in values.iter().enumerate() {
            self.data[r * self.cols + c] = v;
        }
        Ok(())
    }

    /// Iterator over the rows of the matrix.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix multiplication `self * other`.
    ///
    /// Runs through the blocked, multi-threaded [`crate::gemm`] kernel. The
    /// result is deterministic and independent of the worker thread count;
    /// row `i` of the product depends only on row `i` of `self` and on
    /// `other`, never on how many other rows the batch carries.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        gemm::gemm_into(
            self.rows,
            other.cols,
            self.cols,
            gemm::MatRef::new(&self.data, self.cols, 1),
            gemm::MatRef::new(&other.data, other.cols, 1),
            &mut out.data,
            None,
        );
        Ok(out)
    }

    /// The retained naive `i-k-j` matrix multiplication, kept as the
    /// reference implementation the blocked kernel is property-tested and
    /// benchmarked against. Production paths should call
    /// [`Matrix::matmul`].
    pub fn matmul_naive(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &bkj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * bkj;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector multiplication `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| row.iter().zip(v.iter()).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Computes `selfᵀ * v` without materializing the transpose.
    pub fn transpose_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "transpose_matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (row, &vi) in self.iter_rows().zip(v.iter()) {
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(row.iter()) {
                *o += a * vi;
            }
        }
        Ok(out)
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * scalar).collect(),
        }
    }

    /// In-place `self += scalar * other`.
    pub fn axpy(&mut self, scalar: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scalar * b;
        }
        Ok(())
    }

    /// Applies a function to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Extracts the sub-matrix made of the given rows (in the given order).
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(LinalgError::InvalidArgument(format!(
                    "row index {i} out of range ({} rows)",
                    self.rows
                )));
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        })
    }

    /// Extracts the sub-matrix made of the given columns (in the given order).
    pub fn select_cols(&self, indices: &[usize]) -> Result<Matrix> {
        for &c in indices {
            if c >= self.cols {
                return Err(LinalgError::InvalidArgument(format!(
                    "column index {c} out of range ({} cols)",
                    self.cols
                )));
            }
        }
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (j, &c) in indices.iter().enumerate() {
                out.data[r * indices.len() + j] = self.data[r * self.cols + c];
            }
        }
        Ok(out)
    }

    /// Horizontally concatenates `self` and `other` (same number of rows).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Vertically concatenates `self` and `other` (same number of columns).
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, &x| acc.max(x.abs()))
    }

    /// Trace (sum of diagonal entries) of a square matrix.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        Ok((0..self.rows).map(|i| self.data[i * self.cols + i]).sum())
    }

    /// Returns the diagonal of the matrix as a vector.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.data[i * self.cols + i]).collect()
    }

    /// Checks symmetry of a square matrix within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.data[i * self.cols + j] - self.data[j * self.cols + i]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns the symmetrized matrix `(self + selfᵀ) / 2`.
    pub fn symmetrize(&self) -> Result<Matrix> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[i * self.cols + j] =
                    0.5 * (self.data[i * self.cols + j] + self.data[j * self.cols + i]);
            }
        }
        Ok(out)
    }

    /// Computes `self * otherᵀ` without materializing the transpose.
    ///
    /// The transposition is absorbed into the kernel's strided operand view
    /// (and disappears at packing time), so this is bitwise identical to
    /// `self.matmul(&other.transpose())` at zero copy cost.
    pub fn matmul_transpose(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_transpose",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        gemm::gemm_into(
            self.rows,
            other.rows,
            self.cols,
            gemm::MatRef::new(&self.data, self.cols, 1),
            gemm::MatRef::new(&other.data, 1, other.cols),
            &mut out.data,
            None,
        );
        Ok(out)
    }

    /// Computes `selfᵀ * other` without materializing the transpose.
    ///
    /// Like [`Matrix::matmul_transpose`], this routes through the one
    /// blocked kernel with a transposed left-operand view.
    pub fn transpose_matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.cols, other.cols);
        gemm::gemm_into(
            self.cols,
            other.cols,
            self.rows,
            gemm::MatRef::new(&self.data, 1, self.cols),
            gemm::MatRef::new(&other.data, other.cols, 1),
            &mut out.data,
            None,
        );
        Ok(out)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of range for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of range for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            let row: Vec<String> = self.row(r).iter().map(|x| format!("{x:9.4}")).collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ... ({} more rows)", self.rows - max_rows)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_has_ones_on_diagonal() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_rows() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_known_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let v = a.matvec(&[1.0, -1.0]).unwrap();
        assert_eq!(v, vec![-1.0, -1.0]);
    }

    #[test]
    fn transpose_matvec_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let v = vec![2.0, -1.0];
        let expected = a.transpose().matvec(&v).unwrap();
        let got = a.transpose_matvec(&v).unwrap();
        assert_eq!(expected, got);
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![4.0, 3.0], vec![2.0, 1.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap(), Matrix::filled(2, 2, 5.0));
        assert_eq!(
            a.sub(&b).unwrap(),
            Matrix::from_rows(&[vec![-3.0, -1.0], vec![1.0, 3.0]]).unwrap()
        );
        assert_eq!(
            a.hadamard(&b).unwrap(),
            Matrix::from_rows(&[vec![4.0, 6.0], vec![6.0, 4.0]]).unwrap()
        );
    }

    #[test]
    fn scale_and_axpy() {
        let a = Matrix::identity(2);
        let mut b = Matrix::zeros(2, 2);
        b.axpy(3.0, &a).unwrap();
        assert_eq!(b, a.scale(3.0));
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let r = m.select_rows(&[2, 0]).unwrap();
        assert_eq!(r.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(r.row(1), &[1.0, 2.0, 3.0]);
        let c = m.select_cols(&[1]).unwrap();
        assert_eq!(c.col(0), vec![2.0, 5.0, 8.0]);
        assert!(m.select_rows(&[5]).is_err());
        assert!(m.select_cols(&[5]).is_err());
    }

    #[test]
    fn hstack_vstack() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0], vec![4.0]]).unwrap();
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 2));
        assert_eq!(h.row(0), &[1.0, 3.0]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (4, 1));
        assert_eq!(v.col(0), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn trace_and_diag() {
        let m = Matrix::from_rows(&[vec![1.0, 9.0], vec![9.0, 2.0]]).unwrap();
        assert!(approx_eq(m.trace().unwrap(), 3.0));
        assert_eq!(m.diag(), vec![1.0, 2.0]);
        assert!(Matrix::zeros(2, 3).trace().is_err());
    }

    #[test]
    fn symmetry_checks() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 3.0]]).unwrap();
        assert!(m.is_symmetric(1e-12));
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.5, 3.0]]).unwrap();
        assert!(!a.is_symmetric(1e-12));
        let s = a.symmetrize().unwrap();
        assert!(s.is_symmetric(1e-12));
        assert!(approx_eq(s[(0, 1)], 2.25));
    }

    #[test]
    fn matmul_transpose_helpers_match_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![1.0, 0.0, -1.0], vec![2.0, 1.0, 0.0]]).unwrap();
        let expected = a.matmul(&b.transpose()).unwrap();
        assert_eq!(a.matmul_transpose(&b).unwrap(), expected);
        let expected2 = a.transpose().matmul(&b).unwrap();
        assert_eq!(a.transpose_matmul(&b).unwrap(), expected2);
    }

    #[test]
    fn frobenius_norm_and_max_abs() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]).unwrap();
        assert!(approx_eq(m.frobenius_norm(), 5.0));
        assert!(approx_eq(m.max_abs(), 4.0));
    }

    #[test]
    fn set_col_validates_input() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.set_col(0, &[1.0, 2.0]).is_ok());
        assert_eq!(m.col(0), vec![1.0, 2.0]);
        assert!(m.set_col(5, &[1.0, 2.0]).is_err());
        assert!(m.set_col(0, &[1.0]).is_err());
    }

    #[test]
    fn display_does_not_panic_on_large_matrix() {
        let m = Matrix::zeros(20, 3);
        let s = format!("{m}");
        assert!(s.contains("more rows"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }
}
