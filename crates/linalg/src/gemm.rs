//! Blocked, packed, multi-threaded GEMM: the one kernel behind every dense
//! matrix product in the workspace.
//!
//! [`Matrix::matmul`](crate::Matrix::matmul),
//! [`Matrix::matmul_transpose`](crate::Matrix::matmul_transpose) and
//! [`Matrix::transpose_matmul`](crate::Matrix::transpose_matmul) all route
//! through [`gemm_into`], which computes `C += A · B` where `A` and `B` are
//! strided views ([`MatRef`]) — transposition is absorbed for free when the
//! operands are packed, so the three entry points share one code path.
//!
//! # Structure
//!
//! The kernel follows the classic three-level blocking scheme (Goto/BLIS):
//!
//! * a **register-tiled micro-kernel** computing an `MR x NR` tile of `C`
//!   from packed operand strips, written so the accumulator tile lives in
//!   SIMD registers. Three instantiations share one generic body:
//!   an AVX-512 one (8 x 8, one `zmm` accumulator per tile row), an
//!   AVX2+FMA one (4 x 8) and a portable 4 x 4 one the autovectorizer
//!   lowers to the baseline target features. The vector instantiations are
//!   compiled with `#[target_feature]` and chosen by runtime CPU detection;
//! * **cache blocking**: `A` is packed block by block (`MC` rows x `KC`
//!   depth) into contiguous `MR`-strips that stream from L2, `B` is packed
//!   once up front into `NR`-strips so every micro-kernel call reads both
//!   operands contiguously, and one `B` strip (`KC x NR` doubles) stays
//!   L1-resident while a whole `A` panel streams against it;
//! * **row-panel parallelism** over `std::thread::scope`: the rows of `C`
//!   are split into disjoint bands of whole `MR`-strips, one band per
//!   thread. No locks, no atomics — each thread owns its band of `C`.
//!
//! # Determinism
//!
//! The serving tier asserts *bitwise* equality between online and offline
//! scores, so the kernel is deterministic and **thread-count independent**:
//! every element `C[i][j]` is accumulated by exactly one thread, strictly in
//! ascending `k` order (`KC` blocks ascending, `k` ascending inside the
//! micro-kernel), and the band split only decides *which* thread runs that
//! unchanged per-element reduction. The tile geometry is equally irrelevant
//! to the bits: it decides which elements are computed *together*, never the
//! order of one element's own reduction. Running with 1 thread or 16
//! produces the same bits, and row `i` of a product depends only on row `i`
//! of `A` — a 1-row score and a 64-row batch agree bitwise. Results may
//! differ in the last ulp from the retained naive reference
//! ([`Matrix::matmul_naive`](crate::Matrix::matmul_naive)) because the
//! vector micro-kernels fuse multiply-adds; the property suite bounds that
//! difference at `1e-9` relative.
//!
//! Very small products (`k·n` below [`SMALL_KN`]) skip packing entirely and
//! run a per-row `i-k-j` loop. The dispatch deliberately ignores the row
//! count `m`, so batches of different heights take the same code path.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Row-panel height of a packed `A` block (L2 blocking).
const MC: usize = 64;
/// Depth of a packed block (L1 blocking): one `B` strip is `KC x NR`
/// doubles, resident in L1 while a whole `A` panel streams against it.
const KC: usize = 256;
/// Products with `k * n` at or below this skip packing and use the per-row
/// loop. The threshold must depend only on `k` and `n` (never on the row
/// count `m`): batches of different heights must take the same path so
/// their rows stay bitwise identical.
const SMALL_KN: usize = 2048;
/// One extra thread is worth spawning per this many flops.
const FLOPS_PER_THREAD: usize = 1 << 23;

/// A read-only strided view of an `m x k` operand.
///
/// Element `(i, j)` lives at `data[i * row_stride + j * col_stride]`; a
/// transposed view of a row-major matrix is expressed by swapping the
/// strides, so the kernel never materializes a transpose.
#[derive(Debug, Clone, Copy)]
pub struct MatRef<'a> {
    data: &'a [f64],
    row_stride: usize,
    col_stride: usize,
}

impl<'a> MatRef<'a> {
    /// A view over `data` with the given strides.
    pub fn new(data: &'a [f64], row_stride: usize, col_stride: usize) -> Self {
        MatRef {
            data,
            row_stride,
            col_stride,
        }
    }

    /// Element `(i, j)` of the viewed operand.
    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.row_stride + j * self.col_stride]
    }
}

/// Shared micro-kernel body: accumulates the `MR x NR` tile
/// `acc += Ap · Bp` over `kc` packed depth steps, strictly in ascending `k`
/// order. `FMA` selects fused multiply-add (single rounding) — the vector
/// instantiations use it, the portable one keeps separate multiply and add
/// so the baseline build does not fall back to a libm soft-fma call.
#[inline(always)]
fn micro_kernel_body<const MR: usize, const NR: usize, const FMA: bool>(
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    acc: &mut [[f64; NR]; MR],
) {
    // Accumulate into a local tile: a non-escaping local is provably
    // alias-free, so the register allocator keeps it in SIMD registers for
    // the whole depth loop instead of spilling per iteration.
    let mut tile = *acc;
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for (acc_row, &ai) in tile.iter_mut().zip(av.iter()) {
            for (c, &bj) in acc_row.iter_mut().zip(bv.iter()) {
                if FMA {
                    *c = ai.mul_add(bj, *c);
                } else {
                    *c += ai * bj;
                }
            }
        }
    }
    *acc = tile;
}

/// Portable instantiation: 4 x 4 tile, baseline code generation.
fn micro_portable(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; 4]; 4]) {
    micro_kernel_body::<4, 4, false>(kc, ap, bp, acc);
}

/// AVX2+FMA instantiation: 4 x 8 tile (two `ymm` per accumulator row).
/// Only called after runtime detection confirms AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
fn micro_avx2(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; 8]; 4]) {
    micro_kernel_body::<4, 8, true>(kc, ap, bp, acc);
}

/// AVX-512 instantiation: 8 x 8 tile (one `zmm` per accumulator row).
/// Only called after runtime detection confirms AVX-512F and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "fma")]
fn micro_avx512(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; 8]; 8]) {
    micro_kernel_body::<8, 8, true>(kc, ap, bp, acc);
}

/// Packs the `A` block `rows x ks` into `MR`-strips: strip `s` holds rows
/// `rows.start + s*MR ..`, laid out depth-major so the micro-kernel reads
/// one `[f64; MR]` column per `k` step. Rows beyond the block are padded
/// with zeros (the padding only ever feeds padded *output* rows).
fn pack_a<const MR: usize>(dst: &mut [f64], a: MatRef<'_>, rows: Range<usize>, ks: Range<usize>) {
    let kc = ks.len();
    for (s, strip_rows) in (rows.start..rows.end).step_by(MR).enumerate() {
        let live = MR.min(rows.end - strip_rows);
        let strip = &mut dst[s * MR * kc..(s + 1) * MR * kc];
        for (l, k) in ks.clone().enumerate() {
            let col = &mut strip[l * MR..l * MR + MR];
            for (r, c) in col.iter_mut().enumerate() {
                *c = if r < live {
                    a.at(strip_rows + r, k)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs all of `B` (`k x n`) into `NR`-strips, one contiguous region per
/// `KC` depth block: block `p` holds strips of rows `p*KC ..`, strip `t`
/// covers columns `t*NR ..` padded with zeros to a full `NR`. The packed
/// buffer is shared read-only by every worker thread.
fn pack_b<const NR: usize>(dst: &mut [f64], b: MatRef<'_>, k: usize, n: usize) {
    let n_strips = n.div_ceil(NR);
    let mut offset = 0;
    for ks in 0..k.div_ceil(KC) {
        let k0 = ks * KC;
        let kc = KC.min(k - k0);
        for t in 0..n_strips {
            let j0 = t * NR;
            let live = NR.min(n - j0);
            let strip = &mut dst[offset + t * kc * NR..offset + (t + 1) * kc * NR];
            for l in 0..kc {
                let row = &mut strip[l * NR..l * NR + NR];
                for (c, cell) in row.iter_mut().enumerate() {
                    *cell = if c < live { b.at(k0 + l, j0 + c) } else { 0.0 };
                }
            }
        }
        offset += kc * n_strips * NR;
    }
}

/// Offset (in doubles) of depth block `ks` inside the packed `B` buffer.
/// Every block before `ks` is a full `KC` deep.
fn packed_b_block_offset<const NR: usize>(ks: usize, n: usize) -> usize {
    ks * KC * n.div_ceil(NR) * NR
}

/// Length in doubles of the fully packed `B` buffer for a `k x n` operand.
fn packed_b_len<const NR: usize>(k: usize, n: usize) -> usize {
    k * n.div_ceil(NR) * NR
}

/// Computes one thread's row band `c_band += A[rows] · B` against the shared
/// packed `B`. `c_band` starts at row `rows.start` of the full `C`.
fn run_band<const MR: usize, const NR: usize>(
    c_band: &mut [f64],
    rows: Range<usize>,
    a: MatRef<'_>,
    packed_b: &[f64],
    n: usize,
    k: usize,
    micro: impl Fn(usize, &[f64], &[f64], &mut [[f64; NR]; MR]),
) {
    let n_strips = n.div_ceil(NR);
    let mut a_buf = vec![0.0f64; MC.div_ceil(MR) * MR * KC];
    for ic in (rows.start..rows.end).step_by(MC) {
        let mc = MC.min(rows.end - ic);
        for ks in 0..k.div_ceil(KC) {
            let k0 = ks * KC;
            let kc = KC.min(k - k0);
            pack_a::<MR>(&mut a_buf, a, ic..ic + mc, k0..k0 + kc);
            let b_block = &packed_b[packed_b_block_offset::<NR>(ks, n)..];
            for t in 0..n_strips {
                let bp = &b_block[t * kc * NR..(t + 1) * kc * NR];
                let j0 = t * NR;
                let live_cols = NR.min(n - j0);
                for (s, i0) in (0..mc).step_by(MR).enumerate() {
                    let ap = &a_buf[s * MR * kc..(s + 1) * MR * kc];
                    let mut acc = [[0.0f64; NR]; MR];
                    micro(kc, ap, bp, &mut acc);
                    let live_rows = MR.min(mc - i0);
                    for (r, acc_row) in acc.iter().enumerate().take(live_rows) {
                        let row0 = (ic - rows.start + i0 + r) * n + j0;
                        for (c, &v) in acc_row.iter().enumerate().take(live_cols) {
                            c_band[row0 + c] += v;
                        }
                    }
                }
            }
        }
    }
}

/// Packs `B`, splits the rows of `C` into per-thread bands and runs the
/// blocked kernel with the given micro-kernel instantiation.
#[allow(clippy::too_many_arguments)] // mirrors gemm_into plus the micro-kernel
fn gemm_packed<const MR: usize, const NR: usize>(
    m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    c: &mut [f64],
    threads: Option<NonZeroUsize>,
    micro: impl Fn(usize, &[f64], &[f64], &mut [[f64; NR]; MR]) + Copy + Send + Sync,
) {
    let mut packed_b = vec![0.0f64; packed_b_len::<NR>(k, n)];
    pack_b::<NR>(&mut packed_b, b, k, n);

    let requested = threads.map_or_else(|| auto_threads(m, n, k), NonZeroUsize::get);
    let n_threads = requested.clamp(1, m.div_ceil(MR));
    if n_threads == 1 {
        run_band::<MR, NR>(c, 0..m, a, &packed_b, n, k, micro);
        return;
    }

    // Split C into bands of whole MR-strips, one per thread. Bands are
    // disjoint, so each thread gets an exclusive &mut band — no locks, and
    // the per-element reduction order is unaffected by the split.
    let strips = m.div_ceil(MR);
    let band_rows = strips.div_ceil(n_threads) * MR;
    std::thread::scope(|scope| {
        let packed_b = &packed_b;
        for (band_idx, c_band) in c.chunks_mut(band_rows * n).enumerate() {
            let row0 = band_idx * band_rows;
            let row1 = (row0 + band_rows).min(m);
            scope.spawn(move || run_band::<MR, NR>(c_band, row0..row1, a, packed_b, n, k, micro));
        }
    });
}

/// The unpacked fallback for small products: a per-row `i-k-j` loop with the
/// same strictly ascending `k` accumulation order per output element as the
/// blocked path.
fn small_gemm(m: usize, n: usize, k: usize, a: MatRef<'_>, b: MatRef<'_>, c: &mut [f64]) {
    for i in 0..m {
        let c_row = &mut c[i * n..(i + 1) * n];
        for l in 0..k {
            let ail = a.at(i, l);
            let mut b_idx = l * b.row_stride;
            for cell in c_row.iter_mut() {
                *cell += ail * b.data[b_idx];
                b_idx += b.col_stride;
            }
        }
    }
}

/// How many worker threads an `m x n x k` product is worth.
fn auto_threads(m: usize, n: usize, k: usize) -> usize {
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    let by_work = (flops / FLOPS_PER_THREAD).max(1);
    let hw = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    by_work.min(hw)
}

/// Computes `C += A · B` where `A` is an `m x k` view, `B` a `k x n` view
/// and `c` the row-major `m x n` output buffer (callers pass it zeroed for a
/// plain product).
///
/// `threads` forces the worker count (used by the determinism tests);
/// `None` sizes the pool from the problem's flop count and the machine's
/// parallelism. The result is bitwise identical for every thread count —
/// see the module docs for why.
///
/// # Panics
/// Panics if `c.len() != m * n` or an operand view is too small for its
/// shape; shape *compatibility* is the caller's contract ([`crate::Matrix`]
/// validates it and returns `ShapeMismatch` before calling in).
pub fn gemm_into(
    m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    c: &mut [f64],
    threads: Option<NonZeroUsize>,
) {
    assert_eq!(c.len(), m * n, "output buffer must be exactly m x n");
    if m == 0 || n == 0 || k == 0 {
        return; // C += A·B adds nothing when any dimension is empty.
    }
    // Touch the last element of each view so stride bugs fail loudly here
    // rather than inside a packed loop.
    let _ = a.at(m - 1, k - 1);
    let _ = b.at(k - 1, n - 1);

    // The small-product cutoff must ignore `m`: see SMALL_KN.
    if k * n <= SMALL_KN {
        small_gemm(m, n, k, a, b, c);
        return;
    }

    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: runtime detection above confirmed AVX-512F and FMA,
            // so the target-feature instantiation is safe on this CPU.
            let micro = |kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; 8]; 8]| unsafe {
                micro_avx512(kc, ap, bp, acc)
            };
            return gemm_packed::<8, 8>(m, n, k, a, b, c, threads, micro);
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: runtime detection above confirmed AVX2 and FMA.
            let micro = |kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; 8]; 4]| unsafe {
                micro_avx2(kc, ap, bp, acc)
            };
            return gemm_packed::<4, 8>(m, n, k, a, b, c, threads, micro);
        }
    }
    gemm_packed::<4, 4>(m, n, k, a, b, c, threads, micro_portable);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    fn max_rel_err(got: &Matrix, want: &Matrix) -> f64 {
        let scale = want.max_abs().max(1.0);
        got.sub(want).unwrap().max_abs() / scale
    }

    #[test]
    fn blocked_matches_naive_across_shapes() {
        // Shapes straddling every blocking edge: micro-tile fringes, exact
        // MR/NR multiples, more than one KC block, and the small-path
        // cutoff in both directions.
        let shapes = [
            (1, 1, 1),
            (1, 9, 300),
            (3, 5, 2),
            (4, 8, 256),
            (5, 9, 257),
            (64, 64, 64),
            (65, 33, 70),
            (7, 130, 40),
            (130, 7, 513),
        ];
        for &(m, n, k) in &shapes {
            let a = deterministic_matrix(m, k, 11 + m as u64);
            let b = deterministic_matrix(k, n, 23 + n as u64);
            let got = a.matmul(&b).unwrap();
            let want = a.matmul_naive(&b).unwrap();
            assert!(
                max_rel_err(&got, &want) < 1e-9,
                "blocked kernel diverges from naive at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_a_single_bit() {
        let (m, n, k) = (97, 75, 311);
        let a = deterministic_matrix(m, k, 5);
        let b = deterministic_matrix(k, n, 7);
        let run = |threads: usize| {
            let mut c = vec![0.0f64; m * n];
            gemm_into(
                m,
                n,
                k,
                MatRef::new(a.as_slice(), k, 1),
                MatRef::new(b.as_slice(), n, 1),
                &mut c,
                Some(NonZeroUsize::new(threads).unwrap()),
            );
            c
        };
        let reference = run(1);
        for threads in [2, 3, 4, 7, 16] {
            let c = run(threads);
            for (i, (x, y)) in reference.iter().zip(c.iter()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "threads={threads} changed element {i}"
                );
            }
        }
    }

    #[test]
    fn rows_are_independent_of_batch_height() {
        // A 1-row product and the same row inside a tall batch must agree
        // bitwise — the property pfr-serve's online-vs-offline equality
        // rests on.
        let k = 60;
        let n = 40; // k * n > SMALL_KN exercises the packed path
        let batch = deterministic_matrix(33, k, 3);
        let b = deterministic_matrix(k, n, 4);
        let full = batch.matmul(&b).unwrap();
        for i in 0..batch.rows() {
            let row = Matrix::from_vec(1, k, batch.row(i).to_vec()).unwrap();
            let single = row.matmul(&b).unwrap();
            for j in 0..n {
                assert_eq!(
                    single[(0, j)].to_bits(),
                    full[(i, j)].to_bits(),
                    "row {i} col {j} depends on batch height"
                );
            }
        }
    }

    #[test]
    fn transposed_views_share_the_kernel_bitwise() {
        let a = deterministic_matrix(30, 50, 9);
        let b = deterministic_matrix(20, 50, 10);
        let via_view = a.matmul_transpose(&b).unwrap();
        let via_copy = a.matmul(&b.transpose()).unwrap();
        assert_eq!(via_view, via_copy, "matmul_transpose diverges from matmul");
        let c = deterministic_matrix(30, 20, 12);
        let via_view = a.transpose_matmul(&c).unwrap();
        let via_copy = a.transpose().matmul(&c).unwrap();
        assert_eq!(via_view, via_copy, "transpose_matmul diverges from matmul");
    }

    #[test]
    fn degenerate_shapes() {
        // 0 x n, k = 0 and 1 x 1 all go through without panicking.
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        assert_eq!(a.matmul(&b).unwrap().shape(), (0, 3));
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 3);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (4, 3));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
        let a = Matrix::filled(1, 1, 3.0);
        let b = Matrix::filled(1, 1, -2.0);
        assert_eq!(a.matmul(&b).unwrap()[(0, 0)], -6.0);
    }

    #[test]
    fn accumulates_into_existing_output() {
        let a = deterministic_matrix(3, 4, 1);
        let b = deterministic_matrix(4, 2, 2);
        let product = a.matmul(&b).unwrap();
        let mut c = vec![1.0f64; 6];
        gemm_into(
            3,
            2,
            4,
            MatRef::new(a.as_slice(), 4, 1),
            MatRef::new(b.as_slice(), 2, 1),
            &mut c,
            None,
        );
        for (i, &v) in c.iter().enumerate() {
            let want = 1.0 + product.as_slice()[i];
            assert!((v - want).abs() < 1e-12, "element {i} did not accumulate");
        }
    }

    #[test]
    #[should_panic(expected = "m x n")]
    fn wrong_output_length_panics() {
        let a = [0.0; 4];
        let b = [0.0; 4];
        let mut c = [0.0; 3];
        gemm_into(
            2,
            2,
            2,
            MatRef::new(&a, 2, 1),
            MatRef::new(&b, 2, 1),
            &mut c,
            None,
        );
    }
}
