//! Symmetric eigensolvers.
//!
//! The PFR optimization problem (Eq. 7 of the paper) reduces to finding the
//! `d` smallest eigenvectors of the symmetric matrix
//! `X ((1-γ) Lˣ + γ Lᶠ) Xᵀ`. The original implementation used
//! `scipy.linalg.lapack`; here we provide two self-contained solvers:
//!
//! * [`EigenMethod::Jacobi`] — the cyclic Jacobi rotation method. Numerically
//!   very robust and accurate; `O(m³)` per sweep with a handful of sweeps.
//!   This is the default.
//! * [`EigenMethod::TridiagonalQl`] — Householder reduction to tridiagonal
//!   form followed by the implicit-shift QL iteration (the classic
//!   `tred2`/`tql2` pair). Faster for larger matrices.
//!
//! Both return the full decomposition with eigenvalues sorted in ascending
//! order and eigenvectors as the columns of an orthonormal matrix.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Which algorithm [`Eigen::decompose_with`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EigenMethod {
    /// Cyclic Jacobi rotations (default; most robust).
    #[default]
    Jacobi,
    /// Householder tridiagonalization followed by implicit QL iterations.
    TridiagonalQl,
}

/// Result of a symmetric eigen-decomposition: `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues sorted in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors stored as the columns of this matrix, in the
    /// same order as [`Eigen::eigenvalues`].
    pub eigenvectors: Matrix,
}

impl Eigen {
    /// Decomposes a symmetric matrix using the default method (Jacobi).
    ///
    /// The matrix is symmetrized (`(A + Aᵀ)/2`) before decomposition to guard
    /// against tiny floating-point asymmetries; an error is returned if the
    /// asymmetry is large (`> 1e-8 * max|a_ij|`).
    pub fn decompose(a: &Matrix) -> Result<Eigen> {
        Self::decompose_with(a, EigenMethod::Jacobi)
    }

    /// Decomposes a symmetric matrix with an explicitly chosen method.
    pub fn decompose_with(a: &Matrix, method: EigenMethod) -> Result<Eigen> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::InvalidArgument(
                "cannot decompose an empty matrix".to_string(),
            ));
        }
        let scale = a.max_abs();
        let tol = 1e-8 * scale.max(1.0);
        let mut max_asym = 0.0_f64;
        for i in 0..n {
            for j in (i + 1)..n {
                max_asym = max_asym.max((a[(i, j)] - a[(j, i)]).abs());
            }
        }
        if max_asym > tol {
            return Err(LinalgError::NotSymmetric {
                max_asymmetry: max_asym,
            });
        }
        let sym = a.symmetrize()?;
        let mut eig = match method {
            EigenMethod::Jacobi => jacobi(&sym)?,
            EigenMethod::TridiagonalQl => tridiagonal_ql(&sym)?,
        };
        eig.sort_ascending();
        Ok(eig)
    }

    /// Returns the `d` eigenvectors associated with the smallest eigenvalues,
    /// as the columns of an `n x d` matrix.
    ///
    /// This is exactly the projection matrix `V` used by linear PFR.
    pub fn smallest_eigenvectors(&self, d: usize) -> Result<Matrix> {
        let n = self.eigenvectors.rows();
        if d == 0 || d > n {
            return Err(LinalgError::InvalidArgument(format!(
                "requested {d} eigenvectors from a decomposition of size {n}"
            )));
        }
        let indices: Vec<usize> = (0..d).collect();
        self.eigenvectors.select_cols(&indices)
    }

    /// Returns the `d` eigenvectors associated with the largest eigenvalues,
    /// as the columns of an `n x d` matrix.
    pub fn largest_eigenvectors(&self, d: usize) -> Result<Matrix> {
        let n = self.eigenvectors.rows();
        if d == 0 || d > n {
            return Err(LinalgError::InvalidArgument(format!(
                "requested {d} eigenvectors from a decomposition of size {n}"
            )));
        }
        let indices: Vec<usize> = ((n - d)..n).rev().collect();
        self.eigenvectors.select_cols(&indices)
    }

    /// Reconstructs `V diag(λ) Vᵀ`, useful for testing.
    pub fn reconstruct(&self) -> Result<Matrix> {
        let v = &self.eigenvectors;
        let lambda = Matrix::from_diag(&self.eigenvalues);
        v.matmul(&lambda)?.matmul_transpose(v)
    }

    fn sort_ascending(&mut self) {
        let n = self.eigenvalues.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            self.eigenvalues[i]
                .partial_cmp(&self.eigenvalues[j])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let sorted_values: Vec<f64> = order.iter().map(|&i| self.eigenvalues[i]).collect();
        let sorted_vectors = self
            .eigenvectors
            .select_cols(&order)
            .expect("column permutation of eigenvector matrix cannot fail");
        self.eigenvalues = sorted_values;
        self.eigenvectors = sorted_vectors;
    }
}

/// Cyclic Jacobi eigenvalue algorithm for symmetric matrices.
fn jacobi(a: &Matrix) -> Result<Eigen> {
    let n = a.rows();
    let mut a = a.clone();
    let mut v = Matrix::identity(n);
    const MAX_SWEEPS: usize = 100;

    for _sweep in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += a[(p, q)] * a[(p, q)];
            }
        }
        if off.sqrt() <= 1e-14 * a.max_abs().max(1.0) * n as f64 {
            let eigenvalues = a.diag();
            return Ok(Eigen {
                eigenvalues,
                eigenvectors: v,
            });
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                // Compute the Jacobi rotation that annihilates a_pq.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                let tau = s / (1.0 + c);

                // Update A = Jᵀ A J, touching only rows/cols p and q.
                a[(p, p)] = app - t * apq;
                a[(q, q)] = aqq + t * apq;
                a[(p, q)] = 0.0;
                a[(q, p)] = 0.0;
                for i in 0..n {
                    if i != p && i != q {
                        let aip = a[(i, p)];
                        let aiq = a[(i, q)];
                        a[(i, p)] = aip - s * (aiq + tau * aip);
                        a[(p, i)] = a[(i, p)];
                        a[(i, q)] = aiq + s * (aip - tau * aiq);
                        a[(q, i)] = a[(i, q)];
                    }
                }
                // Accumulate the rotation into V.
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = vip - s * (viq + tau * vip);
                    v[(i, q)] = viq + s * (vip - tau * viq);
                }
            }
        }
    }

    Err(LinalgError::NoConvergence {
        op: "jacobi eigen-decomposition",
        iterations: MAX_SWEEPS,
    })
}

/// Householder reduction of a symmetric matrix to tridiagonal form followed by
/// the implicit-shift QL iteration (classic `tred2` + `tql2`).
fn tridiagonal_ql(a: &Matrix) -> Result<Eigen> {
    let n = a.rows();
    // z starts as a copy of A and ends up holding the eigenvectors.
    let mut z = a.clone();
    let mut d = vec![0.0_f64; n]; // diagonal
    let mut e = vec![0.0_f64; n]; // off-diagonal

    // --- Householder reduction (tred2) ---
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    e[j] -= hh * f;
                    let g = e[j];
                    for k in 0..=j {
                        z[(j, k)] -= f * e[k] + g * z[(i, k)];
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }

    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    z[(k, j)] -= g * z[(k, i)];
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }

    // --- Implicit QL with shifts (tql2) ---
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    const MAX_ITER: usize = 50;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element to split the problem.
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_ITER {
                return Err(LinalgError::NoConvergence {
                    op: "tridiagonal QL eigen-decomposition",
                    iterations: MAX_ITER,
                });
            }
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut broke_early = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Deflation: the problem splits, restart the outer search.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    broke_early = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate eigenvectors.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if broke_early {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    Ok(Eigen {
        eigenvalues: d,
        eigenvectors: z,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &Matrix, method: EigenMethod, tol: f64) {
        let eig = Eigen::decompose_with(a, method).unwrap();
        // Reconstruction.
        let rec = eig.reconstruct().unwrap();
        let diff = rec.sub(a).unwrap().max_abs();
        assert!(diff < tol, "reconstruction error {diff} exceeds {tol}");
        // Orthonormality.
        let vtv = eig
            .eigenvectors
            .transpose_matmul(&eig.eigenvectors)
            .unwrap();
        let ortho_err = vtv.sub(&Matrix::identity(a.rows())).unwrap().max_abs();
        assert!(
            ortho_err < tol,
            "orthonormality error {ortho_err} exceeds {tol}"
        );
        // Sorted ascending.
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    fn example_matrix() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 1.0, -2.0, 2.0],
            vec![1.0, 2.0, 0.0, 1.0],
            vec![-2.0, 0.0, 3.0, -2.0],
            vec![2.0, 1.0, -2.0, -1.0],
        ])
        .unwrap()
    }

    #[test]
    fn jacobi_2x2_known_eigenvalues() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = Eigen::decompose(&a).unwrap();
        assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-10);
        assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_diagonal_matrix_is_trivial() {
        let a = Matrix::from_diag(&[5.0, -2.0, 0.5]);
        let eig = Eigen::decompose(&a).unwrap();
        assert!((eig.eigenvalues[0] + 2.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 0.5).abs() < 1e-12);
        assert!((eig.eigenvalues[2] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_reconstructs_4x4() {
        check_decomposition(&example_matrix(), EigenMethod::Jacobi, 1e-9);
    }

    #[test]
    fn tridiagonal_ql_reconstructs_4x4() {
        check_decomposition(&example_matrix(), EigenMethod::TridiagonalQl, 1e-9);
    }

    #[test]
    fn both_methods_agree_on_eigenvalues() {
        let a = example_matrix();
        let j = Eigen::decompose_with(&a, EigenMethod::Jacobi).unwrap();
        let q = Eigen::decompose_with(&a, EigenMethod::TridiagonalQl).unwrap();
        for (x, y) in j.eigenvalues.iter().zip(q.eigenvalues.iter()) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Eigen::decompose(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![5.0, 1.0]]).unwrap();
        assert!(matches!(
            Eigen::decompose(&a),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn smallest_and_largest_eigenvectors() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let eig = Eigen::decompose(&a).unwrap();
        let small = eig.smallest_eigenvectors(1).unwrap();
        // Eigenvalue 1.0 corresponds to basis vector e_1 (index 1).
        assert!(small[(1, 0)].abs() > 0.99);
        let large = eig.largest_eigenvectors(1).unwrap();
        assert!(large[(0, 0)].abs() > 0.99);
        assert!(eig.smallest_eigenvectors(0).is_err());
        assert!(eig.smallest_eigenvectors(4).is_err());
    }

    #[test]
    fn psd_matrix_has_nonnegative_eigenvalues() {
        // Gram matrix B Bᵀ is PSD.
        let b = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![-1.0, 0.3, 2.0],
            vec![0.7, -0.2, 1.1],
        ])
        .unwrap();
        let a = b.matmul_transpose(&b).unwrap();
        let eig = Eigen::decompose(&a).unwrap();
        for &l in &eig.eigenvalues {
            assert!(l > -1e-9, "eigenvalue {l} should be non-negative");
        }
    }

    #[test]
    fn moderately_large_random_matrix() {
        // Deterministic pseudo-random symmetric matrix, 30x30.
        let n = 30;
        let mut a = Matrix::zeros(n, n);
        let mut state = 42u64;
        let mut next = || {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        check_decomposition(&a, EigenMethod::Jacobi, 1e-8);
        check_decomposition(&a, EigenMethod::TridiagonalQl, 1e-8);
    }
}
