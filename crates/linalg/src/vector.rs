//! Small helpers for `&[f64]` vectors.
//!
//! These free functions avoid pulling in a dedicated vector type; slices are
//! idiomatic and interoperate directly with [`crate::Matrix`] rows.

/// Dot product of two equally long slices.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two points.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal lengths");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two points.
#[inline]
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// In-place `y += alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a vector in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalizes a vector to unit L2 norm in place. Zero vectors are left
/// untouched.
pub fn normalize(x: &mut [f64]) {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
}

/// Sum of the elements.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Arithmetic mean; returns 0.0 for an empty slice.
#[inline]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        sum(a) / a.len() as f64
    }
}

/// Index of the maximum element (first occurrence). Returns `None` for empty
/// input or if every element is NaN.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element (first occurrence). Returns `None` for empty
/// input or if every element is NaN.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v >= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!((distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, 2.5]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn argmax_argmin() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmin(&[1.0, 3.0, 2.0]), Some(0));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
