//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used by the Newton / IRLS steps of the downstream logistic-regression
//! classifier (`pfr-opt`) and available for whitening transforms.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyDecomposition {
    /// The lower-triangular factor (entries above the diagonal are zero).
    pub l: Matrix,
}

impl CholeskyDecomposition {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Returns [`LinalgError::Singular`] when a non-positive pivot is
    /// encountered (the matrix is not positive definite) and
    /// [`LinalgError::NotSquare`] for rectangular input.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::Singular { op: "cholesky" });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(CholeskyDecomposition { l })
    }

    /// Solves `A x = b` using the precomputed factorization.
    #[allow(clippy::needless_range_loop)] // index form mirrors the textbook substitution
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` computed from the factor
    /// (`log det A = 2 Σ log L_ii`).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Computes the inverse of `A` column by column. Intended for small
    /// matrices (e.g. Fisher-information matrices in the classifier).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.l.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            inv.set_col(j, &col)?;
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

/// Convenience wrapper: solves the SPD system `A x = b` with a ridge fallback.
///
/// If `A` is not positive definite, `ridge * I` is added with exponentially
/// increasing `ridge` until the factorization succeeds (at most 8 attempts).
/// This is the standard damping trick used by Newton-type optimizers.
pub fn solve_spd_with_ridge(a: &Matrix, b: &[f64], initial_ridge: f64) -> Result<Vec<f64>> {
    match CholeskyDecomposition::new(a) {
        Ok(chol) => return chol.solve(b),
        Err(LinalgError::Singular { .. }) => {}
        Err(e) => return Err(e),
    }
    let n = a.rows();
    let mut ridge = initial_ridge.max(1e-10);
    for _ in 0..8 {
        let mut damped = a.clone();
        for i in 0..n {
            damped[(i, i)] += ridge;
        }
        if let Ok(chol) = CholeskyDecomposition::new(&damped) {
            return chol.solve(b);
        }
        ridge *= 10.0;
    }
    Err(LinalgError::Singular {
        op: "ridge-damped cholesky",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 12.0, -16.0],
            vec![12.0, 37.0, -43.0],
            vec![-16.0, -43.0, 98.0],
        ])
        .unwrap()
    }

    #[test]
    fn factorizes_known_example() {
        // Classic example: L = [[2,0,0],[6,1,0],[-8,5,3]].
        let chol = CholeskyDecomposition::new(&spd_example()).unwrap();
        assert!((chol.l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((chol.l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((chol.l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((chol.l[(2, 0)] + 8.0).abs() < 1e-12);
        assert!((chol.l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((chol.l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstructs_a() {
        let a = spd_example();
        let chol = CholeskyDecomposition::new(&a).unwrap();
        let rec = chol.l.matmul_transpose(&chol.l).unwrap();
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn solve_matches_direct_substitution() {
        let a = spd_example();
        let b = vec![1.0, 2.0, 3.0];
        let chol = CholeskyDecomposition::new(&a).unwrap();
        let x = chol.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap(); // indefinite
        assert!(matches!(
            CholeskyDecomposition::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(CholeskyDecomposition::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let chol = CholeskyDecomposition::new(&spd_example()).unwrap();
        assert!(chol.solve(&[1.0]).is_err());
    }

    #[test]
    fn log_det_matches_known_value() {
        // det = (2*1*3)^2 = 36.
        let chol = CholeskyDecomposition::new(&spd_example()).unwrap();
        assert!((chol.log_det() - 36.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = spd_example();
        let inv = CholeskyDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn ridge_fallback_handles_singular_matrix() {
        // Rank-deficient PSD matrix.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let x = solve_spd_with_ridge(&a, &[1.0, 1.0], 1e-6).unwrap();
        // The damped solution should approximately satisfy A x ≈ b.
        let ax = a.matvec(&x).unwrap();
        assert!((ax[0] - 1.0).abs() < 1e-3);
        assert!((ax[1] - 1.0).abs() < 1e-3);
    }
}
