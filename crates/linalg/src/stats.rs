//! Column statistics, standardization, covariance and quantiles.
//!
//! The paper standardizes features to zero mean / unit variance before
//! learning representations (Figure 1's caption), ranks individuals to build
//! between-group quantile graphs (Definition 2/3), and tunes hyper-parameters
//! by cross-validation. The helpers here implement the numerical pieces of
//! that pipeline.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Per-column mean and standard deviation produced by [`Standardizer::fit`].
///
/// The standardizer is fit on training data and then applied to unseen test
/// data, matching the paper's train/test protocol (the representation and all
/// preprocessing are learned on the training split only).
#[derive(Debug, Clone)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Computes per-column means and standard deviations of `x`.
    ///
    /// Columns with (near-)zero variance get a standard deviation of 1.0 so
    /// that transforming them maps every value to zero rather than dividing
    /// by zero.
    pub fn fit(x: &Matrix) -> Result<Self> {
        if x.rows() == 0 {
            return Err(LinalgError::InvalidArgument(
                "cannot standardize an empty matrix".to_string(),
            ));
        }
        let means = column_means(x);
        let mut stds = column_stds(x, &means);
        for s in stds.iter_mut() {
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Ok(Standardizer { means, stds })
    }

    /// Applies the fitted transform: `(x - mean) / std`, column-wise.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.means.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "standardizer transform",
                lhs: (x.rows(), x.cols()),
                rhs: (1, self.means.len()),
            });
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = (*v - self.means[c]) / self.stds[c];
            }
        }
        Ok(out)
    }

    /// Fits on `x` and immediately transforms it.
    pub fn fit_transform(x: &Matrix) -> Result<(Self, Matrix)> {
        let s = Self::fit(x)?;
        let t = s.transform(x)?;
        Ok((s, t))
    }

    /// Reassembles a standardizer from previously fitted means and standard
    /// deviations (e.g. read back from a persisted model bundle).
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Result<Self> {
        if means.len() != stds.len() {
            return Err(LinalgError::InvalidArgument(format!(
                "{} means but {} standard deviations",
                means.len(),
                stds.len()
            )));
        }
        if means.is_empty() {
            return Err(LinalgError::InvalidArgument(
                "standardizer needs at least one column".to_string(),
            ));
        }
        if stds.iter().any(|s| *s <= 0.0 || !s.is_finite()) {
            return Err(LinalgError::InvalidArgument(
                "standard deviations must be finite and positive".to_string(),
            ));
        }
        if means.iter().any(|m| !m.is_finite()) {
            return Err(LinalgError::InvalidArgument(
                "means must be finite".to_string(),
            ));
        }
        Ok(Standardizer { means, stds })
    }

    /// The fitted per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The fitted per-column standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Per-column means of a matrix.
pub fn column_means(x: &Matrix) -> Vec<f64> {
    let n = x.rows() as f64;
    let mut means = vec![0.0; x.cols()];
    for row in x.iter_rows() {
        for (m, &v) in means.iter_mut().zip(row.iter()) {
            *m += v;
        }
    }
    for m in means.iter_mut() {
        *m /= n;
    }
    means
}

/// Per-column population standard deviations given precomputed means.
pub fn column_stds(x: &Matrix, means: &[f64]) -> Vec<f64> {
    let n = x.rows() as f64;
    let mut vars = vec![0.0; x.cols()];
    for row in x.iter_rows() {
        for ((v, &m), &xi) in vars.iter_mut().zip(means.iter()).zip(row.iter()) {
            let d = xi - m;
            *v += d * d;
        }
    }
    vars.iter().map(|v| (v / n).sqrt()).collect()
}

/// Sample covariance matrix (rows are observations, columns are variables).
pub fn covariance(x: &Matrix) -> Result<Matrix> {
    let n = x.rows();
    if n < 2 {
        return Err(LinalgError::InvalidArgument(
            "covariance requires at least two observations".to_string(),
        ));
    }
    let means = column_means(x);
    let mut centered = x.clone();
    for r in 0..n {
        let row = centered.row_mut(r);
        for (c, v) in row.iter_mut().enumerate() {
            *v -= means[c];
        }
    }
    let cov = centered.transpose_matmul(&centered)?;
    Ok(cov.scale(1.0 / (n as f64 - 1.0)))
}

/// Pearson correlation between two equally long slices. Returns 0.0 when
/// either input has zero variance.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires equal lengths");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va < 1e-24 || vb < 1e-24 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Empirical quantile of `values` at probability `p ∈ [0, 1]` using linear
/// interpolation between order statistics (the "type 7" definition used by
/// NumPy's default).
pub fn quantile(values: &[f64], p: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(LinalgError::InvalidArgument(
            "quantile of an empty slice is undefined".to_string(),
        ));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(LinalgError::InvalidArgument(format!(
            "quantile probability {p} must lie in [0, 1]"
        )));
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let h = p * (sorted.len() as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Assigns each value its quantile bucket in `0..k` (equal-probability
/// buckets over the empirical distribution of `values`).
///
/// This is the building block for the paper's Definition 3 (between-group
/// quantile graph): within each group, scores are pooled into `k` quantiles
/// and individuals in the same quantile of *different* groups are linked.
pub fn quantile_buckets(values: &[f64], k: usize) -> Result<Vec<usize>> {
    if k == 0 {
        return Err(LinalgError::InvalidArgument(
            "quantile bucket count must be positive".to_string(),
        ));
    }
    if values.is_empty() {
        return Ok(Vec::new());
    }
    // Rank-based bucketing: ties get the same average rank treatment by using
    // a stable sort on (value, index).
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        values[i]
            .partial_cmp(&values[j])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(i.cmp(&j))
    });
    let mut buckets = vec![0usize; n];
    for (rank, &idx) in order.iter().enumerate() {
        let b = (rank * k) / n;
        buckets[idx] = b.min(k - 1);
    }
    Ok(buckets)
}

/// Ranks values in ascending order (0 = smallest), breaking ties by index.
pub fn rank(values: &[f64]) -> Vec<usize> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        values[i]
            .partial_cmp(&values[j])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(i.cmp(&j))
    });
    let mut ranks = vec![0usize; n];
    for (r, &idx) in order.iter().enumerate() {
        ranks[idx] = r;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ])
        .unwrap()
    }

    #[test]
    fn column_means_and_stds() {
        let x = sample_matrix();
        let means = column_means(&x);
        assert_eq!(means, vec![2.5, 25.0]);
        let stds = column_stds(&x, &means);
        assert!((stds[0] - (1.25_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn standardizer_zero_mean_unit_variance() {
        let x = sample_matrix();
        let (_, z) = Standardizer::fit_transform(&x).unwrap();
        let means = column_means(&z);
        let stds = column_stds(&z, &means);
        for m in means {
            assert!(m.abs() < 1e-12);
        }
        for s in stds {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standardizer_constant_column_maps_to_zero() {
        let x = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]]).unwrap();
        let (_, z) = Standardizer::fit_transform(&x).unwrap();
        assert!(z.col(0).iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn standardizer_from_parts_round_trips_and_validates() {
        let x = sample_matrix();
        let fitted = Standardizer::fit(&x).unwrap();
        let rebuilt =
            Standardizer::from_parts(fitted.means().to_vec(), fitted.stds().to_vec()).unwrap();
        let a = fitted.transform(&x).unwrap();
        let b = rebuilt.transform(&x).unwrap();
        assert!(a.sub(&b).unwrap().max_abs() == 0.0);
        assert!(Standardizer::from_parts(vec![0.0], vec![1.0, 1.0]).is_err());
        assert!(Standardizer::from_parts(vec![], vec![]).is_err());
        assert!(Standardizer::from_parts(vec![0.0], vec![0.0]).is_err());
        assert!(Standardizer::from_parts(vec![0.0], vec![f64::NAN]).is_err());
        assert!(Standardizer::from_parts(vec![f64::INFINITY], vec![1.0]).is_err());
        assert!(Standardizer::from_parts(vec![f64::NAN], vec![1.0]).is_err());
    }

    #[test]
    fn standardizer_applies_training_statistics_to_test_data() {
        let train = sample_matrix();
        let s = Standardizer::fit(&train).unwrap();
        let test = Matrix::from_rows(&[vec![2.5, 25.0]]).unwrap();
        let z = s.transform(&test).unwrap();
        assert!(z.row(0).iter().all(|&v| v.abs() < 1e-12));
        assert!(s.transform(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let x = sample_matrix();
        let cov = covariance(&x).unwrap();
        // var(col0) = 5/3, cov = 50/3, var(col1) = 500/3 (sample, n-1 = 3).
        assert!((cov[(0, 0)] - 5.0 / 3.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 50.0 / 3.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 500.0 / 3.0).abs() < 1e-12);
        assert!(covariance(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn pearson_correlations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        let constant = [3.0, 3.0, 3.0, 3.0];
        assert_eq!(pearson(&a, &constant), 0.0);
    }

    #[test]
    fn quantile_interpolation() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&v, 1.0).unwrap(), 4.0);
        assert!((quantile(&v, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&v, 1.5).is_err());
    }

    #[test]
    fn quantile_buckets_are_balanced() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let buckets = quantile_buckets(&values, 10).unwrap();
        for b in 0..10 {
            let count = buckets.iter().filter(|&&x| x == b).count();
            assert_eq!(count, 10);
        }
        // Values must be assigned monotonically.
        assert_eq!(buckets[0], 0);
        assert_eq!(buckets[99], 9);
        assert!(quantile_buckets(&values, 0).is_err());
        assert!(quantile_buckets(&[], 3).unwrap().is_empty());
    }

    #[test]
    fn rank_breaks_ties_deterministically() {
        let r = rank(&[3.0, 1.0, 2.0, 1.0]);
        assert_eq!(r, vec![3, 0, 2, 1]);
    }
}
