//! Error type shared by all linear-algebra routines in this crate.

use std::fmt;

/// Errors that can be produced by the dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The operation requires a square matrix but got a rectangular one.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// The operation requires a symmetric matrix but the input was not
    /// symmetric within the given tolerance.
    NotSymmetric {
        /// Largest absolute asymmetry `|a_ij - a_ji|` that was observed.
        max_asymmetry: f64,
    },
    /// A factorization failed because the matrix is singular (or not positive
    /// definite for Cholesky).
    Singular {
        /// Description of the factorization that failed.
        op: &'static str,
    },
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Description of the algorithm.
        op: &'static str,
        /// Number of iterations that were performed.
        iterations: usize,
    },
    /// An argument was outside its valid domain (e.g. an empty matrix where a
    /// non-empty one is required, or an out-of-range index).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left operand is {}x{}, right operand is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(
                    f,
                    "matrix must be square, but has shape {}x{}",
                    shape.0, shape.1
                )
            }
            LinalgError::NotSymmetric { max_asymmetry } => write!(
                f,
                "matrix must be symmetric, largest asymmetry is {max_asymmetry:e}"
            ),
            LinalgError::Singular { op } => write!(
                f,
                "{op} failed: matrix is singular or not positive definite"
            ),
            LinalgError::NoConvergence { op, iterations } => {
                write!(f, "{op} did not converge after {iterations} iterations")
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch_mentions_both_shapes() {
        let err = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn display_not_square() {
        let err = LinalgError::NotSquare { shape: (3, 4) };
        assert!(err.to_string().contains("3x4"));
    }

    #[test]
    fn display_no_convergence_mentions_iterations() {
        let err = LinalgError::NoConvergence {
            op: "jacobi",
            iterations: 100,
        };
        assert!(err.to_string().contains("100"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&LinalgError::Singular { op: "cholesky" });
    }
}
