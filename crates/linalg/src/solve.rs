//! LU factorization with partial pivoting for general square linear systems.
//!
//! The substrates mostly need SPD solves (see [`crate::cholesky`]), but the
//! LFR and iFair baselines occasionally need a general solver (e.g. for
//! least-squares style sub-problems), and the harness uses it for numerical
//! sanity checks.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// LU factorization `P A = L U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Packed LU factors: the strict lower triangle stores `L` (unit
    /// diagonal implied), the upper triangle stores `U`.
    lu: Matrix,
    /// Row permutation applied to `A`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used for the determinant.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Factorizes a square matrix. Returns [`LinalgError::Singular`] when a
    /// zero pivot is encountered.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: find the largest pivot in column k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular { op: "lu" });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }

        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply the permutation then forward substitution with unit-lower L.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.lu[(i, k)] * y[k];
            }
        }
        // Back substitution with U.
        let mut x = y;
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.lu[(i, k)] * x[k];
            }
            x[i] /= self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let diag_prod: f64 = (0..self.lu.rows()).map(|i| self.lu[(i, i)]).product();
        self.perm_sign * diag_prod
    }

    /// Inverse of the original matrix, built column by column.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            inv.set_col(j, &col)?;
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

/// One-shot solve of `A x = b` for square `A`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    LuDecomposition::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_simple_system() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        // Solution: x = [0.8, 1.4]
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn det_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
        let id = LuDecomposition::new(&Matrix::identity(4)).unwrap();
        assert!((id.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trip() {
        let a = Matrix::from_rows(&[
            vec![4.0, 3.0, 0.0],
            vec![3.0, 4.0, -1.0],
            vec![0.0, -1.0, 4.0],
        ])
        .unwrap();
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_bad_rhs() {
        assert!(LuDecomposition::new(&Matrix::zeros(2, 3)).is_err());
        let lu = LuDecomposition::new(&Matrix::identity(2)).unwrap();
        assert!(lu.solve(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn random_system_residual_is_small() {
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        let mut state = 7u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 3.0; // diagonally dominant => nonsingular
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }
}
