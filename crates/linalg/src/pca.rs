//! Principal component analysis on top of the symmetric eigensolver.
//!
//! PCA is not part of the paper's method, but it is the natural "utility-only
//! dimensionality reduction" reference point for the learned-representation
//! experiments and a good end-to-end exercise of the covariance + eigen
//! machinery, so it ships with the substrate.

use crate::eigen::Eigen;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::stats::{column_means, covariance};
use crate::Result;

/// A fitted PCA transform.
#[derive(Debug, Clone)]
pub struct Pca {
    means: Vec<f64>,
    /// Principal axes as columns (features x components), ordered by
    /// decreasing explained variance.
    components: Matrix,
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits a PCA with `num_components` components on a data matrix with one
    /// row per observation.
    pub fn fit(x: &Matrix, num_components: usize) -> Result<Self> {
        let m = x.cols();
        if num_components == 0 || num_components > m {
            return Err(LinalgError::InvalidArgument(format!(
                "number of components {num_components} must lie in 1..={m}"
            )));
        }
        if x.rows() < 2 {
            return Err(LinalgError::InvalidArgument(
                "PCA requires at least two observations".to_string(),
            ));
        }
        let means = column_means(x);
        let cov = covariance(x)?;
        let eigen = Eigen::decompose(&cov)?;
        // Largest eigenvalues first.
        let components = eigen.largest_eigenvectors(num_components)?;
        let n = eigen.eigenvalues.len();
        let explained_variance: Vec<f64> = (0..num_components)
            .map(|i| eigen.eigenvalues[n - 1 - i].max(0.0))
            .collect();
        Ok(Pca {
            means,
            components,
            explained_variance,
        })
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.cols()
    }

    /// Variance explained by each retained component (descending).
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of the total variance captured by the retained components.
    /// Requires the total variance of the training data as input when only a
    /// subset of components is kept; here it is computed against the sum of
    /// retained variances plus nothing else, so it equals 1.0 when all
    /// components are kept.
    pub fn explained_variance_ratio(&self, total_variance: f64) -> Vec<f64> {
        if total_variance <= 0.0 {
            return vec![0.0; self.explained_variance.len()];
        }
        self.explained_variance
            .iter()
            .map(|v| v / total_variance)
            .collect()
    }

    /// The principal axes as the columns of a (features x components) matrix.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Projects observations onto the principal components.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.means.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "pca transform",
                lhs: (x.rows(), x.cols()),
                rhs: (1, self.means.len()),
            });
        }
        let mut centered = x.clone();
        for r in 0..centered.rows() {
            let row = centered.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v -= self.means[c];
            }
        }
        centered.matmul(&self.components)
    }

    /// Reconstructs observations from their projections (inverse transform up
    /// to the discarded components).
    pub fn inverse_transform(&self, z: &Matrix) -> Result<Matrix> {
        if z.cols() != self.num_components() {
            return Err(LinalgError::ShapeMismatch {
                op: "pca inverse transform",
                lhs: (z.rows(), z.cols()),
                rhs: (1, self.num_components()),
            });
        }
        let mut x = z.matmul_transpose(&self.components)?;
        for r in 0..x.rows() {
            let row = x.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v += self.means[c];
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data spread along the direction (1, 1) with tiny orthogonal noise.
    fn elongated_data() -> Matrix {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = i as f64 / 4.0;
                let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
                vec![t + noise, t - noise]
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn first_component_captures_the_elongated_direction() {
        let x = elongated_data();
        let pca = Pca::fit(&x, 1).unwrap();
        let axis = pca.components().col(0);
        // The principal axis is ±(1, 1)/√2.
        let ratio = (axis[0] / axis[1]).abs();
        assert!((ratio - 1.0).abs() < 0.05, "axis ratio {ratio}");
        assert!(pca.explained_variance()[0] > 1.0);
    }

    #[test]
    fn full_rank_pca_reconstructs_exactly() {
        let x = elongated_data();
        let pca = Pca::fit(&x, 2).unwrap();
        let z = pca.transform(&x).unwrap();
        let back = pca.inverse_transform(&z).unwrap();
        assert!(back.sub(&x).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn truncated_pca_reduces_reconstruction_error_gracefully() {
        let x = elongated_data();
        let pca = Pca::fit(&x, 1).unwrap();
        let z = pca.transform(&x).unwrap();
        assert_eq!(z.shape(), (40, 1));
        let back = pca.inverse_transform(&z).unwrap();
        // Residual is on the order of the injected noise.
        assert!(back.sub(&x).unwrap().max_abs() < 0.2);
    }

    #[test]
    fn explained_variance_ratio_sums_to_one_for_full_rank() {
        let x = elongated_data();
        let pca = Pca::fit(&x, 2).unwrap();
        let total: f64 = pca.explained_variance().iter().sum();
        let ratios = pca.explained_variance_ratio(total);
        assert!((ratios.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(ratios[0] > ratios[1]);
        assert_eq!(pca.explained_variance_ratio(0.0), vec![0.0, 0.0]);
    }

    #[test]
    fn input_validation() {
        let x = elongated_data();
        assert!(Pca::fit(&x, 0).is_err());
        assert!(Pca::fit(&x, 3).is_err());
        assert!(Pca::fit(&Matrix::zeros(1, 2), 1).is_err());
        let pca = Pca::fit(&x, 1).unwrap();
        assert!(pca.transform(&Matrix::zeros(1, 3)).is_err());
        assert!(pca.inverse_transform(&Matrix::zeros(1, 2)).is_err());
    }
}
