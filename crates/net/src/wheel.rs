//! A hashed deadline wheel: O(1) insert/cancel timeouts for reactor tokens.
//!
//! Time is quantized into ticks of a fixed granularity; a deadline lands in
//! slot `deadline_tick % slots`. Advancing the wheel walks only the slots
//! the clock actually crossed, firing entries whose tick has passed and
//! re-queuing entries scheduled a full revolution (or more) ahead. A
//! `BTreeMap` of deadlines would give exact ordering at O(log n) per
//! operation; the wheel trades a tick of precision (timeouts are coarse by
//! nature — 2 s io deadlines do not care about 16 ms of rounding) for O(1)
//! inserts and cancels, which matters because *every* request arms and
//! disarms a deadline.
//!
//! Cancellation is lazy: an entry stays in its slot, but only fires if the
//! token's *active* registration (one per token, the newest wins) still
//! matches its scheduled tick. Re-arming a token therefore implicitly
//! cancels its previous deadline.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A hashed timer wheel mapping tokens to deadlines.
#[derive(Debug)]
pub struct DeadlineWheel {
    origin: Instant,
    tick: Duration,
    slots: Vec<Vec<(u64, u64)>>, // (token, absolute tick)
    /// The newest armed deadline per token, as an absolute tick. Entries in
    /// `slots` fire only when they match; stale ones are skipped.
    active: HashMap<u64, u64>,
    /// The next tick the cursor will process.
    cursor: u64,
}

impl DeadlineWheel {
    /// A wheel quantizing deadlines to `tick` with `slots` buckets. The
    /// horizon (`tick * slots`) only bounds how far an entry travels per
    /// revolution, not how far deadlines may lie in the future.
    pub fn new(tick: Duration, slots: usize) -> DeadlineWheel {
        DeadlineWheel {
            origin: Instant::now(),
            tick: tick.max(Duration::from_millis(1)),
            slots: vec![Vec::new(); slots.max(2)],
            active: HashMap::new(),
            cursor: 0,
        }
    }

    fn tick_of(&self, deadline: Instant) -> u64 {
        // Round up: a deadline never fires early.
        let since = deadline.saturating_duration_since(self.origin);
        (since.as_nanos() / self.tick.as_nanos()) as u64 + 1
    }

    /// Arms (or re-arms) `token` to fire at `deadline`. The previous
    /// deadline of the same token, if any, is cancelled.
    pub fn arm(&mut self, token: u64, deadline: Instant) {
        let tick = self.tick_of(deadline).max(self.cursor);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push((token, tick));
        self.active.insert(token, tick);
    }

    /// Disarms `token`'s pending deadline (no-op if none is armed).
    pub fn cancel(&mut self, token: u64) {
        self.active.remove(&token);
    }

    /// Number of armed tokens.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Whether no token is armed.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Advances the wheel to `now`, appending every token whose armed
    /// deadline has passed to `expired` (each at most once, then disarmed).
    /// Work is bounded by one revolution: after a long idle sleep every
    /// slot gets exactly one pass rather than one pass per elapsed tick.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<u64>) {
        let now_tick =
            (now.saturating_duration_since(self.origin).as_nanos() / self.tick.as_nanos()) as u64;
        if self.cursor > now_tick {
            return;
        }
        let revolution = self.slots.len() as u64;
        let passes = (now_tick - self.cursor + 1).min(revolution);
        for step in 0..passes {
            let slot = ((self.cursor + step) % revolution) as usize;
            let mut keep = Vec::new();
            for (token, tick) in self.slots[slot].drain(..) {
                if self.active.get(&token) != Some(&tick) {
                    continue; // cancelled or re-armed elsewhere
                }
                if tick <= now_tick {
                    self.active.remove(&token);
                    expired.push(token);
                } else {
                    keep.push((token, tick)); // a revolution (or more) away
                }
            }
            self.slots[slot] = keep;
        }
        self.cursor = now_tick + 1;
    }

    /// How long until the earliest armed deadline could fire, from `now` —
    /// the poll timeout that keeps deadlines honored without busy-waking.
    /// `None` when nothing is armed.
    ///
    /// The due instant is computed in u64 nanoseconds: tick counts exceed
    /// `u32::MAX` after ~50 days on a 1 ms tick, and a `tick * count as u32`
    /// product would silently wrap there, reporting a far-future deadline
    /// as nearly due and spinning the poll loop.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        let earliest = *self.active.values().min()?;
        let due_nanos = (self.tick.as_nanos() as u64).saturating_mul(earliest);
        match self.origin.checked_add(Duration::from_nanos(due_nanos)) {
            Some(due) => Some(due.saturating_duration_since(now)),
            // Unrepresentably far out (centuries): any finite poll timeout
            // honors it, so report the longest one.
            None => Some(Duration::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> DeadlineWheel {
        DeadlineWheel::new(Duration::from_millis(5), 16)
    }

    #[test]
    fn deadlines_fire_after_they_pass_and_not_before() {
        let mut w = wheel();
        let now = Instant::now();
        w.arm(1, now + Duration::from_millis(20));
        w.arm(2, now + Duration::from_millis(200));
        let mut fired = Vec::new();
        w.advance(now, &mut fired);
        assert!(fired.is_empty(), "nothing is due yet");
        w.advance(now + Duration::from_millis(40), &mut fired);
        assert_eq!(fired, vec![1]);
        w.advance(now + Duration::from_millis(400), &mut fired);
        assert_eq!(fired, vec![1, 2]);
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_and_rearm_suppress_the_old_deadline() {
        let mut w = wheel();
        let now = Instant::now();
        w.arm(1, now + Duration::from_millis(10));
        w.cancel(1);
        w.arm(2, now + Duration::from_millis(10));
        w.arm(2, now + Duration::from_millis(300)); // re-arm pushes it out
        let mut fired = Vec::new();
        w.advance(now + Duration::from_millis(100), &mut fired);
        assert!(fired.is_empty(), "cancelled and re-armed must not fire");
        assert_eq!(w.len(), 1);
        w.advance(now + Duration::from_millis(500), &mut fired);
        assert_eq!(fired, vec![2]);
    }

    #[test]
    fn deadlines_beyond_one_revolution_survive_the_first_pass() {
        // 16 slots x 5ms = 80ms horizon; 1s is 12+ revolutions out.
        let mut w = wheel();
        let now = Instant::now();
        w.arm(9, now + Duration::from_secs(1));
        let mut fired = Vec::new();
        w.advance(now + Duration::from_millis(500), &mut fired);
        assert!(fired.is_empty());
        assert_eq!(w.len(), 1);
        w.advance(now + Duration::from_millis(1100), &mut fired);
        assert_eq!(fired, vec![9]);
    }

    #[test]
    fn next_timeout_tracks_the_earliest_armed_deadline() {
        let mut w = wheel();
        let now = Instant::now();
        assert!(w.next_timeout(now).is_none());
        w.arm(1, now + Duration::from_millis(500));
        w.arm(2, now + Duration::from_millis(50));
        let t = w.next_timeout(now).unwrap();
        assert!(t <= Duration::from_millis(60), "{t:?}");
        // A passed deadline yields a zero timeout, not a negative panic.
        let late = w.next_timeout(now + Duration::from_secs(2)).unwrap();
        assert_eq!(late, Duration::ZERO);
    }

    #[test]
    fn next_timeout_does_not_truncate_far_future_deadlines() {
        // A 1 ms tick puts a 100-day deadline at ~8.6e9 ticks — past
        // u32::MAX, where the old `tick * earliest as u32` product wrapped
        // and reported the deadline ~50 days early.
        let mut w = DeadlineWheel::new(Duration::from_millis(1), 16);
        let now = Instant::now();
        let far = Duration::from_secs(100 * 24 * 3600);
        w.arm(1, now + far);
        let t = w.next_timeout(now).unwrap();
        assert!(
            t >= far - Duration::from_secs(1),
            "far-future timeout truncated to {t:?}"
        );
        assert!(t <= far + Duration::from_secs(1), "{t:?}");
    }

    #[test]
    fn many_tokens_on_one_slot_all_fire() {
        let mut w = DeadlineWheel::new(Duration::from_millis(5), 4);
        let now = Instant::now();
        for token in 0..100 {
            w.arm(token, now + Duration::from_millis(10 + (token % 7)));
        }
        let mut fired = Vec::new();
        w.advance(now + Duration::from_millis(60), &mut fired);
        fired.sort_unstable();
        assert_eq!(fired, (0..100).collect::<Vec<_>>());
        assert!(w.is_empty());
    }
}
