//! A reactor-backed line-protocol client: one event-loop thread multiplexes
//! every outbound connection, so a caller fanning a batch out to N replicas
//! submits N operations and blocks on N tickets — **zero threads are
//! spawned per request**, which is what lets a routing tier scatter to its
//! whole replica set without paying a thread per backend per request.
//!
//! Every entry point funnels into one frame-based core: a submission is raw
//! request bytes (newline-joined lines, or a header line plus counted
//! payload) plus the number of response lines that resolve it. The core
//! returns a [`Ticket`] the caller may poll ([`Ticket::try_take`]), block on
//! ([`Ticket::wait`] / [`Ticket::wait_deadline`]), or skip entirely by
//! submitting against a shared [`CompletionQueue`]
//! ([`ClientDriver::submit_frame_queued`]) and draining completions in
//! whatever order they land — the shape that lets **one caller thread keep
//! thousands of operations in flight**.
//!
//! Operations to the same address are **pipelined**: up to
//! [`ClientConfig::max_pipeline`] submissions share one connection
//! back-to-back (the serve protocol answers in order on one connection), so
//! 10k in-flight operations cost hundreds of sockets, not 10k. Because the
//! reactor interleaves reads and writes on the same connection, a burst may
//! exceed the combined socket buffers without deadlocking — the
//! write-all-then-read-all pipelining of a blocking client cannot do that,
//! which is why it must cap its bursts.
//!
//! Connections are pooled per address (up to `max_idle` kept warm), dialed
//! non-blockingly on demand, and torn down on any error or deadline —
//! a connection that failed mid-exchange is out of protocol sync and can
//! never be reused, and a failure fails every operation queued behind it on
//! that connection. Deadlines (connect and io) ride the
//! [`crate::wheel::DeadlineWheel`] and always govern the *head* operation
//! of a connection's pipeline.

use crate::line::LineConn;
use crate::poller::{Event, Interest, Poller, Waker};
use crate::stats::LoopStats;
use crate::sys::{self, ConnectStart};
use crate::wheel::DeadlineWheel;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`ClientDriver`].
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// How long a non-blocking dial may take to become writable.
    pub connect_timeout: Duration,
    /// Deadline for one whole operation (burst out + responses in),
    /// armed from the moment the operation reaches the head of its
    /// connection's pipeline.
    pub io_timeout: Duration,
    /// Idle connections kept per address; excess are closed on release.
    pub max_idle: usize,
    /// Longest tolerated response line.
    pub max_line: usize,
    /// Most operations multiplexed back-to-back onto one connection before
    /// the reactor dials another to the same address. 1 disables
    /// pipelining (one operation per connection at a time).
    pub max_pipeline: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_secs(2),
            max_idle: 8,
            max_line: 1 << 20,
            max_pipeline: 32,
        }
    }
}

/// The result of one submitted burst: the response lines, in order.
pub type BurstResult = io::Result<Vec<String>>;

fn reactor_gone() -> io::Error {
    io::Error::new(io::ErrorKind::NotConnected, "client reactor is gone")
}

/// A handle to one in-flight submission. Poll it ([`Ticket::try_take`]),
/// block on it ([`Ticket::wait`]), or block with a deadline
/// ([`Ticket::wait_deadline`], which hands the ticket back on timeout so
/// the caller can keep waiting).
///
/// A ticket may also be born resolved ([`Ticket::ready`]) — that is how
/// blocking transports and cache hits slot into completion-shaped call
/// sites without a reactor round-trip.
#[derive(Debug)]
pub struct Ticket(TicketState);

#[derive(Debug)]
enum TicketState {
    Ready(Option<BurstResult>),
    Pending(Receiver<BurstResult>),
}

impl Ticket {
    /// A ticket that is already resolved with `result`.
    pub fn ready(result: BurstResult) -> Ticket {
        Ticket(TicketState::Ready(Some(result)))
    }

    fn pending(rx: Receiver<BurstResult>) -> Ticket {
        Ticket(TicketState::Pending(rx))
    }

    /// Non-blocking poll: `Some(result)` once the operation resolved,
    /// `None` while it is still in flight.
    pub fn try_take(&mut self) -> Option<BurstResult> {
        match &mut self.0 {
            TicketState::Ready(slot) => slot.take(),
            TicketState::Pending(rx) => match rx.try_recv() {
                Ok(result) => Some(result),
                Err(TryRecvError::Empty) => None,
                Err(TryRecvError::Disconnected) => Some(Err(reactor_gone())),
            },
        }
    }

    /// Blocks until the operation resolves.
    pub fn wait(self) -> BurstResult {
        match self.0 {
            TicketState::Ready(Some(result)) => result,
            TicketState::Ready(None) => Err(io::Error::other("ticket already consumed")),
            TicketState::Pending(rx) => rx.recv().map_err(|_| reactor_gone())?,
        }
    }

    /// Blocks until the operation resolves or `deadline` passes; on
    /// timeout the ticket is returned so the caller can keep waiting or
    /// polling.
    pub fn wait_deadline(self, deadline: Instant) -> Result<BurstResult, Ticket> {
        match self.0 {
            TicketState::Ready(Some(result)) => Ok(result),
            TicketState::Ready(None) => Ok(Err(io::Error::other("ticket already consumed"))),
            TicketState::Pending(rx) => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(timeout) {
                    Ok(result) => Ok(result),
                    Err(RecvTimeoutError::Timeout) => Err(Ticket(TicketState::Pending(rx))),
                    Err(RecvTimeoutError::Disconnected) => Ok(Err(reactor_gone())),
                }
            }
        }
    }
}

/// A completion queue shared by many in-flight submissions: each
/// [`ClientDriver::submit_frame_queued`] call names a caller-chosen `tag`,
/// and results land here **in completion order**, not submission order.
/// One caller thread submits thousands of operations against one queue and
/// drains `(tag, result)` pairs as they arrive — no per-operation channel,
/// no per-operation park/unpark.
///
/// Cloning is cheap (the queue is internally `Arc`-shared); all clones
/// drain the same completions.
#[derive(Debug, Clone, Default)]
pub struct CompletionQueue {
    inner: Arc<QueueInner>,
}

#[derive(Debug, Default)]
struct QueueInner {
    ready: Mutex<VecDeque<(u64, BurstResult)>>,
    available: Condvar,
}

impl CompletionQueue {
    /// An empty queue.
    pub fn new() -> CompletionQueue {
        CompletionQueue::default()
    }

    /// Records one completion and wakes a waiting [`CompletionQueue::pop`].
    /// Public so callers can inject locally-resolved completions (cache
    /// hits, validation failures) into the same drain loop as wire results.
    pub fn push(&self, tag: u64, result: BurstResult) {
        let mut ready = self.inner.ready.lock().expect("queue lock never poisons");
        ready.push_back((tag, result));
        drop(ready);
        self.inner.available.notify_one();
    }

    /// Non-blocking drain of the oldest completion.
    pub fn try_pop(&self) -> Option<(u64, BurstResult)> {
        self.inner
            .ready
            .lock()
            .expect("queue lock never poisons")
            .pop_front()
    }

    /// Blocks until a completion is available. Callers are expected to
    /// track how many submissions are outstanding and not over-pop.
    pub fn pop(&self) -> (u64, BurstResult) {
        let mut ready = self.inner.ready.lock().expect("queue lock never poisons");
        loop {
            if let Some(item) = ready.pop_front() {
                return item;
            }
            ready = self
                .inner
                .available
                .wait(ready)
                .expect("queue lock never poisons");
        }
    }

    /// Blocks up to `timeout` for a completion.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<(u64, BurstResult)> {
        let deadline = Instant::now() + timeout;
        let mut ready = self.inner.ready.lock().expect("queue lock never poisons");
        loop {
            if let Some(item) = ready.pop_front() {
                return Some(item);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, _) = self
                .inner
                .available
                .wait_timeout(ready, remaining)
                .expect("queue lock never poisons");
            ready = guard;
        }
    }

    /// Completions currently buffered (not yet popped).
    pub fn len(&self) -> usize {
        self.inner
            .ready
            .lock()
            .expect("queue lock never poisons")
            .len()
    }

    /// Whether no completion is currently buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Where a resolved operation reports: a dedicated channel (ticket-shaped
/// submissions) or a shared completion queue under a caller-chosen tag.
enum ReplySlot {
    Channel(Sender<BurstResult>),
    Queue { queue: CompletionQueue, tag: u64 },
}

impl ReplySlot {
    fn send(self, result: BurstResult) {
        match self {
            // A dropped receiver just means the caller stopped waiting.
            ReplySlot::Channel(tx) => {
                let _ = tx.send(result);
            }
            ReplySlot::Queue { queue, tag } => queue.push(tag, result),
        }
    }
}

enum Op {
    Burst {
        addr: SocketAddr,
        /// Pre-framed request bytes: newline-joined lines, or a header line
        /// plus counted payload for frame submissions.
        bytes: Vec<u8>,
        /// Response lines to collect before the operation resolves.
        expect: usize,
        reply: ReplySlot,
    },
    /// Close every idle connection to `addr` (e.g. after its backend was
    /// ejected, so re-admission starts from fresh sockets).
    Drain(SocketAddr),
}

/// A handle to the reactor thread. Cloning the handle is done by `Arc`;
/// dropping the last handle stops and joins the reactor.
#[derive(Debug)]
pub struct ClientDriver {
    ops: Sender<Op>,
    waker: Arc<Waker>,
    loop_stats: Arc<LoopStats>,
    thread: Option<JoinHandle<()>>,
}

impl ClientDriver {
    /// Starts the reactor thread.
    pub fn spawn(config: ClientConfig) -> io::Result<ClientDriver> {
        let waker = Arc::new(Waker::new()?);
        let (ops, op_rx) = mpsc::channel();
        let reactor = Reactor::new(config, Arc::clone(&waker), op_rx)?;
        let loop_stats = Arc::clone(&reactor.loop_stats);
        let thread = std::thread::Builder::new()
            .name("pfr-net-client".to_string())
            .spawn(move || reactor.run())
            .expect("spawning the client reactor never fails on this platform");
        Ok(ClientDriver {
            ops,
            waker,
            loop_stats,
            thread: Some(thread),
        })
    }

    /// The reactor thread's event-loop health counters (live; updated
    /// every loop iteration).
    pub fn loop_stats(&self) -> &Arc<LoopStats> {
        &self.loop_stats
    }

    /// Submits a burst of request lines to `addr`; the ticket resolves with
    /// the same number of response lines (or the operation's error).
    /// Submitting is non-blocking — fan-out submits all replicas first,
    /// then collects.
    pub fn submit<S: AsRef<str>>(&self, addr: SocketAddr, lines: &[S]) -> io::Result<Ticket> {
        let mut bytes = Vec::new();
        for line in lines {
            bytes.extend_from_slice(line.as_ref().as_bytes());
            bytes.push(b'\n');
        }
        self.submit_frame(addr, bytes, lines.len())
    }

    /// Submits a pre-framed request — raw bytes that may carry a counted
    /// payload after a header line (the `PUSH` verb) — expecting `expect`
    /// response lines. This is **the** submission core: every other entry
    /// point ([`ClientDriver::submit`] and the queued variant) reduces
    /// to it.
    pub fn submit_frame(
        &self,
        addr: SocketAddr,
        bytes: Vec<u8>,
        expect: usize,
    ) -> io::Result<Ticket> {
        let (reply, rx) = mpsc::channel();
        self.enqueue(addr, bytes, expect, ReplySlot::Channel(reply))?;
        Ok(Ticket::pending(rx))
    }

    /// Submits a pre-framed request whose result lands on `queue` under
    /// `tag` instead of a per-operation ticket — the entry point for one
    /// caller thread driving thousands of in-flight operations.
    pub fn submit_frame_queued(
        &self,
        addr: SocketAddr,
        bytes: Vec<u8>,
        expect: usize,
        queue: &CompletionQueue,
        tag: u64,
    ) -> io::Result<()> {
        self.enqueue(
            addr,
            bytes,
            expect,
            ReplySlot::Queue {
                queue: queue.clone(),
                tag,
            },
        )
    }

    fn enqueue(
        &self,
        addr: SocketAddr,
        bytes: Vec<u8>,
        expect: usize,
        reply: ReplySlot,
    ) -> io::Result<()> {
        self.ops
            .send(Op::Burst {
                addr,
                bytes,
                expect,
                reply,
            })
            .map_err(|_| reactor_gone())?;
        self.waker.wake()?;
        Ok(())
    }

    /// Closes every idle pooled connection to `addr`.
    pub fn drain(&self, addr: SocketAddr) {
        if self.ops.send(Op::Drain(addr)).is_ok() {
            let _ = self.waker.wake();
        }
    }
}

impl Drop for ClientDriver {
    fn drop(&mut self) {
        // Closing the op channel is the shutdown signal; the wake makes the
        // reactor notice it even while idle.
        drop(std::mem::replace(&mut self.ops, mpsc::channel().0));
        let _ = self.waker.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

const WAKER_TOKEN: u64 = 0;

/// One in-flight operation bound to a connection.
struct Job {
    expect: usize,
    got: Vec<String>,
    reply: ReplySlot,
}

enum Phase {
    /// Dial in flight; payloads are already queued in the `LineConn`.
    Connecting,
    /// Established, exchanging or idle (idle = no jobs).
    Established,
}

struct Conn {
    addr: SocketAddr,
    /// Owns the fd; wrapped as a `TcpStream` for read/write/nodelay.
    stream: TcpStream,
    line: LineConn,
    phase: Phase,
    /// In-flight operations in submission order. The serve protocol
    /// answers in order on one connection, so responses resolve jobs FIFO;
    /// the deadline wheel always tracks the front job.
    jobs: VecDeque<Job>,
}

struct Reactor {
    config: ClientConfig,
    poller: Poller,
    waker: Arc<Waker>,
    ops: Receiver<Op>,
    conns: HashMap<u64, Conn>,
    idle: HashMap<SocketAddr, Vec<u64>>,
    wheel: DeadlineWheel,
    next_token: u64,
    loop_stats: Arc<LoopStats>,
}

impl Reactor {
    fn new(config: ClientConfig, waker: Arc<Waker>, ops: Receiver<Op>) -> io::Result<Reactor> {
        let poller = Poller::new(256)?;
        poller.add(waker.raw_fd(), WAKER_TOKEN, Interest::READABLE.level())?;
        Ok(Reactor {
            config,
            poller,
            waker,
            ops,
            conns: HashMap::new(),
            idle: HashMap::new(),
            // 64 slots x 16ms ≈ 1s horizon per revolution; deadlines past
            // the horizon simply ride extra revolutions.
            wheel: DeadlineWheel::new(Duration::from_millis(16), 64),
            next_token: WAKER_TOKEN + 1,
            loop_stats: Arc::new(LoopStats::new()),
        })
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut expired: Vec<u64> = Vec::new();
        loop {
            let timeout = self.wheel.next_timeout(Instant::now());
            let waited = Instant::now();
            if self.poller.wait(&mut events, timeout).is_err() {
                // EBADF etc. can only mean teardown races; bail out.
                break;
            }
            self.loop_stats.record_poll(waited.elapsed(), events.len());
            let mut shutdown = false;
            // Drain in place so the buffer's capacity is reused every
            // wakeup (`events` is a local, so borrowing it across the
            // `&mut self` calls below is fine).
            for event in events.drain(..) {
                if event.token == WAKER_TOKEN {
                    self.waker.drain();
                    if self.drain_ops() {
                        shutdown = true;
                    }
                } else {
                    self.drive(event);
                }
            }
            // Ops may have arrived between the waker write and our drain of
            // the channel even without an event this round; harmless — the
            // pending wake delivers them next round.
            expired.clear();
            self.wheel.advance(Instant::now(), &mut expired);
            for token in expired.drain(..) {
                self.fail(
                    token,
                    io::Error::new(io::ErrorKind::TimedOut, "io deadline"),
                );
            }
            self.loop_stats.set_wheel_depth(self.wheel.len());
            if shutdown {
                break;
            }
        }
        // Fail whatever is still in flight so no caller blocks forever.
        for (_, mut conn) in self.conns.drain() {
            for job in conn.jobs.drain(..) {
                job.reply.send(Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "client reactor stopped",
                )));
            }
        }
    }

    /// Pulls every queued op; returns true when the channel closed (the
    /// driver handle was dropped — time to shut down).
    fn drain_ops(&mut self) -> bool {
        loop {
            match self.ops.try_recv() {
                Ok(Op::Burst {
                    addr,
                    bytes,
                    expect,
                    reply,
                }) => self.start_burst(addr, bytes, expect, reply),
                Ok(Op::Drain(addr)) => {
                    for token in self.idle.remove(&addr).unwrap_or_default() {
                        self.close(token);
                    }
                }
                Err(mpsc::TryRecvError::Empty) => return false,
                Err(mpsc::TryRecvError::Disconnected) => return true,
            }
        }
    }

    fn start_burst(&mut self, addr: SocketAddr, bytes: Vec<u8>, expect: usize, reply: ReplySlot) {
        if expect == 0 {
            reply.send(Ok(Vec::new()));
            return;
        }
        let token = match self.pick_conn(addr) {
            Ok(token) => token,
            Err(e) => {
                reply.send(Err(e));
                return;
            }
        };
        let conn = self.conns.get_mut(&token).expect("picked conn exists");
        conn.line.enqueue_bytes(&bytes);
        let was_empty = conn.jobs.is_empty();
        conn.jobs.push_back(Job {
            expect,
            got: Vec::with_capacity(expect),
            reply,
        });
        if was_empty {
            let deadline = match conn.phase {
                // The io deadline starts after the handshake resolves; until
                // then the (shorter) connect deadline governs.
                Phase::Connecting => self.config.connect_timeout,
                Phase::Established => self.config.io_timeout,
            };
            self.wheel.arm(token, Instant::now() + deadline);
        }
        if matches!(
            self.conns.get(&token).map(|c| &c.phase),
            Some(Phase::Established)
        ) {
            self.pump(token, true, true);
        }
    }

    /// Picks the connection a new operation rides: a pooled idle one, then
    /// the least-loaded busy (or still-connecting) one with pipeline
    /// headroom, then a fresh dial.
    fn pick_conn(&mut self, addr: SocketAddr) -> io::Result<u64> {
        if let Some(token) = self.pop_idle(addr) {
            return Ok(token);
        }
        let mut best: Option<(u64, usize)> = None;
        for (&token, conn) in &self.conns {
            if conn.addr != addr
                || conn.jobs.is_empty()
                || conn.jobs.len() >= self.config.max_pipeline.max(1)
            {
                continue;
            }
            if best.is_none_or(|(_, depth)| conn.jobs.len() < depth) {
                best = Some((token, conn.jobs.len()));
            }
        }
        if let Some((token, _)) = best {
            return Ok(token);
        }
        self.dial(addr)
    }

    fn pop_idle(&mut self, addr: SocketAddr) -> Option<u64> {
        let pool = self.idle.get_mut(&addr)?;
        while let Some(token) = pool.pop() {
            // A pooled connection may have died while idle; skip corpses.
            if self.conns.contains_key(&token) {
                return Some(token);
            }
        }
        None
    }

    fn dial(&mut self, addr: SocketAddr) -> io::Result<u64> {
        let (fd, start) = sys::connect_nonblocking(&addr)?;
        let token = self.next_token;
        self.next_token += 1;
        // OwnedFd -> TcpStream transfers fd ownership without unsafe; the
        // stream is already non-blocking from SOCK_NONBLOCK.
        let stream = TcpStream::from(fd);
        let _ = stream.set_nodelay(true);
        self.poller
            .add(stream.as_raw_fd(), token, Interest::DUPLEX)?;
        let phase = match start {
            ConnectStart::Connected => Phase::Established,
            ConnectStart::InProgress => Phase::Connecting,
        };
        self.conns.insert(
            token,
            Conn {
                addr,
                stream,
                line: LineConn::new(self.config.max_line),
                phase,
                jobs: VecDeque::new(),
            },
        );
        Ok(token)
    }

    /// Handles one readiness event for a connection token.
    fn drive(&mut self, event: Event) {
        let Some(conn) = self.conns.get_mut(&event.token) else {
            return; // already closed this round
        };
        if let Phase::Connecting = conn.phase {
            if event.writable || event.closed {
                match sys::take_socket_error(conn.stream.as_raw_fd()) {
                    Ok(()) => {
                        conn.phase = Phase::Established;
                        if !conn.jobs.is_empty() {
                            // Handshake done: the io deadline takes over.
                            self.wheel
                                .arm(event.token, Instant::now() + self.config.io_timeout);
                        }
                    }
                    Err(e) => {
                        self.fail(event.token, e);
                        return;
                    }
                }
            } else {
                return;
            }
        }
        if event.closed
            && self
                .conns
                .get(&event.token)
                .is_some_and(|c| c.jobs.is_empty())
        {
            // An idle pooled connection the backend closed: just drop it.
            self.close(event.token);
            return;
        }
        self.pump(event.token, event.readable, true);
    }

    /// Advances a connection: drain writes, drain reads, resolve jobs FIFO.
    fn pump(&mut self, token: u64, readable: bool, writable: bool) {
        let io_timeout = self.config.io_timeout;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if writable && conn.line.wants_write() {
            let mut stream = &conn.stream;
            if let Err(e) = conn.line.flush_into(&mut stream) {
                self.fail(token, e);
                return;
            }
        }
        if !readable {
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut stream = &conn.stream;
        let outcome = match conn.line.fill(&mut stream) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.fail(token, e);
                return;
            }
        };
        let mut completed = false;
        while let Some(job) = conn.jobs.front_mut() {
            let mut done = false;
            while let Some(line) = conn.line.next_line() {
                job.got.push(line);
                if job.got.len() == job.expect {
                    done = true;
                    break;
                }
            }
            if !done {
                break;
            }
            let finished = conn.jobs.pop_front().expect("front job exists");
            finished.reply.send(Ok(finished.got));
            completed = true;
            // The deadline follows the head of the pipeline: re-arm a
            // fresh io budget for the next job, or disarm when drained.
            if conn.jobs.is_empty() {
                self.wheel.cancel(token);
            } else {
                self.wheel.arm(token, Instant::now() + io_timeout);
            }
        }
        if conn.jobs.is_empty() {
            if completed {
                // The pipeline just drained: pool the connection if it is
                // protocol-clean (leftover buffered bytes mean more
                // responses than requests — corruption; never pool).
                let clean = !conn.line.wants_write() && conn.line.pending_in() == 0 && !outcome.eof;
                let addr = conn.addr;
                if clean {
                    let pool = self.idle.entry(addr).or_default();
                    if pool.len() < self.config.max_idle {
                        pool.push(token);
                        return;
                    }
                }
                self.close(token);
            } else if outcome.eof {
                // Already-idle connection the peer closed.
                self.close(token);
            }
            return;
        }
        if outcome.eof {
            self.fail(
                token,
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "backend closed the connection",
                ),
            );
        }
    }

    /// The connection (and every job queued on it) failed: report and tear
    /// down. Pipelined jobs behind the failure share its error — the
    /// connection is out of protocol sync, so none of them can resolve.
    fn fail(&mut self, token: u64, error: io::Error) {
        self.wheel.cancel(token);
        if let Some(conn) = self.conns.get_mut(&token) {
            let kind = error.kind();
            let msg = error.to_string();
            let mut first = Some(error);
            for job in conn.jobs.drain(..) {
                let e = first
                    .take()
                    .unwrap_or_else(|| io::Error::new(kind, msg.clone()));
                job.reply.send(Err(e));
            }
        }
        self.close(token);
    }

    fn close(&mut self, token: u64) {
        self.wheel.cancel(token);
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.remove(conn.stream.as_raw_fd());
            // Dropping the stream closes the fd.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    /// A blocking thread-per-conn echo server: `PING` -> `PONG <n>` where n
    /// counts requests on that connection (so pooling is observable).
    fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    let mut count = 0u32;
                    loop {
                        line.clear();
                        if reader.read_line(&mut line).unwrap_or(0) == 0 {
                            return;
                        }
                        count += 1;
                        if writeln!(writer, "PONG {count}").is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    fn wait_all(driver: &ClientDriver, addr: SocketAddr, lines: &[&str]) -> BurstResult {
        driver.submit(addr, lines)?.wait()
    }

    #[test]
    fn submitted_bursts_round_trip_and_reuse_the_connection() {
        let addr = echo_server();
        let driver = ClientDriver::spawn(ClientConfig::default()).unwrap();
        assert_eq!(wait_all(&driver, addr, &["PING"]).unwrap(), vec!["PONG 1"]);
        // Same pooled connection: the counter keeps rising.
        assert_eq!(
            wait_all(&driver, addr, &["PING", "PING"]).unwrap(),
            vec!["PONG 2", "PONG 3"]
        );
        driver.drain(addr);
        // Drained: a fresh connection restarts the counter.
        assert_eq!(wait_all(&driver, addr, &["PING"]).unwrap(), vec!["PONG 1"]);
    }

    #[test]
    fn concurrent_submits_fan_out_without_spawning_threads() {
        let addr_a = echo_server();
        let addr_b = echo_server();
        let driver = ClientDriver::spawn(ClientConfig::default()).unwrap();
        // Submit first, collect second — the scatter-gather shape.
        let ticket_a = driver.submit(addr_a, &["PING", "PING"]).unwrap();
        let ticket_b = driver.submit(addr_b, &["PING"]).unwrap();
        assert_eq!(ticket_a.wait().unwrap(), vec!["PONG 1", "PONG 2"]);
        assert_eq!(ticket_b.wait().unwrap(), vec!["PONG 1"]);
    }

    #[test]
    fn submit_frame_sends_raw_bytes_and_collects_the_expected_lines() {
        let addr = echo_server();
        let driver = ClientDriver::spawn(ClientConfig::default()).unwrap();
        // A pre-framed burst: two lines as one byte blob, two responses.
        let replies = driver
            .submit_frame(addr, b"PING\nPING\n".to_vec(), 2)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(replies, vec!["PONG 1", "PONG 2"]);
    }

    #[test]
    fn ticket_try_take_polls_and_wait_deadline_returns_the_ticket_on_timeout() {
        // A server that answers only after a delay, so polling observes the
        // in-flight state.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    while reader.read_line(&mut line).unwrap_or(0) > 0 {
                        std::thread::sleep(Duration::from_millis(100));
                        if writeln!(writer, "LATE").is_err() {
                            return;
                        }
                        line.clear();
                    }
                });
            }
        });
        let driver = ClientDriver::spawn(ClientConfig::default()).unwrap();
        let mut ticket = driver.submit(addr, &["PING"]).unwrap();
        assert!(ticket.try_take().is_none(), "response cannot be ready yet");
        let ticket = match ticket.wait_deadline(Instant::now() + Duration::from_millis(5)) {
            Err(ticket) => ticket, // timed out as expected, still in flight
            Ok(result) => panic!("5ms deadline should expire first, got {result:?}"),
        };
        assert_eq!(ticket.wait().unwrap(), vec!["LATE"]);
    }

    #[test]
    fn ready_tickets_resolve_without_a_reactor() {
        let mut ticket = Ticket::ready(Ok(vec!["OK 1".to_string()]));
        assert_eq!(ticket.try_take().unwrap().unwrap(), vec!["OK 1"]);
        assert!(ticket.try_take().is_none());
        let ticket = Ticket::ready(Ok(vec!["OK 2".to_string()]));
        assert_eq!(ticket.wait().unwrap(), vec!["OK 2"]);
    }

    #[test]
    fn one_caller_thread_drives_thousands_of_queued_submissions() {
        let addr = echo_server();
        let driver = ClientDriver::spawn(ClientConfig {
            io_timeout: Duration::from_secs(30),
            ..ClientConfig::default()
        })
        .unwrap();
        let queue = CompletionQueue::new();
        const N: u64 = 3000;
        for tag in 0..N {
            driver
                .submit_frame_queued(addr, b"PING\n".to_vec(), 1, &queue, tag)
                .unwrap();
        }
        let mut seen = vec![false; N as usize];
        for _ in 0..N {
            let (tag, result) = queue.pop();
            assert!(!std::mem::replace(&mut seen[tag as usize], true));
            let lines = result.unwrap();
            assert_eq!(lines.len(), 1);
            assert!(lines[0].starts_with("PONG "), "{}", lines[0]);
        }
        assert!(queue.is_empty());
    }

    #[test]
    fn pipelining_multiplexes_many_jobs_onto_few_connections() {
        let addr = echo_server();
        let driver = ClientDriver::spawn(ClientConfig {
            io_timeout: Duration::from_secs(30),
            max_pipeline: 64,
            ..ClientConfig::default()
        })
        .unwrap();
        // 256 separate submissions; with max_pipeline=64 they share a
        // handful of connections, observable through the per-connection
        // PONG counters: pipelined jobs see counters far above 1.
        let tickets: Vec<Ticket> = (0..256)
            .map(|_| driver.submit(addr, &["PING"]).unwrap())
            .collect();
        let mut max_counter = 0u32;
        for ticket in tickets {
            let lines = ticket.wait().unwrap();
            let counter: u32 = lines[0]
                .strip_prefix("PONG ")
                .expect("echo format")
                .parse()
                .unwrap();
            max_counter = max_counter.max(counter);
        }
        assert!(
            max_counter > 4,
            "256 jobs never shared a connection (max per-conn counter {max_counter})"
        );
    }

    #[test]
    fn a_large_burst_exceeding_socket_buffers_does_not_deadlock() {
        let addr = echo_server();
        let driver = ClientDriver::spawn(ClientConfig {
            io_timeout: Duration::from_secs(30),
            ..ClientConfig::default()
        })
        .unwrap();
        // ~2000 pipelined lines: far beyond what write-all-then-read-all
        // could push through loopback buffers without the reactor reading
        // responses concurrently.
        let lines: Vec<String> = (0..2000).map(|_| "PING".to_string()).collect();
        let line_refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let replies = wait_all(&driver, addr, &line_refs).unwrap();
        assert_eq!(replies.len(), 2000);
        assert_eq!(replies[0], "PONG 1");
        assert_eq!(replies[1999], "PONG 2000");
    }

    #[test]
    fn dead_port_fails_within_the_connect_timeout() {
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let driver = ClientDriver::spawn(ClientConfig {
            connect_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        })
        .unwrap();
        let start = Instant::now();
        assert!(wait_all(&driver, addr, &["PING"]).is_err());
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn a_server_that_stops_answering_hits_the_io_deadline() {
        // Accepts, reads, never replies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming().flatten() {
                held.push(stream); // keep the socket open, say nothing
            }
        });
        let driver = ClientDriver::spawn(ClientConfig {
            io_timeout: Duration::from_millis(150),
            ..ClientConfig::default()
        })
        .unwrap();
        let start = Instant::now();
        let err = wait_all(&driver, addr, &["PING"]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn a_deadline_fails_every_job_pipelined_behind_it() {
        // Answers the first request, then goes silent: the second job times
        // out at the head, and the third (queued behind it on the same
        // connection) fails with it.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) > 0 {
                        let _ = writeln!(writer, "PONG 1");
                    }
                    loop {
                        line.clear();
                        if reader.read_line(&mut line).unwrap_or(0) == 0 {
                            return; // read but never answer again
                        }
                    }
                });
            }
        });
        let driver = ClientDriver::spawn(ClientConfig {
            io_timeout: Duration::from_millis(150),
            ..ClientConfig::default()
        })
        .unwrap();
        let first = driver.submit(addr, &["PING"]).unwrap();
        let second = driver.submit(addr, &["PING"]).unwrap();
        let third = driver.submit(addr, &["PING"]).unwrap();
        assert_eq!(first.wait().unwrap(), vec!["PONG 1"]);
        assert_eq!(second.wait().unwrap_err().kind(), io::ErrorKind::TimedOut);
        assert_eq!(third.wait().unwrap_err().kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn dropping_the_driver_stops_the_reactor() {
        let addr = echo_server();
        let driver = ClientDriver::spawn(ClientConfig::default()).unwrap();
        assert!(wait_all(&driver, addr, &["PING"]).is_ok());
        drop(driver); // joins the reactor thread; no hang = pass
    }
}
