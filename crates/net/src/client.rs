//! A reactor-backed line-protocol client: one event-loop thread multiplexes
//! every outbound connection, so a caller fanning a batch out to N replicas
//! submits N operations and blocks on N receivers — **zero threads are
//! spawned per request**, which is what lets a routing tier scatter to its
//! whole replica set without paying a thread per backend per request.
//!
//! One operation ([`ClientDriver::submit`]) writes a burst of request lines
//! to one address and resolves with exactly as many response lines (the
//! serve protocol answers in order on one connection). Because the reactor
//! interleaves reads and writes on the same connection, a burst may exceed
//! the combined socket buffers without deadlocking — the
//! write-all-then-read-all pipelining of a blocking client cannot do that,
//! which is why it must cap its bursts.
//!
//! Connections are pooled per address (up to `max_idle` kept warm), dialed
//! non-blockingly on demand, and torn down on any error or deadline —
//! a connection that failed mid-exchange is out of protocol sync and can
//! never be reused. Deadlines (connect and io) ride the
//! [`crate::wheel::DeadlineWheel`].

use crate::line::LineConn;
use crate::poller::{Event, Interest, Poller, Waker};
use crate::sys::{self, ConnectStart};
use crate::wheel::DeadlineWheel;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`ClientDriver`].
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// How long a non-blocking dial may take to become writable.
    pub connect_timeout: Duration,
    /// Deadline for one whole operation (burst out + responses in),
    /// armed from the moment the operation is assigned a connection.
    pub io_timeout: Duration,
    /// Idle connections kept per address; excess are closed on release.
    pub max_idle: usize,
    /// Longest tolerated response line.
    pub max_line: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_secs(2),
            max_idle: 8,
            max_line: 1 << 20,
        }
    }
}

/// The result of one submitted burst: the response lines, in order.
pub type BurstResult = io::Result<Vec<String>>;

enum Op {
    Burst {
        addr: SocketAddr,
        /// Pre-framed request bytes: newline-joined lines, or a header line
        /// plus counted payload for frame submissions.
        bytes: Vec<u8>,
        /// Response lines to collect before the operation resolves.
        expect: usize,
        reply: Sender<BurstResult>,
    },
    /// Close every idle connection to `addr` (e.g. after its backend was
    /// ejected, so re-admission starts from fresh sockets).
    Drain(SocketAddr),
}

/// A handle to the reactor thread. Cloning the handle is done by `Arc`;
/// dropping the last handle stops and joins the reactor.
#[derive(Debug)]
pub struct ClientDriver {
    ops: Sender<Op>,
    waker: Arc<Waker>,
    thread: Option<JoinHandle<()>>,
}

impl ClientDriver {
    /// Starts the reactor thread.
    pub fn spawn(config: ClientConfig) -> io::Result<ClientDriver> {
        let waker = Arc::new(Waker::new()?);
        let (ops, op_rx) = mpsc::channel();
        let reactor = Reactor::new(config, Arc::clone(&waker), op_rx)?;
        let thread = std::thread::Builder::new()
            .name("pfr-net-client".to_string())
            .spawn(move || reactor.run())
            .expect("spawning the client reactor never fails on this platform");
        Ok(ClientDriver {
            ops,
            waker,
            thread: Some(thread),
        })
    }

    /// Submits a burst of request lines to `addr`; the returned receiver
    /// yields the same number of response lines (or the operation's error).
    /// Submitting is non-blocking — fan-out submits all replicas first,
    /// then collects.
    pub fn submit<S: AsRef<str>>(
        &self,
        addr: SocketAddr,
        lines: &[S],
    ) -> io::Result<Receiver<BurstResult>> {
        let mut bytes = Vec::new();
        for line in lines {
            bytes.extend_from_slice(line.as_ref().as_bytes());
            bytes.push(b'\n');
        }
        self.submit_frame(addr, bytes, lines.len())
    }

    /// Submits a pre-framed request — raw bytes that may carry a counted
    /// payload after a header line (the `PUSH` verb) — expecting `expect`
    /// response lines. [`ClientDriver::submit`] is the line-burst special
    /// case of this.
    pub fn submit_frame(
        &self,
        addr: SocketAddr,
        bytes: Vec<u8>,
        expect: usize,
    ) -> io::Result<Receiver<BurstResult>> {
        let (reply, rx) = mpsc::channel();
        self.ops
            .send(Op::Burst {
                addr,
                bytes,
                expect,
                reply,
            })
            .map_err(|_| io::Error::new(io::ErrorKind::NotConnected, "client reactor is gone"))?;
        self.waker.wake()?;
        Ok(rx)
    }

    /// One burst, submitted and awaited.
    pub fn exchange<S: AsRef<str>>(&self, addr: SocketAddr, lines: &[S]) -> BurstResult {
        self.submit(addr, lines)?
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::NotConnected, "client reactor is gone"))?
    }

    /// One pre-framed request, submitted and awaited.
    pub fn exchange_frame(&self, addr: SocketAddr, bytes: Vec<u8>, expect: usize) -> BurstResult {
        self.submit_frame(addr, bytes, expect)?
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::NotConnected, "client reactor is gone"))?
    }

    /// Closes every idle pooled connection to `addr`.
    pub fn drain(&self, addr: SocketAddr) {
        if self.ops.send(Op::Drain(addr)).is_ok() {
            let _ = self.waker.wake();
        }
    }
}

impl Drop for ClientDriver {
    fn drop(&mut self) {
        // Closing the op channel is the shutdown signal; the wake makes the
        // reactor notice it even while idle.
        drop(std::mem::replace(&mut self.ops, mpsc::channel().0));
        let _ = self.waker.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

const WAKER_TOKEN: u64 = 0;

/// One in-flight operation bound to a connection.
struct Job {
    expect: usize,
    got: Vec<String>,
    reply: Sender<BurstResult>,
}

enum Phase {
    /// Dial in flight; the payload is already queued in the `LineConn`.
    Connecting,
    /// Established, exchanging or idle (idle = no job).
    Established,
}

struct Conn {
    addr: SocketAddr,
    /// Owns the fd; wrapped as a `TcpStream` for read/write/nodelay.
    stream: TcpStream,
    line: LineConn,
    phase: Phase,
    job: Option<Job>,
}

struct Reactor {
    config: ClientConfig,
    poller: Poller,
    waker: Arc<Waker>,
    ops: Receiver<Op>,
    conns: HashMap<u64, Conn>,
    idle: HashMap<SocketAddr, Vec<u64>>,
    wheel: DeadlineWheel,
    next_token: u64,
}

impl Reactor {
    fn new(config: ClientConfig, waker: Arc<Waker>, ops: Receiver<Op>) -> io::Result<Reactor> {
        let poller = Poller::new(256)?;
        poller.add(waker.raw_fd(), WAKER_TOKEN, Interest::READABLE.level())?;
        Ok(Reactor {
            config,
            poller,
            waker,
            ops,
            conns: HashMap::new(),
            idle: HashMap::new(),
            // 64 slots x 16ms ≈ 1s horizon per revolution; deadlines past
            // the horizon simply ride extra revolutions.
            wheel: DeadlineWheel::new(Duration::from_millis(16), 64),
            next_token: WAKER_TOKEN + 1,
        })
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut expired: Vec<u64> = Vec::new();
        loop {
            let timeout = self.wheel.next_timeout(Instant::now());
            if self.poller.wait(&mut events, timeout).is_err() {
                // EBADF etc. can only mean teardown races; bail out.
                break;
            }
            let mut shutdown = false;
            // Drain in place so the buffer's capacity is reused every
            // wakeup (`events` is a local, so borrowing it across the
            // `&mut self` calls below is fine).
            for event in events.drain(..) {
                if event.token == WAKER_TOKEN {
                    self.waker.drain();
                    if self.drain_ops() {
                        shutdown = true;
                    }
                } else {
                    self.drive(event);
                }
            }
            // Ops may have arrived between the waker write and our drain of
            // the channel even without an event this round; harmless — the
            // pending wake delivers them next round.
            expired.clear();
            self.wheel.advance(Instant::now(), &mut expired);
            for token in expired.drain(..) {
                self.fail(
                    token,
                    io::Error::new(io::ErrorKind::TimedOut, "io deadline"),
                );
            }
            if shutdown {
                break;
            }
        }
        // Fail whatever is still in flight so no caller blocks forever.
        for (_, conn) in self.conns.drain() {
            if let Some(job) = conn.job {
                let _ = job.reply.send(Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "client reactor stopped",
                )));
            }
        }
    }

    /// Pulls every queued op; returns true when the channel closed (the
    /// driver handle was dropped — time to shut down).
    fn drain_ops(&mut self) -> bool {
        loop {
            match self.ops.try_recv() {
                Ok(Op::Burst {
                    addr,
                    bytes,
                    expect,
                    reply,
                }) => self.start_burst(addr, bytes, expect, reply),
                Ok(Op::Drain(addr)) => {
                    for token in self.idle.remove(&addr).unwrap_or_default() {
                        self.close(token);
                    }
                }
                Err(mpsc::TryRecvError::Empty) => return false,
                Err(mpsc::TryRecvError::Disconnected) => return true,
            }
        }
    }

    fn start_burst(
        &mut self,
        addr: SocketAddr,
        bytes: Vec<u8>,
        expect: usize,
        reply: Sender<BurstResult>,
    ) {
        if expect == 0 {
            let _ = reply.send(Ok(Vec::new()));
            return;
        }
        // Reuse a pooled connection or dial a fresh one.
        let token = match self.pop_idle(addr) {
            Some(token) => token,
            None => match self.dial(addr) {
                Ok(token) => token,
                Err(e) => {
                    let _ = reply.send(Err(e));
                    return;
                }
            },
        };
        let conn = self
            .conns
            .get_mut(&token)
            .expect("dialed or pooled conn exists");
        conn.line.enqueue_bytes(&bytes);
        conn.job = Some(Job {
            expect,
            got: Vec::with_capacity(expect),
            reply,
        });
        let deadline = match conn.phase {
            // The io deadline starts after the handshake resolves; until
            // then the (shorter) connect deadline governs.
            Phase::Connecting => self.config.connect_timeout,
            Phase::Established => self.config.io_timeout,
        };
        self.wheel.arm(token, Instant::now() + deadline);
        if matches!(
            self.conns.get(&token).map(|c| &c.phase),
            Some(Phase::Established)
        ) {
            self.pump(token, true, true);
        }
    }

    fn pop_idle(&mut self, addr: SocketAddr) -> Option<u64> {
        let pool = self.idle.get_mut(&addr)?;
        while let Some(token) = pool.pop() {
            // A pooled connection may have died while idle; skip corpses.
            if self.conns.contains_key(&token) {
                return Some(token);
            }
        }
        None
    }

    fn dial(&mut self, addr: SocketAddr) -> io::Result<u64> {
        let (fd, start) = sys::connect_nonblocking(&addr)?;
        let token = self.next_token;
        self.next_token += 1;
        // OwnedFd -> TcpStream transfers fd ownership without unsafe; the
        // stream is already non-blocking from SOCK_NONBLOCK.
        let stream = TcpStream::from(fd);
        let _ = stream.set_nodelay(true);
        self.poller
            .add(stream.as_raw_fd(), token, Interest::DUPLEX)?;
        let phase = match start {
            ConnectStart::Connected => Phase::Established,
            ConnectStart::InProgress => Phase::Connecting,
        };
        self.conns.insert(
            token,
            Conn {
                addr,
                stream,
                line: LineConn::new(self.config.max_line),
                phase,
                job: None,
            },
        );
        Ok(token)
    }

    /// Handles one readiness event for a connection token.
    fn drive(&mut self, event: Event) {
        let Some(conn) = self.conns.get_mut(&event.token) else {
            return; // already closed this round
        };
        if let Phase::Connecting = conn.phase {
            if event.writable || event.closed {
                match sys::take_socket_error(conn.stream.as_raw_fd()) {
                    Ok(()) => {
                        conn.phase = Phase::Established;
                        if conn.job.is_some() {
                            // Handshake done: the io deadline takes over.
                            self.wheel
                                .arm(event.token, Instant::now() + self.config.io_timeout);
                        }
                    }
                    Err(e) => {
                        self.fail(event.token, e);
                        return;
                    }
                }
            } else {
                return;
            }
        }
        if event.closed
            && self
                .conns
                .get(&event.token)
                .is_some_and(|c| c.job.is_none())
        {
            // An idle pooled connection the backend closed: just drop it.
            self.close(event.token);
            return;
        }
        self.pump(event.token, event.readable, true);
    }

    /// Advances a connection: drain writes, drain reads, complete the job.
    fn pump(&mut self, token: u64, readable: bool, writable: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if writable && conn.line.wants_write() {
            let mut stream = &conn.stream;
            if let Err(e) = conn.line.flush_into(&mut stream) {
                self.fail(token, e);
                return;
            }
        }
        if readable {
            let mut stream = &conn.stream;
            let outcome = match conn.line.fill(&mut stream) {
                Ok(outcome) => outcome,
                Err(e) => {
                    self.fail(token, e);
                    return;
                }
            };
            let mut done = false;
            if let Some(job) = conn.job.as_mut() {
                while let Some(line) = conn.line.next_line() {
                    job.got.push(line);
                    if job.got.len() == job.expect {
                        done = true;
                        break;
                    }
                }
            }
            if done {
                self.complete(token);
                return;
            }
            if outcome.eof {
                self.fail(
                    token,
                    io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "backend closed the connection",
                    ),
                );
            }
        }
    }

    /// The job finished: hand back its lines and pool or close the conn.
    fn complete(&mut self, token: u64) {
        self.wheel.cancel(token);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let job = conn.job.take().expect("complete is only called with a job");
        let _ = job.reply.send(Ok(job.got));
        // A connection with leftover buffered bytes got more responses than
        // requests — protocol corruption; never pool it.
        let clean = !conn.line.wants_write() && conn.line.pending_in() == 0;
        let addr = conn.addr;
        let pool = self.idle.entry(addr).or_default();
        if clean && pool.len() < self.config.max_idle {
            pool.push(token);
        } else {
            self.close(token);
        }
    }

    /// The job (or its connection) failed: report and tear down.
    fn fail(&mut self, token: u64, error: io::Error) {
        self.wheel.cancel(token);
        if let Some(conn) = self.conns.get_mut(&token) {
            if let Some(job) = conn.job.take() {
                let _ = job.reply.send(Err(error));
            }
        }
        self.close(token);
    }

    fn close(&mut self, token: u64) {
        self.wheel.cancel(token);
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.remove(conn.stream.as_raw_fd());
            // Dropping the stream closes the fd.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    /// A blocking thread-per-conn echo server: `PING` -> `PONG <n>` where n
    /// counts requests on that connection (so pooling is observable).
    fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    let mut count = 0u32;
                    loop {
                        line.clear();
                        if reader.read_line(&mut line).unwrap_or(0) == 0 {
                            return;
                        }
                        count += 1;
                        if writeln!(writer, "PONG {count}").is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn exchange_round_trips_and_reuses_the_connection() {
        let addr = echo_server();
        let driver = ClientDriver::spawn(ClientConfig::default()).unwrap();
        assert_eq!(driver.exchange(addr, &["PING"]).unwrap(), vec!["PONG 1"]);
        // Same pooled connection: the counter keeps rising.
        assert_eq!(
            driver.exchange(addr, &["PING", "PING"]).unwrap(),
            vec!["PONG 2", "PONG 3"]
        );
        driver.drain(addr);
        // Drained: a fresh connection restarts the counter.
        assert_eq!(driver.exchange(addr, &["PING"]).unwrap(), vec!["PONG 1"]);
    }

    #[test]
    fn concurrent_submits_fan_out_without_spawning_threads() {
        let addr_a = echo_server();
        let addr_b = echo_server();
        let driver = ClientDriver::spawn(ClientConfig::default()).unwrap();
        // Submit first, collect second — the scatter-gather shape.
        let rx_a = driver.submit(addr_a, &["PING", "PING"]).unwrap();
        let rx_b = driver.submit(addr_b, &["PING"]).unwrap();
        assert_eq!(rx_a.recv().unwrap().unwrap(), vec!["PONG 1", "PONG 2"]);
        assert_eq!(rx_b.recv().unwrap().unwrap(), vec!["PONG 1"]);
    }

    #[test]
    fn exchange_frame_sends_raw_bytes_and_collects_the_expected_lines() {
        let addr = echo_server();
        let driver = ClientDriver::spawn(ClientConfig::default()).unwrap();
        // A pre-framed burst: two lines as one byte blob, two responses.
        let replies = driver
            .exchange_frame(addr, b"PING\nPING\n".to_vec(), 2)
            .unwrap();
        assert_eq!(replies, vec!["PONG 1", "PONG 2"]);
    }

    #[test]
    fn a_large_burst_exceeding_socket_buffers_does_not_deadlock() {
        let addr = echo_server();
        let driver = ClientDriver::spawn(ClientConfig {
            io_timeout: Duration::from_secs(30),
            ..ClientConfig::default()
        })
        .unwrap();
        // ~2000 pipelined lines: far beyond what write-all-then-read-all
        // could push through loopback buffers without the reactor reading
        // responses concurrently.
        let lines: Vec<String> = (0..2000).map(|_| "PING".to_string()).collect();
        let replies = driver.exchange(addr, &lines).unwrap();
        assert_eq!(replies.len(), 2000);
        assert_eq!(replies[0], "PONG 1");
        assert_eq!(replies[1999], "PONG 2000");
    }

    #[test]
    fn dead_port_fails_within_the_connect_timeout() {
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let driver = ClientDriver::spawn(ClientConfig {
            connect_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        })
        .unwrap();
        let start = Instant::now();
        assert!(driver.exchange(addr, &["PING"]).is_err());
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn a_server_that_stops_answering_hits_the_io_deadline() {
        // Accepts, reads, never replies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming().flatten() {
                held.push(stream); // keep the socket open, say nothing
            }
        });
        let driver = ClientDriver::spawn(ClientConfig {
            io_timeout: Duration::from_millis(150),
            ..ClientConfig::default()
        })
        .unwrap();
        let start = Instant::now();
        let err = driver.exchange(addr, &["PING"]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn dropping_the_driver_stops_the_reactor() {
        let addr = echo_server();
        let driver = ClientDriver::spawn(ClientConfig::default()).unwrap();
        assert!(driver.exchange(addr, &["PING"]).is_ok());
        drop(driver); // joins the reactor thread; no hang = pass
    }
}
