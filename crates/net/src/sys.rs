//! Raw `extern "C"` bindings to the handful of Linux syscalls the reactor
//! needs and safe wrappers around them — `epoll_create1` / `epoll_ctl` /
//! `epoll_wait` for readiness, `eventfd` for cross-thread wakeups, and
//! `socket` / `connect` / `getsockopt(SO_ERROR)` for non-blocking dials.
//!
//! The workspace is offline and std-only (no `libc`, no `mio`), so the
//! declarations live here, kept to the exact subset used. **Every `unsafe`
//! block in `pfr-net` is in this file**; each is a thin argument-marshalling
//! shim whose safety argument is local (see `DESIGN.md` §5 for the
//! inventory). Everything above this module speaks owned fds and
//! `io::Result`.

use std::io;
use std::net::SocketAddr;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

#[allow(non_camel_case_types)]
type c_int = i32;
#[allow(non_camel_case_types)]
type c_uint = u32;

/// One epoll readiness record. On x86-64 the kernel ABI packs the struct
/// (no padding between `events` and `data`); the attribute mirrors that.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen token returned verbatim with the event.
    pub data: u64,
}

impl std::fmt::Debug for EpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Copy out of the packed struct; a derived Debug would take
        // (possibly unaligned) references to the fields.
        let (events, data) = (self.events, self.data);
        f.debug_struct("EpollEvent")
            .field("events", &events)
            .field("data", &data)
            .finish()
    }
}

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up: both directions closed (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write direction (half-close detection).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery: one event per readiness *transition*.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const AF_INET: c_int = 2;
const AF_INET6: c_int = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0o4000;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_ERROR: c_int = 4;
const EINPROGRESS: i32 = 115;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const u8, addrlen: u32) -> c_int;
    fn getsockopt(fd: c_int, level: c_int, name: c_int, value: *mut c_int, len: *mut u32) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates a close-on-exec epoll instance and returns its owned fd.
pub fn epoll_create() -> io::Result<OwnedFd> {
    // SAFETY: epoll_create1 takes no pointers; a non-negative return is a
    // freshly created fd this process owns, so wrapping it in OwnedFd
    // (which assumes sole ownership) is correct.
    let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// Adds, modifies or deletes `fd`'s registration on `epfd`.
fn ctl(epfd: &OwnedFd, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut event = EpollEvent {
        events,
        data: token,
    };
    // SAFETY: `event` is a live stack value for the duration of the call
    // and matches the kernel's epoll_event layout (see EpollEvent); the fds
    // come from OwnedFd/AsRawFd, so they are valid open descriptors.
    cvt(unsafe { epoll_ctl(epfd.as_raw_fd(), op, fd, &mut event) })?;
    Ok(())
}

/// Registers `fd` with the given readiness mask and token.
pub fn epoll_add(epfd: &OwnedFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_ADD, fd, events, token)
}

/// Re-arms `fd` with a new readiness mask and token.
pub fn epoll_modify(epfd: &OwnedFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_MOD, fd, events, token)
}

/// Removes `fd` from `epfd` (ignores the not-registered error).
pub fn epoll_delete(epfd: &OwnedFd, fd: RawFd) {
    let _ = ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0);
}

/// Blocks for readiness events; `timeout_ms` of `-1` waits forever.
/// Returns the prefix of `events` the kernel filled.
pub fn epoll_collect<'a>(
    epfd: &OwnedFd,
    events: &'a mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<&'a [EpollEvent]> {
    // SAFETY: the pointer/length pair describes the caller's live slice,
    // and the kernel writes at most `events.len()` records; `n` is the
    // number actually written, so the returned prefix is initialized.
    let n = match cvt(unsafe {
        epoll_wait(
            epfd.as_raw_fd(),
            events.as_mut_ptr(),
            events.len() as c_int,
            timeout_ms,
        )
    }) {
        Ok(n) => n,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
        Err(e) => return Err(e),
    };
    Ok(&events[..n as usize])
}

/// Creates a non-blocking, close-on-exec eventfd and returns its owned fd.
/// Reads and writes go through `std::fs::File::from(OwnedFd)` upstream, so
/// no raw `read`/`write` bindings are needed.
pub fn eventfd_create() -> io::Result<OwnedFd> {
    // SAFETY: eventfd takes no pointers; as with epoll_create, a
    // non-negative return is a fresh fd owned solely by this call.
    let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// `sockaddr_in` / `sockaddr_in6`, laid out per the kernel ABI, with the
/// byte length the kernel expects for each family.
#[repr(C)]
union SockAddrStorage {
    v4: SockAddrIn,
    v6: SockAddrIn6,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct SockAddrIn {
    family: u16,
    port_be: u16,
    addr_be: u32,
    zero: [u8; 8],
}

#[repr(C)]
#[derive(Clone, Copy)]
struct SockAddrIn6 {
    family: u16,
    port_be: u16,
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

fn encode_addr(addr: &SocketAddr) -> (SockAddrStorage, u32, c_int) {
    match addr {
        SocketAddr::V4(v4) => (
            SockAddrStorage {
                v4: SockAddrIn {
                    family: AF_INET as u16,
                    port_be: v4.port().to_be(),
                    addr_be: u32::from_be_bytes(v4.ip().octets()).to_be(),
                    zero: [0; 8],
                },
            },
            std::mem::size_of::<SockAddrIn>() as u32,
            AF_INET,
        ),
        SocketAddr::V6(v6) => (
            SockAddrStorage {
                v6: SockAddrIn6 {
                    family: AF_INET6 as u16,
                    port_be: v6.port().to_be(),
                    flowinfo: v6.flowinfo(),
                    addr: v6.ip().octets(),
                    scope_id: v6.scope_id(),
                },
            },
            std::mem::size_of::<SockAddrIn6>() as u32,
            AF_INET6,
        ),
    }
}

/// Outcome of starting a non-blocking TCP connect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectStart {
    /// The three-way handshake completed immediately (loopback fast path).
    Connected,
    /// The handshake is in flight; wait for writability, then call
    /// [`take_socket_error`] to learn the outcome.
    InProgress,
}

/// Opens a non-blocking TCP socket and starts connecting it to `addr`.
/// The returned fd is owned; registering it for writability tells the
/// caller when the `InProgress` handshake resolves.
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<(OwnedFd, ConnectStart)> {
    let (storage, len, family) = encode_addr(addr);
    // SAFETY: socket takes no pointers; a non-negative return is a fresh
    // fd wrapped immediately into OwnedFd, which becomes its sole owner.
    let fd = cvt(unsafe { socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    let fd = unsafe { OwnedFd::from_raw_fd(fd) };
    // SAFETY: `storage` is a live, correctly laid-out sockaddr of `len`
    // bytes for the socket's own address family; the kernel only reads it.
    let ret = unsafe {
        connect(
            fd.as_raw_fd(),
            (&storage as *const SockAddrStorage).cast(),
            len,
        )
    };
    if ret == 0 {
        return Ok((fd, ConnectStart::Connected));
    }
    match io::Error::last_os_error() {
        e if e.raw_os_error() == Some(EINPROGRESS) => Ok((fd, ConnectStart::InProgress)),
        e => Err(e),
    }
}

/// Reads and clears the socket's pending error (`SO_ERROR`) — the outcome
/// of a non-blocking connect once the socket reports writable.
pub fn take_socket_error(fd: RawFd) -> io::Result<()> {
    let mut err: c_int = 0;
    let mut len = std::mem::size_of::<c_int>() as u32;
    // SAFETY: `err`/`len` are live stack slots of exactly the size the
    // kernel writes for SO_ERROR (an int), and `fd` is a valid socket.
    cvt(unsafe { getsockopt(fd, SOL_SOCKET, SO_ERROR, &mut err, &mut len) })?;
    if err == 0 {
        Ok(())
    } else {
        Err(io::Error::from_raw_os_error(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn epoll_instance_creates_and_closes() {
        let epfd = epoll_create().unwrap();
        assert!(epfd.as_raw_fd() >= 0);
        // Waiting with a zero timeout on an empty instance returns nothing.
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert!(epoll_collect(&epfd, &mut events, 0).unwrap().is_empty());
    }

    #[test]
    fn eventfd_write_makes_it_readable() {
        use std::io::Write;
        let epfd = epoll_create().unwrap();
        let efd = eventfd_create().unwrap();
        epoll_add(&epfd, efd.as_raw_fd(), EPOLLIN, 42).unwrap();
        let file = std::fs::File::from(efd);
        (&file).write_all(&1u64.to_ne_bytes()).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        let fired = epoll_collect(&epfd, &mut events, 100).unwrap();
        assert_eq!(fired.len(), 1);
        let (events_mask, data) = (fired[0].events, fired[0].data);
        assert_eq!(data, 42);
        assert!(events_mask & EPOLLIN != 0);
    }

    #[test]
    fn nonblocking_connect_reaches_a_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (fd, start) = connect_nonblocking(&addr).unwrap();
        if start == ConnectStart::InProgress {
            let epfd = epoll_create().unwrap();
            epoll_add(&epfd, fd.as_raw_fd(), EPOLLOUT, 1).unwrap();
            let mut events = [EpollEvent { events: 0, data: 0 }; 4];
            assert!(!epoll_collect(&epfd, &mut events, 2000).unwrap().is_empty());
        }
        take_socket_error(fd.as_raw_fd()).unwrap();
    }

    #[test]
    fn nonblocking_connect_to_a_dead_port_reports_the_error() {
        // Bind-then-drop yields a port nobody listens on; loopback refuses
        // the handshake, surfaced either at connect or via SO_ERROR.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        match connect_nonblocking(&addr) {
            Err(_) => {}
            Ok((fd, ConnectStart::Connected)) => {
                panic!("connect to a dead port cannot complete; fd {fd:?}")
            }
            Ok((fd, ConnectStart::InProgress)) => {
                let epfd = epoll_create().unwrap();
                epoll_add(&epfd, fd.as_raw_fd(), EPOLLOUT, 1).unwrap();
                let mut events = [EpollEvent { events: 0, data: 0 }; 4];
                let _ = epoll_collect(&epfd, &mut events, 2000).unwrap();
                assert!(take_socket_error(fd.as_raw_fd()).is_err());
            }
        }
    }
}
