//! The safe readiness layer over [`crate::sys`]: a [`Poller`] that maps
//! registered fds to caller tokens, and a [`Waker`] (eventfd) that lets any
//! thread interrupt a blocked [`Poller::wait`].
//!
//! Registrations default to **edge-triggered** delivery: the kernel reports
//! each readiness *transition* once, and the event loop is responsible for
//! draining the fd (read/write until `WouldBlock`) before the next edge can
//! fire. That is the contract [`crate::line::LineConn`] is written against,
//! and it is what keeps a 10k-connection loop at O(ready) work per wakeup
//! instead of O(registered) — see `DESIGN.md` §2 for the edge-vs-level
//! argument. Level-triggered registration remains available (the waker uses
//! it) via [`Interest::level`].

use crate::sys;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, OwnedFd, RawFd};
use std::time::Duration;

/// What readiness to watch an fd for, and how to deliver it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
    edge: bool,
}

impl Interest {
    /// Readable only, edge-triggered.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
        edge: true,
    };

    /// Writable only, edge-triggered.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
        edge: true,
    };

    /// Readable and writable, edge-triggered — the default for connection
    /// sockets, which drain both directions on every wakeup.
    pub const DUPLEX: Interest = Interest {
        readable: true,
        writable: true,
        edge: true,
    };

    /// The same interest with level-triggered delivery: the kernel keeps
    /// reporting readiness while it holds. Used for the waker, whose
    /// consumer drains it exactly once per loop iteration.
    pub fn level(self) -> Interest {
        Interest {
            edge: false,
            ..self
        }
    }

    fn mask(self) -> u32 {
        let mut mask = sys::EPOLLRDHUP;
        if self.readable {
            mask |= sys::EPOLLIN;
        }
        if self.writable {
            mask |= sys::EPOLLOUT;
        }
        if self.edge {
            mask |= sys::EPOLLET;
        }
        mask
    }
}

/// One delivered readiness event, decoded from the kernel record.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd can be read (or has in-flight data).
    pub readable: bool,
    /// The fd can be written.
    pub writable: bool,
    /// The peer closed (its write side or the whole connection), or the fd
    /// is in an error state — either way the fd should be drained and
    /// closed rather than waited on again.
    pub closed: bool,
}

/// An epoll instance mapping registered fds to caller tokens.
#[derive(Debug)]
pub struct Poller {
    epfd: OwnedFd,
    buffer: Vec<sys::EpollEvent>,
}

impl Poller {
    /// A fresh epoll instance with room for `capacity` events per wait.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
            buffer: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(8)],
        })
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_add(&self.epfd, fd, interest.mask(), token)
    }

    /// Replaces `fd`'s interest and token.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_modify(&self.epfd, fd, interest.mask(), token)
    }

    /// Deregisters `fd`. Closing an fd deregisters it implicitly, so this
    /// only matters for fds that outlive their registration; errors
    /// (already gone) are ignored.
    pub fn remove(&self, fd: RawFd) {
        sys::epoll_delete(&self.epfd, fd);
    }

    /// Blocks until at least one event arrives or `timeout` passes
    /// (`None` = wait forever), appending decoded events to `out`.
    /// Returns how many events were delivered.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            // Round up so a 0 < t < 1ms deadline does not busy-spin.
            Some(t) => {
                i32::try_from(t.as_millis().max(1).min(i32::MAX as u128)).unwrap_or(i32::MAX)
            }
            None => -1,
        };
        let fired = sys::epoll_collect(&self.epfd, &mut self.buffer, timeout_ms)?;
        let n = fired.len();
        for record in fired {
            let (mask, token) = (record.events, record.data);
            out.push(Event {
                token,
                readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                writable: mask & sys::EPOLLOUT != 0,
                closed: mask & (sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(n)
    }
}

/// A cross-thread wakeup handle: an eventfd registered on the poller.
/// Cloneable via `Arc`; `wake` is safe from any thread and from signal-free
/// contexts, and coalesces (N wakes before a drain deliver one event).
#[derive(Debug)]
pub struct Waker {
    file: std::fs::File,
}

impl Waker {
    /// A fresh eventfd-backed waker. Register [`Waker::raw_fd`] on the
    /// poller (level-triggered `READABLE`) under a reserved token.
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            file: std::fs::File::from(sys::eventfd_create()?),
        })
    }

    /// The fd to register on the poller.
    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Makes the next (or current) [`Poller::wait`] return.
    pub fn wake(&self) -> io::Result<()> {
        match (&self.file).write_all(&1u64.to_ne_bytes()) {
            Ok(()) => Ok(()),
            // Counter saturated: a wake is already pending, job done.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Clears pending wakes (call once per poll loop iteration after the
    /// waker's token fires).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // Non-blocking eventfd: one read clears the whole counter.
        let _ = (&self.file).read(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    #[test]
    fn waker_wakes_a_blocked_wait_from_another_thread() {
        let mut poller = Poller::new(8).unwrap();
        let waker = Arc::new(Waker::new().unwrap());
        poller
            .add(waker.raw_fd(), 7, Interest::READABLE.level())
            .unwrap();
        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake().unwrap();
        });
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        waker.drain();
        handle.join().unwrap();
        // Drained: the next wait times out instead of spinning on the
        // level-triggered registration.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn edge_triggered_socket_reports_one_transition() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new(8).unwrap();
        poller
            .add(server.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        client.write_all(b"hello").unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        // Without reading the data, an edge-triggered fd stays silent: no
        // new transition, no event (this is the property that makes the
        // loop O(ready), and the trap the DESIGN doc documents).
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty(), "edge must not re-fire without a drain");
    }

    #[test]
    fn closed_peer_is_reported_as_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let mut poller = Poller::new(8).unwrap();
        poller.add(server.as_raw_fd(), 9, Interest::DUPLEX).unwrap();
        drop(client);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.closed));
    }
}
