//! # pfr-net
//!
//! Std-only event-driven networking primitives for the serving tiers — the
//! readiness reactor that decouples *connection count* from *thread count*.
//! Before this crate, every idle client cost one OS thread in `pfr-serve`'s
//! front end and every scatter sub-batch cost one thread in `pfr-router`;
//! with it, a single reactor thread multiplexes thousands of sockets.
//!
//! The crate follows the mio/Noria idiom — a readiness poller driving
//! non-blocking connection state machines — but is built from raw
//! `extern "C"` bindings (no external crates, matching the workspace's
//! offline shim policy):
//!
//! * [`sys`] — the FFI floor: `epoll_create1`/`epoll_ctl`/`epoll_wait`,
//!   `eventfd`, and non-blocking `socket`/`connect`. Every `unsafe` block
//!   of the crate lives here.
//! * [`Poller`] / [`Waker`] — safe epoll registration (edge-triggered by
//!   default) and a cross-thread eventfd wakeup.
//! * [`DeadlineWheel`] — O(1) arm/cancel hashed timer wheel for io and
//!   connect deadlines.
//! * [`LineConn`] — the non-blocking line-protocol connection state
//!   machine: read-accumulate / parse / write-drain with backpressure,
//!   yielding identical frames no matter how reads are split across
//!   readiness events (property-tested). Besides `\n`-delimited lines it
//!   frames counted payloads ([`Frame::Payload`]) for verbs like `PUSH`
//!   that ship binary-ish bodies after a header line.
//! * [`ClientDriver`] — a reactor thread multiplexing outbound
//!   line-protocol bursts through one frame-based submission core: every
//!   operation resolves a [`Ticket`] (poll / block / block-with-deadline)
//!   or lands tagged on a shared [`CompletionQueue`], and operations to
//!   the same address pipeline onto shared connections — one caller
//!   thread drives thousands of in-flight requests, spawning zero
//!   threads.
//! * [`LoopStats`] — std-only per-event-loop health counters (time spent
//!   blocked in `epoll_wait`, events per wakeup, armed wheel depth) that
//!   the observability tier exposes as gauges.
//!
//! `pfr-serve` builds its event-driven front end from the first four;
//! `pfr-router` routes its backend traffic through the last. Both tiers
//! keep their thread-per-connection paths selectable so the two
//! architectures stay differential-testable against each other.
//!
//! See `DESIGN.md` in this crate for the reactor architecture, the
//! edge-vs-level argument and the safety inventory of the FFI layer.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod line;
pub mod poller;
pub mod stats;
pub mod sys;
pub mod wheel;

pub use client::{BurstResult, ClientConfig, ClientDriver, CompletionQueue, Ticket};
pub use line::{FillOutcome, FlushOutcome, Frame, LineConn};
pub use poller::{Event, Interest, Poller, Waker};
pub use stats::LoopStats;
pub use wheel::DeadlineWheel;
