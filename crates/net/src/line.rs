//! The non-blocking line-protocol connection state machine: byte-stream in,
//! complete `\n`-delimited frames out, plus a buffered write side with
//! backpressure accounting.
//!
//! [`LineConn`] is deliberately io-agnostic — `fill` takes any `Read`,
//! `flush_into` any `Write` — so the state machine can be driven by a real
//! non-blocking socket in the reactors *and* by synthetic readers in tests.
//! Its central invariant, which the workspace property test
//! (`tests/net_properties.rs`) pins down: **the sequence of extracted
//! frames depends only on the byte stream, never on how reads were split
//! across readiness events.** A request arriving one byte per `fill` and a
//! request arriving in one 64 KiB slab parse identically — TCP makes no
//! framing promises, so the parser must make its own.
//!
//! Besides `\n`-delimited lines the state machine understands **counted
//! payload frames**: after a header line announces `n` payload bytes (the
//! serve protocol's `PUSH <name> <nbytes>`), the caller switches the
//! connection into payload mode with [`LineConn::expect_payload`] and the
//! next `n` buffered bytes come back as one [`Frame::Payload`] — newlines
//! inside the payload are data, not frame boundaries. The chunking
//! invariance holds for payload frames too.

use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// Outcome of one [`LineConn::fill`] drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// Bytes appended to the inbound buffer.
    pub bytes: usize,
    /// The peer closed its write side (EOF was observed).
    pub eof: bool,
}

/// Outcome of one [`LineConn::flush_into`] drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Bytes written out.
    pub bytes: usize,
    /// The outbound buffer is now empty.
    pub drained: bool,
}

/// One parsed inbound frame: a protocol line, or the counted payload a
/// preceding header line announced (see [`LineConn::expect_payload`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A `\n`-delimited line, `\r` stripped (the default framing).
    Line(String),
    /// Exactly the announced number of raw payload bytes.
    Payload(Vec<u8>),
}

/// A non-blocking line-protocol connection: read-accumulate / parse /
/// write-drain, with explicit backpressure signals for the event loop.
#[derive(Debug)]
pub struct LineConn {
    inbuf: Vec<u8>,
    /// Start of unconsumed bytes in `inbuf` (compacted lazily).
    consumed: usize,
    outbuf: VecDeque<u8>,
    max_line: usize,
    /// Bytes of counted payload still owed before line framing resumes
    /// (0 = line mode).
    payload_due: usize,
}

impl LineConn {
    /// A fresh connection state machine; a line longer than `max_line`
    /// bytes is a protocol violation surfaced as `InvalidData`.
    pub fn new(max_line: usize) -> LineConn {
        LineConn {
            inbuf: Vec::new(),
            consumed: 0,
            outbuf: VecDeque::new(),
            max_line: max_line.max(16),
            payload_due: 0,
        }
    }

    /// Reads from `src` until it would block (or EOF), accumulating into
    /// the inbound buffer. Call on every readable edge — edge-triggered
    /// delivery requires draining to `WouldBlock`, or the edge never
    /// re-fires. Errors other than `WouldBlock`/`Interrupted` propagate.
    pub fn fill(&mut self, src: &mut impl Read) -> io::Result<FillOutcome> {
        // Stack scratch, not per-connection storage: idle connections cost
        // only their (usually empty) buffers, which is the whole point of
        // replacing thread-per-connection.
        let mut chunk = [0u8; 4096];
        let mut total = 0;
        loop {
            match src.read(&mut chunk) {
                Ok(0) => {
                    return Ok(FillOutcome {
                        bytes: total,
                        eof: true,
                    })
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    total += n;
                    if self.inbuf.len() - self.consumed > self.max_line + self.payload_due {
                        // Guard before parse: a peer streaming an unbounded
                        // line must not grow the buffer without limit. Bytes
                        // owed to a counted payload are exempt — only the
                        // line bytes past it are newline-bounded.
                        if !self.inbuf[self.consumed + self.payload_due..].contains(&b'\n') {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "line exceeds the protocol maximum",
                            ));
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(FillOutcome {
                        bytes: total,
                        eof: false,
                    })
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn buffered_slice(&self) -> &[u8] {
        &self.inbuf[self.consumed..]
    }

    /// Extracts the next complete line frame: the bytes up to (excluding)
    /// the next `\n`, with a trailing `\r` stripped. Returns `None` until a
    /// full line has accumulated, **or while a counted payload is owed**
    /// (payload bytes must never be misparsed as lines — drain them with
    /// [`LineConn::next_frame`] first). Non-UTF-8 bytes are replaced (the
    /// protocol is ASCII; a lossy decode keeps garbage inspectable).
    pub fn next_line(&mut self) -> Option<String> {
        if self.payload_due > 0 {
            return None;
        }
        let rel = self.buffered_slice().iter().position(|&b| b == b'\n')?;
        let end = self.consumed + rel;
        let mut frame = &self.inbuf[self.consumed..end];
        if frame.last() == Some(&b'\r') {
            frame = &frame[..frame.len() - 1];
        }
        let line = String::from_utf8_lossy(frame).into_owned();
        self.consumed = end + 1;
        self.maybe_compact();
        Some(line)
    }

    /// Switches the connection into payload mode: the next `nbytes`
    /// buffered bytes are one counted payload frame, not lines. Call after
    /// parsing a header line that announces a payload; until the payload is
    /// fully buffered and extracted, `next_line` yields nothing.
    pub fn expect_payload(&mut self, nbytes: usize) {
        self.payload_due = nbytes;
    }

    /// Extracts the next frame under the current mode: a counted payload
    /// once its announced bytes have accumulated, otherwise a line. The
    /// frame sequence is invariant under read chunking, exactly like
    /// [`LineConn::next_line`].
    pub fn next_frame(&mut self) -> Option<Frame> {
        if self.payload_due > 0 {
            if self.buffered_slice().len() < self.payload_due {
                return None;
            }
            let end = self.consumed + self.payload_due;
            let payload = self.inbuf[self.consumed..end].to_vec();
            self.consumed = end;
            self.payload_due = 0;
            self.maybe_compact();
            return Some(Frame::Payload(payload));
        }
        self.next_line().map(Frame::Line)
    }

    /// Compacts the inbound buffer once the dead prefix dominates, keeping
    /// amortized O(1) parsing over long sessions.
    fn maybe_compact(&mut self) {
        if self.consumed > 4096 && self.consumed * 2 > self.inbuf.len() {
            self.inbuf.drain(..self.consumed);
            self.consumed = 0;
        }
    }

    /// Bytes accumulated but not yet parsed into a frame.
    pub fn pending_in(&self) -> usize {
        self.inbuf.len() - self.consumed
    }

    /// Queues `line` (a newline is appended) for writing.
    pub fn enqueue_line(&mut self, line: &str) {
        self.outbuf.extend(line.as_bytes());
        self.outbuf.push_back(b'\n');
    }

    /// Queues raw bytes for writing.
    pub fn enqueue_bytes(&mut self, bytes: &[u8]) {
        self.outbuf.extend(bytes);
    }

    /// Writes buffered output to `dst` until drained or it would block.
    /// Call after enqueuing and on every writable edge; a `WouldBlock`
    /// leaves the rest buffered for the next edge (which, edge-triggered,
    /// arrives when the kernel buffer empties — guaranteed because the
    /// short write proves it was full).
    pub fn flush_into(&mut self, dst: &mut impl Write) -> io::Result<FlushOutcome> {
        let mut total = 0;
        while !self.outbuf.is_empty() {
            let (front, _) = self.outbuf.as_slices();
            match dst.write(front) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer cannot accept more bytes",
                    ))
                }
                Ok(n) => {
                    self.outbuf.drain(..n);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(FlushOutcome {
                        bytes: total,
                        drained: false,
                    })
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(FlushOutcome {
            bytes: total,
            drained: true,
        })
    }

    /// Bytes queued for writing but not yet accepted by the socket — the
    /// backpressure signal. An event loop should stop *parsing* (not
    /// reading) for a connection whose pending output exceeds its high
    /// watermark, so one slow reader cannot balloon server memory.
    pub fn pending_out(&self) -> usize {
        self.outbuf.len()
    }

    /// Whether buffered output is waiting on a writable edge.
    pub fn wants_write(&self) -> bool {
        !self.outbuf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that yields a fixed byte stream in caller-chosen chunk
    /// sizes, with a `WouldBlock` after every chunk (like a socket).
    struct Chunked {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        ready: bool,
    }

    impl Chunked {
        fn new(data: &[u8], chunk: usize) -> Chunked {
            Chunked {
                data: data.to_vec(),
                pos: 0,
                chunk: chunk.max(1),
                ready: true,
            }
        }
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::ErrorKind::WouldBlock.into());
            }
            if self.pos == self.data.len() {
                return Ok(0);
            }
            let n = self.chunk.min(self.data.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            self.ready = false;
            Ok(n)
        }
    }

    fn frames(data: &[u8], chunk: usize) -> Vec<String> {
        let mut conn = LineConn::new(1 << 20);
        let mut src = Chunked::new(data, chunk);
        let mut out = Vec::new();
        loop {
            let outcome = conn.fill(&mut src).unwrap();
            while let Some(line) = conn.next_line() {
                out.push(line);
            }
            if outcome.eof {
                return out;
            }
        }
    }

    #[test]
    fn one_byte_reads_and_whole_buffer_reads_yield_identical_frames() {
        let stream = b"SCORE m 1 2 3\r\nSTATS\n\nQUIT\n";
        let whole = frames(stream, stream.len());
        assert_eq!(whole, vec!["SCORE m 1 2 3", "STATS", "", "QUIT"]);
        for chunk in [1, 2, 3, 7, 16] {
            assert_eq!(frames(stream, chunk), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn partial_trailing_line_is_held_back() {
        let mut conn = LineConn::new(1024);
        let mut src = Chunked::new(b"HEALTH\nSCO", 64);
        conn.fill(&mut src).unwrap();
        assert_eq!(conn.next_line().as_deref(), Some("HEALTH"));
        assert_eq!(conn.next_line(), None);
        assert_eq!(conn.pending_in(), 3);
    }

    #[test]
    fn oversized_line_is_a_protocol_error() {
        let mut conn = LineConn::new(16);
        let mut src = Chunked::new(&[b'x'; 64], 64);
        assert_eq!(
            conn.fill(&mut src).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    /// A writer accepting at most `cap` bytes per call, blocking between.
    struct Throttled {
        accepted: Vec<u8>,
        cap: usize,
        ready: bool,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = self.cap.min(buf.len());
            self.accepted.extend_from_slice(&buf[..n]);
            self.ready = false;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_drain_survives_arbitrary_short_writes() {
        let mut conn = LineConn::new(1024);
        conn.enqueue_line("OK 0.25 1");
        conn.enqueue_line("OK bye");
        assert!(conn.wants_write());
        let mut dst = Throttled {
            accepted: Vec::new(),
            cap: 3,
            ready: true,
        };
        // Drive flushes as a loop of writable edges.
        while !conn.flush_into(&mut dst).unwrap().drained {}
        assert_eq!(dst.accepted, b"OK 0.25 1\nOK bye\n");
        assert_eq!(conn.pending_out(), 0);
        assert!(!conn.wants_write());
    }

    /// Drives a `PUSH`-style stream (header line, counted payload, then a
    /// trailing line) through the frame API at one chunk size.
    fn push_frames(data: &[u8], payload_len: usize, chunk: usize) -> Vec<Frame> {
        let mut conn = LineConn::new(64);
        let mut src = Chunked::new(data, chunk);
        let mut out = Vec::new();
        loop {
            let outcome = conn.fill(&mut src).unwrap();
            while let Some(frame) = conn.next_frame() {
                // The caller parses the header and announces the payload —
                // exactly what a protocol front end does.
                if matches!(&frame, Frame::Line(l) if l.starts_with("PUSH ")) {
                    conn.expect_payload(payload_len);
                }
                out.push(frame);
            }
            if outcome.eof {
                return out;
            }
        }
    }

    #[test]
    fn counted_payloads_pass_through_whatever_the_read_chunking() {
        // The payload contains newlines and exceeds max_line (64): both
        // must be invisible to the framing while the payload is owed.
        let payload: Vec<u8> = (0..200u8)
            .map(|i| if i % 7 == 0 { b'\n' } else { i })
            .collect();
        let mut stream = b"PUSH model 200\n".to_vec();
        stream.extend_from_slice(&payload);
        stream.extend_from_slice(b"STATS\n");
        let whole = push_frames(&stream, payload.len(), stream.len());
        assert_eq!(
            whole,
            vec![
                Frame::Line("PUSH model 200".to_string()),
                Frame::Payload(payload.clone()),
                Frame::Line("STATS".to_string()),
            ]
        );
        for chunk in [1, 2, 3, 7, 16, 64] {
            assert_eq!(
                push_frames(&stream, payload.len(), chunk),
                whole,
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn next_line_is_held_back_while_a_payload_is_owed() {
        let mut conn = LineConn::new(1024);
        let mut src = Chunked::new(b"header\nPAYLOADBYTES\nafter\n", 64);
        loop {
            if conn.fill(&mut src).unwrap().eof {
                break;
            }
        }
        assert_eq!(conn.next_line().as_deref(), Some("header"));
        conn.expect_payload(12);
        // The payload contains a newline, but line extraction must wait.
        assert_eq!(conn.next_line(), None);
        assert_eq!(
            conn.next_frame(),
            Some(Frame::Payload(b"PAYLOADBYTES".to_vec()))
        );
        // The newline right after the payload terminates an empty line;
        // then normal framing resumes.
        assert_eq!(conn.next_frame(), Some(Frame::Line(String::new())));
        assert_eq!(conn.next_frame(), Some(Frame::Line("after".to_string())));
    }

    #[test]
    fn compaction_keeps_long_sessions_bounded() {
        let mut conn = LineConn::new(1024);
        for i in 0..10_000 {
            let mut src = Chunked::new(format!("PING {i}\n").as_bytes(), 64);
            loop {
                if conn.fill(&mut src).unwrap().eof {
                    break;
                }
            }
            assert_eq!(conn.next_line(), Some(format!("PING {i}")));
        }
        assert!(
            conn.inbuf.len() < 64 * 1024,
            "inbuf grew to {} bytes over a long session",
            conn.inbuf.len()
        );
    }
}
