//! Event-loop health counters: how long a reactor sleeps in `epoll_wait`,
//! how many events each wakeup delivers, and how many deadlines its wheel
//! is carrying.
//!
//! The struct is std-only (plain relaxed atomics) so this crate stays
//! dependency-free; the observability tier wraps the readers in gauges.
//! Every field is written by exactly one reactor thread and read by
//! whoever renders metrics, so relaxed ordering is sufficient — a scrape
//! sees some recent value of each counter, which is all a gauge promises.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters one event-loop thread updates every iteration.
#[derive(Debug, Default)]
pub struct LoopStats {
    polls: AtomicU64,
    wait_ns: AtomicU64,
    last_ready: AtomicU64,
    wheel_depth: AtomicU64,
}

impl LoopStats {
    /// An all-zero stats block.
    pub fn new() -> LoopStats {
        LoopStats::default()
    }

    /// Records one `epoll_wait` return: how long the call blocked and how
    /// many readiness events it delivered.
    pub fn record_poll(&self, waited: Duration, ready: usize) {
        self.polls.fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX);
        self.wait_ns.fetch_add(ns, Ordering::Relaxed);
        self.last_ready.store(ready as u64, Ordering::Relaxed);
    }

    /// Publishes the number of deadlines currently armed on the loop's
    /// wheel (call after arming/advancing).
    pub fn set_wheel_depth(&self, depth: usize) {
        self.wheel_depth.store(depth as u64, Ordering::Relaxed);
    }

    /// Total `epoll_wait` calls made.
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// Total nanoseconds spent blocked in `epoll_wait`.
    pub fn wait_ns(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }

    /// Readiness events delivered by the most recent wakeup.
    pub fn last_ready(&self) -> u64 {
        self.last_ready.load(Ordering::Relaxed)
    }

    /// Deadlines armed on the wheel as of the last publish.
    pub fn wheel_depth(&self) -> u64 {
        self.wheel_depth.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let stats = LoopStats::new();
        stats.record_poll(Duration::from_nanos(500), 3);
        stats.record_poll(Duration::from_nanos(250), 1);
        assert_eq!(stats.polls(), 2);
        assert_eq!(stats.wait_ns(), 750);
        assert_eq!(stats.last_ready(), 1);
        stats.set_wheel_depth(7);
        stats.set_wheel_depth(4);
        assert_eq!(stats.wheel_depth(), 4);
    }
}
