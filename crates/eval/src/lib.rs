//! # pfr-eval
//!
//! Experiment harness for the Pairwise Fair Representations (PFR)
//! reproduction. It wires the substrates together into the paper's
//! evaluation pipeline (Section 4):
//!
//! 1. generate / load a dataset ([`pipeline::DatasetSpec`]),
//! 2. split into train and test, standardize on the training statistics,
//! 3. build the similarity graph `WX` and the fairness graph `WF`,
//! 4. fit every representation method (Original, iFair, LFR, PFR — plus
//!    their `+` augmented variants on the real datasets),
//! 5. train an out-of-the-box logistic regression on each representation,
//! 6. score utility (AUC), individual fairness (consistency w.r.t. `WX` and
//!    `WF`) and group fairness (positive rates, FPR/FNR) on the test split,
//!    optionally post-processing with Hardt et al. equalized odds.
//!
//! Every table and figure of the paper has a driver in [`experiments`]; the
//! `pfr-eval` binary exposes them on the command line and `pfr-bench` wraps
//! them in Criterion benches. `EXPERIMENTS.md` records the measured numbers
//! next to the paper's.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod error;
pub mod experiments;
pub mod gridsearch;
pub mod methods;
pub mod pipeline;
pub mod report;

pub use error::EvalError;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, EvalError>;
