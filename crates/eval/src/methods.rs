//! The method registry: every representation learner the paper compares,
//! behind the uniform [`RepresentationMethod`] trait, plus the PFR adapter
//! that supplies the fairness graph at fit time.

use crate::pipeline::{evaluate_representation, Evaluation, InputSpace, PreparedExperiment};
use crate::Result;
use pfr_baselines::{
    FitContext, IFair, IFairConfig, Lfr, LfrConfig, OriginalRepresentation, Representation,
    RepresentationMethod,
};
use pfr_core::{Pfr, PfrConfig};
use pfr_graph::SparseGraph;
use pfr_linalg::Matrix;

/// PFR wrapped as a [`RepresentationMethod`]. The fairness graph (over the
/// training individuals, aligned with the rows of the training matrix) is
/// captured at construction time because the baseline trait has no slot for
/// it — exactly mirroring how PFR consumes strictly more side information
/// than the baselines.
pub struct PfrMethod {
    config: PfrConfig,
    wf_train: SparseGraph,
}

impl PfrMethod {
    /// Creates the adapter from a PFR configuration and the training-split
    /// fairness graph.
    pub fn new(config: PfrConfig, wf_train: SparseGraph) -> Self {
        PfrMethod { config, wf_train }
    }
}

struct FittedPfrAdapter {
    model: pfr_core::PfrModel,
}

impl Representation for FittedPfrAdapter {
    fn transform(&self, x: &Matrix) -> pfr_baselines::Result<Matrix> {
        self.model
            .transform(x)
            .map_err(|e| pfr_baselines::BaselineError::Optimization(e.to_string()))
    }

    fn output_dim(&self) -> usize {
        self.model.dim()
    }
}

impl RepresentationMethod for PfrMethod {
    fn name(&self) -> String {
        "PFR".to_string()
    }

    fn fit(&self, ctx: &FitContext<'_>) -> pfr_baselines::Result<Box<dyn Representation>> {
        ctx.validate()?;
        let model = Pfr::new(self.config.clone())
            .fit(ctx.x, ctx.wx, &self.wf_train)
            .map_err(|e| pfr_baselines::BaselineError::Optimization(e.to_string()))?;
        Ok(Box::new(FittedPfrAdapter { model }))
    }
}

/// Default PFR configuration for a dataset with `m` (standardized) features:
/// keep most of the input dimensionality but leave room for the fairness
/// constraints to reshape the space.
pub fn default_pfr_config(num_features: usize, gamma: f64) -> PfrConfig {
    PfrConfig {
        gamma,
        dim: num_features.saturating_sub(1).max(1).min(num_features),
        ..PfrConfig::default()
    }
}

/// Default iFair configuration used by the experiments (matching the spirit
/// of the original paper's settings: K = 10 prototypes).
pub fn default_ifair_config(fast: bool) -> IFairConfig {
    IFairConfig {
        num_prototypes: 10,
        max_iterations: if fast { 100 } else { 300 },
        ..IFairConfig::default()
    }
}

/// Default LFR configuration used by the experiments (Zemel et al. defaults:
/// K = 10, A_x = 0.01, A_y = 1, A_z = 0.5).
pub fn default_lfr_config(fast: bool) -> LfrConfig {
    LfrConfig {
        num_prototypes: 10,
        max_iterations: if fast { 100 } else { 300 },
        ..LfrConfig::default()
    }
}

/// Fits a representation method on the (standardized) training features of
/// the requested input space and evaluates the downstream classifier on the
/// matching test features.
pub fn run_method(
    method: &dyn RepresentationMethod,
    label: &str,
    exp: &PreparedExperiment,
    space: InputSpace,
) -> Result<Evaluation> {
    let (x_train, x_test) = exp.matrices(space);
    let ctx = FitContext {
        x: x_train,
        labels: exp.train.labels(),
        groups: exp.train.groups(),
        wx: &exp.wx_train,
    };
    let fitted = method.fit(&ctx)?;
    let z_train = fitted.transform(x_train)?;
    let z_test = fitted.transform(x_test)?;
    evaluate_representation(label, &z_train, &z_test, exp)
}

/// One entry of the method line-up: display label, the method, and the input
/// space it is fitted on.
pub type LineupEntry = (String, Box<dyn RepresentationMethod>, InputSpace);

/// Builds the standard method line-up for an experiment.
///
/// * The Original baseline always sees the masked features; the
///   representation learners (iFair, LFR, PFR) see the protected attribute
///   as well (the paper masks it only for Original and `WX`).
/// * On the synthetic dataset the paper compares the plain methods
///   (`augmented = false`); on Crime and Compas every baseline additionally
///   gets the fairness side-information as an extra feature (`+` suffix)
///   while PFR uses the fairness graph directly.
pub fn standard_lineup(
    exp: &PreparedExperiment,
    gamma: f64,
    augmented: bool,
    fast: bool,
) -> Vec<LineupEntry> {
    let suffix = if augmented { " +" } else { "" };
    let (original_space, learner_space) = if augmented {
        (InputSpace::MaskedAugmented, InputSpace::ProtectedAugmented)
    } else {
        (InputSpace::Masked, InputSpace::Protected)
    };
    let pfr_space = InputSpace::Protected;
    let pfr_features = exp.matrices(pfr_space).0.cols();
    let mut lineup: Vec<LineupEntry> = Vec::new();
    lineup.push((
        format!("Original{suffix}"),
        Box::new(OriginalRepresentation),
        original_space,
    ));
    lineup.push((
        format!("iFair{suffix}"),
        Box::new(IFair::new(default_ifair_config(fast))),
        learner_space,
    ));
    lineup.push((
        format!("LFR{suffix}"),
        Box::new(Lfr::new(default_lfr_config(fast))),
        learner_space,
    ));
    lineup.push((
        "PFR".to_string(),
        Box::new(PfrMethod::new(
            default_pfr_config(pfr_features, gamma),
            exp.wf_train.clone(),
        )),
        pfr_space,
    ));
    lineup
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{prepare, DatasetSpec, PipelineConfig};

    #[test]
    fn pfr_method_fits_through_the_trait() {
        let exp = prepare(DatasetSpec::Synthetic, &PipelineConfig::fast(5)).unwrap();
        let dims = exp.x_train_prot.cols();
        let method = PfrMethod::new(default_pfr_config(dims, 0.5), exp.wf_train.clone());
        assert_eq!(method.name(), "PFR");
        let eval = run_method(&method, "PFR", &exp, InputSpace::Protected).unwrap();
        assert!(eval.auc > 0.5);
        assert_eq!(eval.method, "PFR");
    }

    #[test]
    fn standard_lineup_contains_all_methods() {
        let exp = prepare(DatasetSpec::Synthetic, &PipelineConfig::fast(6)).unwrap();
        let lineup = standard_lineup(&exp, 0.5, false, true);
        let names: Vec<&str> = lineup.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Original", "iFair", "LFR", "PFR"]);
        // Original is masked, the learners see the protected attribute.
        assert_eq!(lineup[0].2, InputSpace::Masked);
        assert_eq!(lineup[1].2, InputSpace::Protected);
        let augmented = standard_lineup(&exp, 0.5, true, true);
        assert!(augmented.iter().any(|(n, _, _)| n == "Original +"));
        assert!(augmented.iter().any(|(n, _, _)| n == "PFR"));
        assert_eq!(augmented[1].2, InputSpace::ProtectedAugmented);
    }

    #[test]
    fn default_pfr_config_dimensions() {
        assert_eq!(default_pfr_config(2, 0.3).dim, 1);
        assert_eq!(default_pfr_config(10, 0.3).dim, 9);
        assert_eq!(default_pfr_config(1, 0.3).dim, 1);
    }

    #[test]
    fn augmented_run_uses_the_extra_column() {
        let exp = prepare(DatasetSpec::Crime, &PipelineConfig::fast(8)).unwrap();
        let eval = run_method(
            &OriginalRepresentation,
            "Original +",
            &exp,
            InputSpace::MaskedAugmented,
        )
        .unwrap();
        assert!(eval.auc > 0.4);
    }
}
