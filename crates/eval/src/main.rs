//! Command-line driver that regenerates every table and figure of the paper.
//!
//! ```text
//! pfr-eval [--fast] [--seed N] <experiment> [<experiment> ...]
//! pfr-eval --all [--fast] [--seed N]
//! pfr-eval --list
//! ```
//!
//! Experiments: `table1`, `figure1` … `figure10`, `ablation-sparsity`,
//! `ablation-kernel`, `ablation-quantiles`.

use pfr_eval::experiments::{run_by_name, EXPERIMENT_NAMES};
use std::process::ExitCode;

fn print_usage() {
    eprintln!("usage: pfr-eval [--fast] [--seed N] (--all | --list | <experiment>...)");
    eprintln!("experiments: {}", EXPERIMENT_NAMES.join(", "));
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    let mut fast = false;
    let mut seed = 42u64;
    let mut run_all = false;
    let mut list = false;
    let mut experiments: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--all" => run_all = true,
            "--list" => list = true,
            "--seed" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed requires an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                print_usage();
                return ExitCode::FAILURE;
            }
            other => experiments.push(other.to_string()),
        }
    }

    if list {
        for name in EXPERIMENT_NAMES {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    if run_all {
        experiments = EXPERIMENT_NAMES.iter().map(|s| s.to_string()).collect();
    }
    if experiments.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    for name in &experiments {
        let started = std::time::Instant::now();
        match run_by_name(name, fast, seed) {
            Ok(report) => {
                println!("{report}");
                println!("[{name} finished in {:.1?}]", started.elapsed());
                println!();
            }
            Err(err) => {
                eprintln!("experiment {name} failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
