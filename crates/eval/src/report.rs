//! Plain-text table rendering for the experiment drivers.
//!
//! Experiments return structured rows; this module turns them into the
//! aligned ASCII tables printed by the `pfr-eval` binary (and captured in
//! `EXPERIMENTS.md`).

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of preformatted cells. Rows shorter than the header are
    /// padded with empty cells; longer rows are allowed (their extra cells
    /// are printed without a header).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let num_cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; num_cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let padded: Vec<String> = (0..num_cols)
                .map(|i| {
                    let cell = cells.get(i).map(String::as_str).unwrap_or("");
                    format!("{cell:<width$}", width = widths[i])
                })
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with three decimals (the precision the paper's figures can
/// be read at).
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats an optional float, printing `n/a` for `None`.
pub fn fmt3_opt(v: Option<f64>) -> String {
    v.map(fmt3).unwrap_or_else(|| "n/a".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["method", "auc"]);
        t.add_row(vec!["Original".to_string(), fmt3(0.91234)]);
        t.add_row(vec!["PFR".to_string(), fmt3(0.5)]);
        let s = t.render();
        assert!(s.contains("| method   | auc   |"));
        assert!(s.contains("| Original | 0.912 |"));
        assert!(s.contains("| PFR      | 0.500 |"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new(&["a"]);
        t.add_row(vec!["x".to_string(), "extra".to_string()]);
        t.add_row(vec![]);
        let s = t.render();
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.123456), "0.123");
        assert_eq!(fmt3_opt(None), "n/a");
        assert_eq!(fmt3_opt(Some(1.0)), "1.000");
    }
}
