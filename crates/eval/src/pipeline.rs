//! The end-to-end experimental pipeline shared by every experiment.

use crate::error::EvalError;
use crate::Result;
use pfr_data::{compas, crime, split, synthetic, Dataset};
use pfr_graph::{fairness, KnnGraphBuilder, SparseGraph};
use pfr_linalg::stats::Standardizer;
use pfr_linalg::Matrix;
use pfr_metrics::{consistency, roc_auc, GroupFairnessReport};
use pfr_opt::{LogisticRegression, LogisticRegressionConfig};

/// Which dataset an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSpec {
    /// The paper's synthetic US-admissions data (Section 4.2).
    Synthetic,
    /// The Crime & Communities-like data (Section 4.3).
    Crime,
    /// The COMPAS-like data (Section 4.3).
    Compas,
}

impl DatasetSpec {
    /// Human-readable name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetSpec::Synthetic => "Synthetic",
            DatasetSpec::Crime => "Crime",
            DatasetSpec::Compas => "Compas",
        }
    }

    /// Generates the dataset. `fast` produces a smaller instance with the
    /// same group proportions and base rates (used by tests and benches).
    pub fn generate(&self, seed: u64, fast: bool) -> Result<Dataset> {
        let ds = match self {
            DatasetSpec::Synthetic => {
                if fast {
                    synthetic::generate(&synthetic::SyntheticConfig {
                        n_per_group: 100,
                        seed,
                        ..synthetic::SyntheticConfig::default()
                    })?
                } else {
                    synthetic::generate_default(seed)?
                }
            }
            DatasetSpec::Crime => {
                if fast {
                    crime::generate(&crime::small_config(seed))?
                } else {
                    crime::generate_default(seed)?
                }
            }
            DatasetSpec::Compas => {
                if fast {
                    compas::generate(&compas::small_config(seed))?
                } else {
                    compas::generate_default(seed)?
                }
            }
        };
        Ok(ds)
    }

    /// Builds the fairness graph `WF` for a (sub-)population of this dataset,
    /// using the elicitation model the paper uses for it:
    ///
    /// * Synthetic — between-group quantile graph over the ground-truth
    ///   deservingness scores (Section 4.2.1).
    /// * Crime — equivalence classes of rounded mean resident ratings
    ///   (Section 4.3.1 / Definition 1).
    /// * Compas — between-group quantile graph over the within-group decile
    ///   scores (Section 4.3.1 / Definitions 2–3).
    pub fn build_fairness_graph(&self, dataset: &Dataset, quantiles: usize) -> Result<SparseGraph> {
        let n = dataset.len();
        match self {
            DatasetSpec::Synthetic | DatasetSpec::Compas => {
                // Only individuals with a within-group score participate.
                let mut groups = Vec::with_capacity(n);
                let mut scores = Vec::with_capacity(n);
                let mut index_map = Vec::with_capacity(n);
                for i in 0..n {
                    if let Some(s) = dataset.side_information()[i] {
                        groups.push(dataset.groups()[i]);
                        scores.push(s);
                        index_map.push(i);
                    }
                }
                let sub = fairness::between_group_quantile_graph(&groups, &scores, quantiles)?;
                // Re-embed into the full index space.
                let mut full = SparseGraph::new(n);
                for e in sub.edges() {
                    full.add_edge(index_map[e.i as usize], index_map[e.j as usize], e.weight)?;
                }
                Ok(full)
            }
            DatasetSpec::Crime => {
                let ratings: Vec<Option<f64>> = dataset.side_information().to_vec();
                fairness::rating_equivalence_graph(&ratings).map_err(EvalError::from)
            }
        }
    }
}

/// Everything an experiment needs, prepared once per dataset/seed.
pub struct PreparedExperiment {
    /// Which dataset this is.
    pub spec: DatasetSpec,
    /// The full dataset (before splitting).
    pub full: Dataset,
    /// Training split (original features).
    pub train: Dataset,
    /// Test split (original features).
    pub test: Dataset,
    /// Standardized training features with the protected attribute masked
    /// (the Original baseline's input, also used to build `WX`).
    pub x_train: Matrix,
    /// Standardized masked test features (training statistics).
    pub x_test: Matrix,
    /// Standardized *augmented* masked training features (side information
    /// added as a feature, for the `Original +` baseline).
    pub x_train_aug: Matrix,
    /// Standardized augmented masked test features (side information imputed
    /// with the training mean — it is not observable at decision time).
    pub x_test_aug: Matrix,
    /// Standardized training features *including* the protected attribute —
    /// the input of the representation learners (iFair, LFR, PFR). The paper
    /// masks the protected attribute only for the Original baseline and the
    /// `WX` graph.
    pub x_train_prot: Matrix,
    /// Standardized test features including the protected attribute.
    pub x_test_prot: Matrix,
    /// Standardized training features including the protected attribute and
    /// the side-information column (the `iFair +` / `LFR +` input).
    pub x_train_prot_aug: Matrix,
    /// Standardized test features including the protected attribute, with the
    /// side-information column imputed by the training mean.
    pub x_test_prot_aug: Matrix,
    /// k-NN similarity graph over the standardized training features.
    pub wx_train: SparseGraph,
    /// k-NN similarity graph over the standardized test features
    /// (evaluation only).
    pub wx_test: SparseGraph,
    /// Fairness graph over the training individuals.
    pub wf_train: SparseGraph,
    /// Fairness graph over the test individuals (evaluation only).
    pub wf_test: SparseGraph,
}

/// Pipeline parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Fraction of records held out for testing.
    pub test_fraction: f64,
    /// Number of nearest neighbours for `WX`.
    pub knn_k: usize,
    /// Number of quantiles for the between-group fairness graphs.
    pub quantiles: usize,
    /// RNG seed (dataset generation and splitting).
    pub seed: u64,
    /// Use reduced dataset sizes (tests / benches).
    pub fast: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            test_fraction: 0.3,
            knn_k: 10,
            quantiles: 10,
            seed: 42,
            fast: false,
        }
    }
}

impl PipelineConfig {
    /// A configuration suitable for unit tests and benches: small datasets,
    /// small graphs.
    pub fn fast(seed: u64) -> Self {
        PipelineConfig {
            fast: true,
            knn_k: 5,
            quantiles: 5,
            seed,
            ..PipelineConfig::default()
        }
    }
}

/// Prepares a full experiment: dataset, split, standardization and graphs.
pub fn prepare(spec: DatasetSpec, config: &PipelineConfig) -> Result<PreparedExperiment> {
    let full = spec.generate(config.seed, config.fast)?;
    let split = split::train_test_split(&full, config.test_fraction, config.seed)?;
    let train = full.subset(&split.train)?;
    let test = full.subset(&split.test)?;

    // Standardize on training statistics only.
    let (standardizer, x_train) = Standardizer::fit_transform(train.features())?;
    let x_test = standardizer.transform(test.features())?;

    // Variants including the protected attribute (the representation
    // learners' input space).
    let (train_prot_raw, _) = train.features_with_protected()?;
    let (test_prot_raw, _) = test.features_with_protected()?;
    let (prot_standardizer, x_train_prot) = Standardizer::fit_transform(&train_prot_raw)?;
    let x_test_prot = prot_standardizer.transform(&test_prot_raw)?;

    // Augmented variants: the side information becomes an extra column. At
    // training time the true values are used; at test time the column is
    // imputed with the training mean (the paper stresses the side
    // information is unavailable for unseen individuals).
    let train_aug = train.with_side_information_feature()?;
    let observed: Vec<f64> = train.side_information().iter().filter_map(|&s| s).collect();
    let train_fill = if observed.is_empty() {
        0.0
    } else {
        observed.iter().sum::<f64>() / observed.len() as f64
    };
    let fill_col = Matrix::filled(test.len(), 1, train_fill);
    let test_aug_features = test.features().hstack(&fill_col)?;
    let (aug_standardizer, x_train_aug) = Standardizer::fit_transform(train_aug.features())?;
    let x_test_aug = aug_standardizer.transform(&test_aug_features)?;

    // Augmented variants with the protected attribute as well. Column order
    // is [original features…, side information, protected attribute] on both
    // splits.
    let (train_aug_prot_raw, _) = train_aug.features_with_protected()?;
    let test_group_col = Matrix::from_vec(
        test.len(),
        1,
        test.groups().iter().map(|&g| g as f64).collect(),
    )?;
    let test_aug_prot_raw = test_aug_features.hstack(&test_group_col)?;
    let (aug_prot_standardizer, x_train_prot_aug) =
        Standardizer::fit_transform(&train_aug_prot_raw)?;
    let x_test_prot_aug = aug_prot_standardizer.transform(&test_aug_prot_raw)?;

    // Similarity graphs.
    let knn = KnnGraphBuilder::new(config.knn_k.min(x_train.rows().saturating_sub(1)).max(1));
    let wx_train = knn.build(&x_train)?;
    let knn_test = KnnGraphBuilder::new(config.knn_k.min(x_test.rows().saturating_sub(1)).max(1));
    let wx_test = knn_test.build(&x_test)?;

    // Fairness graphs.
    let wf_train = spec.build_fairness_graph(&train, config.quantiles)?;
    let wf_test = spec.build_fairness_graph(&test, config.quantiles)?;

    Ok(PreparedExperiment {
        spec,
        full,
        train,
        test,
        x_train,
        x_test,
        x_train_aug,
        x_test_aug,
        x_train_prot,
        x_test_prot,
        x_train_prot_aug,
        x_test_prot_aug,
        wx_train,
        wx_test,
        wf_train,
        wf_test,
    })
}

/// Which input feature space a method is fitted and evaluated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputSpace {
    /// Protected attribute masked (the Original baseline and `WX`).
    Masked,
    /// Masked features plus the side-information column (`Original +`).
    MaskedAugmented,
    /// Features including the protected attribute (iFair, LFR, PFR).
    Protected,
    /// Protected features plus the side-information column
    /// (`iFair +`, `LFR +`).
    ProtectedAugmented,
}

impl PreparedExperiment {
    /// The train/test feature matrices for the requested input space.
    pub fn matrices(&self, space: InputSpace) -> (&Matrix, &Matrix) {
        match space {
            InputSpace::Masked => (&self.x_train, &self.x_test),
            InputSpace::MaskedAugmented => (&self.x_train_aug, &self.x_test_aug),
            InputSpace::Protected => (&self.x_train_prot, &self.x_test_prot),
            InputSpace::ProtectedAugmented => (&self.x_train_prot_aug, &self.x_test_prot_aug),
        }
    }
}

/// Scores of one method on the test split.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Method name (e.g. `"PFR"`, `"LFR+"`).
    pub method: String,
    /// AUC on the test split.
    pub auc: f64,
    /// Consistency of the hard predictions w.r.t. `WX` on the test split.
    pub consistency_wx: f64,
    /// Consistency of the hard predictions w.r.t. `WF` on the test split.
    pub consistency_wf: f64,
    /// Group-fairness report (positive rates, FPR/FNR, per-group AUC).
    pub group_report: GroupFairnessReport,
    /// Raw predicted probabilities (kept for post-processing experiments).
    pub probabilities: Vec<f64>,
    /// Hard predictions at the 0.5 threshold.
    pub predictions: Vec<u8>,
}

/// Trains the downstream logistic-regression classifier on a training
/// representation and evaluates it on the matching test representation.
pub fn evaluate_representation(
    method: impl Into<String>,
    z_train: &Matrix,
    z_test: &Matrix,
    exp: &PreparedExperiment,
) -> Result<Evaluation> {
    let mut clf = LogisticRegression::new(LogisticRegressionConfig::default());
    clf.fit(z_train, exp.train.labels())?;
    let probabilities = clf.predict_proba(z_test)?;
    let predictions: Vec<u8> = probabilities.iter().map(|&p| u8::from(p >= 0.5)).collect();
    evaluate_predictions(method, probabilities, predictions, exp)
}

/// Scores precomputed probabilities/predictions on the test split.
pub fn evaluate_predictions(
    method: impl Into<String>,
    probabilities: Vec<f64>,
    predictions: Vec<u8>,
    exp: &PreparedExperiment,
) -> Result<Evaluation> {
    let labels = exp.test.labels();
    let auc = roc_auc(labels, &probabilities)?;
    let pred_f64: Vec<f64> = predictions.iter().map(|&p| p as f64).collect();
    let consistency_wx = consistency(&exp.wx_test, &pred_f64)?;
    let consistency_wf = consistency(&exp.wf_test, &pred_f64)?;
    let group_report = GroupFairnessReport::compute(
        labels,
        &predictions,
        exp.test.groups(),
        Some(&probabilities),
    )?;
    Ok(Evaluation {
        method: method.into(),
        auc,
        consistency_wx,
        consistency_wf,
        group_report,
        probabilities,
        predictions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_synthetic_fast_pipeline() {
        let exp = prepare(DatasetSpec::Synthetic, &PipelineConfig::fast(1)).unwrap();
        assert_eq!(exp.full.len(), 200);
        assert_eq!(exp.train.len() + exp.test.len(), 200);
        assert_eq!(exp.x_train.rows(), exp.train.len());
        assert_eq!(exp.x_test.rows(), exp.test.len());
        // Augmented variants have one extra column.
        assert_eq!(exp.x_train_aug.cols(), exp.x_train.cols() + 1);
        assert_eq!(exp.x_test_aug.cols(), exp.x_test.cols() + 1);
        // Graphs cover the right populations.
        assert_eq!(exp.wx_train.num_nodes(), exp.train.len());
        assert_eq!(exp.wf_test.num_nodes(), exp.test.len());
        assert!(exp.wf_train.num_edges() > 0);
        assert!(exp.wx_train.num_edges() > 0);
    }

    #[test]
    fn fairness_graph_construction_matches_dataset_kind() {
        let crime_exp = prepare(DatasetSpec::Crime, &PipelineConfig::fast(3)).unwrap();
        // The rating graph only connects rated communities.
        assert!(crime_exp.wf_train.num_edges() > 0);
        let compas_exp = prepare(DatasetSpec::Compas, &PipelineConfig::fast(3)).unwrap();
        // Quantile graphs never connect same-group individuals.
        let groups = compas_exp.train.groups();
        for e in compas_exp.wf_train.edges() {
            assert_ne!(groups[e.i as usize], groups[e.j as usize]);
        }
    }

    #[test]
    fn evaluate_representation_produces_sane_metrics() {
        let exp = prepare(DatasetSpec::Synthetic, &PipelineConfig::fast(7)).unwrap();
        let eval = evaluate_representation("Original", &exp.x_train, &exp.x_test, &exp).unwrap();
        assert!(eval.auc > 0.5, "AUC {} should beat chance", eval.auc);
        assert!((0.0..=1.0).contains(&eval.consistency_wx));
        assert!((0.0..=1.0).contains(&eval.consistency_wf));
        assert_eq!(eval.predictions.len(), exp.test.len());
        assert_eq!(eval.group_report.per_group.len(), 2);
    }

    #[test]
    fn dataset_spec_names() {
        assert_eq!(DatasetSpec::Synthetic.name(), "Synthetic");
        assert_eq!(DatasetSpec::Crime.name(), "Crime");
        assert_eq!(DatasetSpec::Compas.name(), "Compas");
    }
}
