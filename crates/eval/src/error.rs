//! Error type for the experiment harness.

use std::fmt;

/// Errors produced while running experiments.
#[derive(Debug, Clone)]
pub enum EvalError {
    /// An invalid experiment parameter or unknown experiment name.
    InvalidParameter(String),
    /// An error from the dataset substrate.
    Data(String),
    /// An error from the graph substrate.
    Graph(String),
    /// An error from the linear-algebra substrate.
    Linalg(String),
    /// An error from a representation method or the classifier.
    Model(String),
    /// An error from the metrics crate.
    Metrics(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            EvalError::Data(msg) => write!(f, "data error: {msg}"),
            EvalError::Graph(msg) => write!(f, "graph error: {msg}"),
            EvalError::Linalg(msg) => write!(f, "linear algebra error: {msg}"),
            EvalError::Model(msg) => write!(f, "model error: {msg}"),
            EvalError::Metrics(msg) => write!(f, "metrics error: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<pfr_data::DataError> for EvalError {
    fn from(e: pfr_data::DataError) -> Self {
        EvalError::Data(e.to_string())
    }
}

impl From<pfr_graph::GraphError> for EvalError {
    fn from(e: pfr_graph::GraphError) -> Self {
        EvalError::Graph(e.to_string())
    }
}

impl From<pfr_linalg::LinalgError> for EvalError {
    fn from(e: pfr_linalg::LinalgError) -> Self {
        EvalError::Linalg(e.to_string())
    }
}

impl From<pfr_core::PfrError> for EvalError {
    fn from(e: pfr_core::PfrError) -> Self {
        EvalError::Model(e.to_string())
    }
}

impl From<pfr_baselines::BaselineError> for EvalError {
    fn from(e: pfr_baselines::BaselineError) -> Self {
        EvalError::Model(e.to_string())
    }
}

impl From<pfr_opt::OptError> for EvalError {
    fn from(e: pfr_opt::OptError) -> Self {
        EvalError::Model(e.to_string())
    }
}

impl From<pfr_metrics::MetricsError> for EvalError {
    fn from(e: pfr_metrics::MetricsError) -> Self {
        EvalError::Metrics(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: EvalError = pfr_data::DataError::InvalidParameter("boom".into()).into();
        assert!(e.to_string().contains("boom"));
        let e: EvalError = pfr_metrics::MetricsError::Undefined("one class".into()).into();
        assert!(e.to_string().contains("one class"));
    }
}
