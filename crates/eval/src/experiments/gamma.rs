//! Figures 4/7/10 — influence of the hyper-parameter γ.
//!
//! For γ ∈ {0.0, 0.1, …, 1.0} the driver fits PFR, trains the downstream
//! classifier and reports
//!
//! * consistency w.r.t. `WF` (expected to increase with γ),
//! * consistency w.r.t. `WX` (expected to decrease with γ),
//! * AUC overall and per protected group (on the synthetic data AUC improves
//!   with γ because the fairness graph agrees with the ground truth; on the
//!   real datasets the overall AUC drops while the protected group's AUC
//!   improves and the AUC gap narrows).

use crate::methods::default_pfr_config;
use crate::pipeline::{evaluate_representation, prepare, DatasetSpec, PipelineConfig};
use crate::report::{fmt3, fmt3_opt, TextTable};
use crate::Result;
use pfr_core::Pfr;

/// One row of the γ sweep.
#[derive(Debug, Clone)]
pub struct GammaRow {
    /// The γ value.
    pub gamma: f64,
    /// Consistency w.r.t. the fairness graph on the test split.
    pub consistency_wf: f64,
    /// Consistency w.r.t. the similarity graph on the test split.
    pub consistency_wx: f64,
    /// Overall AUC.
    pub auc_any: f64,
    /// AUC within the non-protected group.
    pub auc_s0: Option<f64>,
    /// AUC within the protected group.
    pub auc_s1: Option<f64>,
}

/// Results of a γ sweep on one dataset.
#[derive(Debug, Clone)]
pub struct GammaSweep {
    /// Which dataset was evaluated.
    pub spec: DatasetSpec,
    /// One row per γ value, ascending.
    pub rows: Vec<GammaRow>,
}

impl GammaSweep {
    /// Renders the sweep as a table.
    pub fn render(&self) -> String {
        let figure = match self.spec {
            DatasetSpec::Synthetic => "Figure 4",
            DatasetSpec::Crime => "Figure 7",
            DatasetSpec::Compas => "Figure 10",
        };
        let mut t = TextTable::new(&[
            "gamma",
            "Consistency (WF)",
            "Consistency (WX)",
            "AUC (any)",
            "AUC (s=0)",
            "AUC (s=1)",
        ]);
        for row in &self.rows {
            t.add_row(vec![
                format!("{:.1}", row.gamma),
                fmt3(row.consistency_wf),
                fmt3(row.consistency_wx),
                fmt3(row.auc_any),
                fmt3_opt(row.auc_s0),
                fmt3_opt(row.auc_s1),
            ]);
        }
        format!(
            "{figure}: influence of gamma on {} (PFR)\n{}",
            self.spec.name(),
            t.render()
        )
    }

    /// The row with the given γ (within 1e-9), if present.
    pub fn row(&self, gamma: f64) -> Option<&GammaRow> {
        self.rows.iter().find(|r| (r.gamma - gamma).abs() < 1e-9)
    }
}

/// Runs the γ sweep. In fast mode a coarser grid `{0, 0.25, 0.5, 0.75, 1}` is
/// used; the full mode sweeps `{0.0, 0.1, …, 1.0}` like the paper.
pub fn run(spec: DatasetSpec, fast: bool, seed: u64) -> Result<GammaSweep> {
    let config = if fast {
        PipelineConfig::fast(seed)
    } else {
        PipelineConfig {
            seed,
            ..PipelineConfig::default()
        }
    };
    let exp = prepare(spec, &config)?;
    let gammas: Vec<f64> = if fast {
        vec![0.0, 0.25, 0.5, 0.75, 1.0]
    } else {
        (0..=10).map(|i| i as f64 / 10.0).collect()
    };

    let mut rows = Vec::with_capacity(gammas.len());
    for &gamma in &gammas {
        let pfr_config = default_pfr_config(exp.x_train_prot.cols(), gamma);
        let model = Pfr::new(pfr_config).fit(&exp.x_train_prot, &exp.wx_train, &exp.wf_train)?;
        let z_train = model.transform(&exp.x_train_prot)?;
        let z_test = model.transform(&exp.x_test_prot)?;
        let eval =
            evaluate_representation(format!("PFR(gamma={gamma:.1})"), &z_train, &z_test, &exp)?;
        rows.push(GammaRow {
            gamma,
            consistency_wf: eval.consistency_wf,
            consistency_wx: eval.consistency_wx,
            auc_any: eval.auc,
            auc_s0: eval.group_report.group(0).and_then(|g| g.auc),
            auc_s1: eval.group_report.group(1).and_then(|g| g.auc),
        });
    }
    Ok(GammaSweep { spec, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_sweep_shows_the_expected_trends_on_synthetic_data() {
        let sweep = run(DatasetSpec::Synthetic, true, 31).unwrap();
        assert_eq!(sweep.rows.len(), 5);
        let first = sweep.row(0.0).unwrap();
        let last = sweep.row(1.0).unwrap();
        // Consistency w.r.t. WF should not decrease as γ grows.
        assert!(
            last.consistency_wf >= first.consistency_wf - 0.05,
            "Consistency(WF) at γ=1 ({}) should be >= γ=0 ({})",
            last.consistency_wf,
            first.consistency_wf
        );
        let rendered = sweep.render();
        assert!(rendered.contains("Figure 4"));
        assert!(rendered.contains("gamma"));
    }

    #[test]
    fn missing_row_lookup_returns_none() {
        let sweep = run(DatasetSpec::Synthetic, true, 32).unwrap();
        assert!(sweep.row(0.33).is_none());
    }
}
