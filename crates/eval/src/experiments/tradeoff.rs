//! Figures 2/5/8 (utility vs. individual fairness) and Figures 3/6/9 (group
//! fairness), which share the same fitted models.
//!
//! * Figure 2 / 5 / 8 — for every method, the test AUC and the consistency of
//!   its predictions w.r.t. `WX` and `WF`.
//! * Figure 3 / 6 / 9 — for every method (plus the Hardt et al. equalized-odds
//!   post-processing of the Original classifier), the per-group rate of
//!   positive predictions and the per-group FPR/FNR.
//!
//! On the synthetic dataset the plain baselines are used (Figure 2/3); on
//! Crime and Compas the baselines are augmented with the fairness
//! side-information as an extra feature (`+` suffix), matching Section 4.3.1.

use crate::methods::{run_method, standard_lineup};
use crate::pipeline::{
    evaluate_predictions, prepare, DatasetSpec, Evaluation, InputSpace, PipelineConfig,
    PreparedExperiment,
};
use crate::report::{fmt3, fmt3_opt, TextTable};
use crate::Result;
use pfr_baselines::hardt::HardtPostProcessor;
use pfr_baselines::{OriginalRepresentation, RepresentationMethod};

/// Results of the trade-off / group-fairness experiment on one dataset.
pub struct TradeoffResults {
    /// Which dataset was evaluated.
    pub spec: DatasetSpec,
    /// Per-method evaluations (Original, iFair, LFR, PFR and Hardt).
    pub evaluations: Vec<Evaluation>,
    /// The prepared experiment (kept for downstream inspection/tests).
    pub experiment: PreparedExperiment,
}

impl TradeoffResults {
    /// Looks up a method's evaluation by name.
    pub fn method(&self, name: &str) -> Option<&Evaluation> {
        self.evaluations.iter().find(|e| e.method == name)
    }

    /// Renders the utility vs. individual fairness table (Figures 2/5/8).
    pub fn render_tradeoff(&self) -> String {
        let figure = match self.spec {
            DatasetSpec::Synthetic => "Figure 2",
            DatasetSpec::Crime => "Figure 5",
            DatasetSpec::Compas => "Figure 8",
        };
        let mut t = TextTable::new(&["Method", "AUC", "Consistency (WX)", "Consistency (WF)"]);
        for e in &self.evaluations {
            if e.method.starts_with("Hardt") {
                continue; // the paper's trade-off bars exclude Hardt
            }
            t.add_row(vec![
                e.method.clone(),
                fmt3(e.auc),
                fmt3(e.consistency_wx),
                fmt3(e.consistency_wf),
            ]);
        }
        format!(
            "{figure}: utility vs. individual fairness on {}\n{}",
            self.spec.name(),
            t.render()
        )
    }

    /// Renders the group-fairness table (Figures 3/6/9).
    pub fn render_group_fairness(&self) -> String {
        let figure = match self.spec {
            DatasetSpec::Synthetic => "Figure 3",
            DatasetSpec::Crime => "Figure 6",
            DatasetSpec::Compas => "Figure 9",
        };
        let mut t = TextTable::new(&[
            "Method",
            "P(Y=1|s=0)",
            "P(Y=1|s=1)",
            "FPR (s=0)",
            "FPR (s=1)",
            "FNR (s=0)",
            "FNR (s=1)",
            "DP gap",
            "EqOdds gap",
        ]);
        for e in &self.evaluations {
            let g0 = e.group_report.group(0);
            let g1 = e.group_report.group(1);
            t.add_row(vec![
                e.method.clone(),
                fmt3_opt(g0.map(|g| g.positive_prediction_rate)),
                fmt3_opt(g1.map(|g| g.positive_prediction_rate)),
                fmt3_opt(g0.and_then(|g| g.false_positive_rate)),
                fmt3_opt(g1.and_then(|g| g.false_positive_rate)),
                fmt3_opt(g0.and_then(|g| g.false_negative_rate)),
                fmt3_opt(g1.and_then(|g| g.false_negative_rate)),
                fmt3(e.group_report.demographic_parity_gap()),
                fmt3(e.group_report.equalized_odds_gap()),
            ]);
        }
        format!(
            "{figure}: group fairness on {} (difference between groups, smaller gaps are fairer)\n{}",
            self.spec.name(),
            t.render()
        )
    }
}

/// Runs the trade-off experiment (and collects everything the group-fairness
/// figures need) on one dataset.
pub fn run_tradeoff(spec: DatasetSpec, fast: bool, seed: u64) -> Result<TradeoffResults> {
    let config = if fast {
        PipelineConfig::fast(seed)
    } else {
        PipelineConfig {
            seed,
            ..PipelineConfig::default()
        }
    };
    let exp = prepare(spec, &config)?;

    // The synthetic experiment (Figure 2/3) uses the plain baselines; the
    // real-data experiments (Figures 5/6, 8/9) use the augmented "+"
    // variants.
    let augmented = spec != DatasetSpec::Synthetic;
    // γ as tuned by cross-validation in the paper's spirit (see the γ sweeps
    // in Figures 4/7/10): the synthetic fairness graph agrees with the ground
    // truth so a high γ helps; on Crime the WF consistency peaks at a low γ
    // before the tension with WX dominates; on Compas a high γ is affordable
    // because the quantile graph barely hurts utility.
    let gamma = match spec {
        DatasetSpec::Synthetic => 0.9,
        DatasetSpec::Crime => 0.2,
        DatasetSpec::Compas => 0.8,
    };

    let lineup = standard_lineup(&exp, gamma, augmented, fast);
    let mut evaluations = Vec::new();
    for (label, method, space) in &lineup {
        evaluations.push(run_method(method.as_ref(), label, &exp, *space)?);
    }

    // Hardt et al.: post-process the Original(+) classifier's scores with
    // group-specific thresholds fitted on the training split.
    let original_label = if augmented { "Hardt +" } else { "Hardt" };
    let original_eval = evaluations
        .iter()
        .find(|e| e.method.starts_with("Original"))
        .expect("the Original baseline is always part of the line-up");
    // Fit the post-processor on training-split scores.
    let train_scores = {
        // Retrain the original classifier on the training representation and
        // score the training split itself (the post-processor needs labelled
        // calibration data; the paper uses the training data for this).
        let original_space = if augmented {
            InputSpace::MaskedAugmented
        } else {
            InputSpace::Masked
        };
        let (x_train, _x_test) = exp.matrices(original_space);
        let ctx = pfr_baselines::FitContext {
            x: x_train,
            labels: exp.train.labels(),
            groups: exp.train.groups(),
            wx: &exp.wx_train,
        };
        let fitted = OriginalRepresentation.fit(&ctx)?;
        let z_train = fitted.transform(x_train)?;
        let mut clf = pfr_opt::LogisticRegression::default();
        clf.fit(&z_train, exp.train.labels())?;
        clf.predict_proba(&z_train)?
    };
    let post =
        HardtPostProcessor::fit_default(&train_scores, exp.train.labels(), exp.train.groups())?;
    let hardt_predictions = post.predict(&original_eval.probabilities, exp.test.groups())?;
    let hardt_eval = evaluate_predictions(
        original_label,
        original_eval.probabilities.clone(),
        hardt_predictions,
        &exp,
    )?;
    evaluations.push(hardt_eval);

    Ok(TradeoffResults {
        spec,
        evaluations,
        experiment: exp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_tradeoff_reproduces_the_papers_qualitative_findings() {
        let results = run_tradeoff(DatasetSpec::Synthetic, true, 21).unwrap();
        let pfr = results.method("PFR").unwrap();
        let original = results.method("Original").unwrap();

        // [Q2] PFR's consistency w.r.t. WF holds up against the Original
        // baseline (the paper's headline finding; on this reduced fast-mode
        // dataset we allow a small tolerance — the full-size comparison is
        // exercised by the integration tests and the figure drivers).
        assert!(
            pfr.consistency_wf >= original.consistency_wf - 0.10,
            "PFR Consistency(WF) {} should be competitive with Original ({})",
            pfr.consistency_wf,
            original.consistency_wf
        );
        // [Q3] On the synthetic data the fairness edges agree with the ground
        // truth, so PFR keeps a competitive AUC.
        assert!(pfr.auc > 0.6, "PFR AUC {} too low", pfr.auc);

        // [Q4] PFR narrows the demographic-parity gap relative to Original.
        assert!(
            pfr.group_report.demographic_parity_gap()
                <= original.group_report.demographic_parity_gap() + 0.05
        );
        // Hardt equalizes the odds.
        let hardt = results.method("Hardt").unwrap();
        assert!(
            hardt.group_report.equalized_odds_gap()
                <= original.group_report.equalized_odds_gap() + 0.05
        );

        let rendered = results.render_tradeoff();
        assert!(rendered.contains("Figure 2"));
        let rendered_group = results.render_group_fairness();
        assert!(rendered_group.contains("Figure 3"));
        assert!(rendered_group.contains("Hardt"));
    }

    #[test]
    fn crime_tradeoff_uses_augmented_baselines() {
        let results = run_tradeoff(DatasetSpec::Crime, true, 22).unwrap();
        assert!(results.method("Original +").is_some());
        assert!(results.method("LFR +").is_some());
        assert!(results.method("PFR").is_some());
        assert!(results.method("Hardt +").is_some());
        let rendered = results.render_tradeoff();
        assert!(rendered.contains("Figure 5"));
    }
}
