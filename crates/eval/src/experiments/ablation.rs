//! Ablation experiments (DESIGN.md §4 items A1–A3, §6).
//!
//! * **A1 — fairness-graph sparsity**: the paper stresses that pairwise
//!   judgments may only be available for a sparse sample of pairs. This
//!   ablation subsamples the fairness-graph edges at decreasing rates and
//!   measures how PFR's fairness consistency degrades.
//! * **A2 — kernel vs. linear PFR**: the paper's Section 3.3.4 extension,
//!   compared against linear PFR on the synthetic data.
//! * **A3 — quantile granularity**: the number of quantile buckets `k` used
//!   by the between-group fairness graph (Definition 3) on the COMPAS-like
//!   data.

use crate::methods::default_pfr_config;
use crate::pipeline::{evaluate_representation, prepare, DatasetSpec, PipelineConfig};
use crate::report::{fmt3, TextTable};
use crate::Result;
use pfr_core::kernel::KernelPfrConfig;
use pfr_core::{KernelPfr, KernelType, Pfr};

/// A generic ablation result: parameter value → metrics.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The swept parameter value, rendered as text.
    pub parameter: String,
    /// AUC on the test split.
    pub auc: f64,
    /// Consistency w.r.t. `WF` on the test split.
    pub consistency_wf: f64,
    /// Consistency w.r.t. `WX` on the test split.
    pub consistency_wx: f64,
}

/// A rendered ablation experiment.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Experiment title.
    pub title: String,
    /// Name of the swept parameter (table header).
    pub parameter_name: String,
    /// One row per parameter value.
    pub rows: Vec<AblationRow>,
}

impl Ablation {
    /// Renders the ablation as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            self.parameter_name.as_str(),
            "AUC",
            "Consistency (WF)",
            "Consistency (WX)",
        ]);
        for row in &self.rows {
            t.add_row(vec![
                row.parameter.clone(),
                fmt3(row.auc),
                fmt3(row.consistency_wf),
                fmt3(row.consistency_wx),
            ]);
        }
        format!("{}\n{}", self.title, t.render())
    }
}

/// A1 — effect of fairness-graph sparsity (edge subsampling) on PFR.
pub fn run_sparsity(fast: bool, seed: u64) -> Result<Ablation> {
    let config = if fast {
        PipelineConfig::fast(seed)
    } else {
        PipelineConfig {
            seed,
            ..PipelineConfig::default()
        }
    };
    let exp = prepare(DatasetSpec::Synthetic, &config)?;
    let rates = [1.0, 0.5, 0.2, 0.1, 0.05, 0.01];
    let mut rows = Vec::new();
    for &rate in &rates {
        let wf = exp.wf_train.subsample_edges(rate, seed.wrapping_add(1))?;
        let pfr_config = default_pfr_config(exp.x_train_prot.cols(), 0.9);
        let model = Pfr::new(pfr_config).fit(&exp.x_train_prot, &exp.wx_train, &wf)?;
        let z_train = model.transform(&exp.x_train_prot)?;
        let z_test = model.transform(&exp.x_test_prot)?;
        let eval = evaluate_representation(format!("PFR@{rate}"), &z_train, &z_test, &exp)?;
        rows.push(AblationRow {
            parameter: format!("{rate:.2}"),
            auc: eval.auc,
            consistency_wf: eval.consistency_wf,
            consistency_wx: eval.consistency_wx,
        });
    }
    Ok(Ablation {
        title: "Ablation A1: fairness-graph edge-sampling rate (synthetic data, PFR gamma=0.9)"
            .to_string(),
        parameter_name: "edge-sampling rate".to_string(),
        rows,
    })
}

/// A2 — linear PFR vs. kernel PFR (RBF kernels of several widths).
pub fn run_kernel(fast: bool, seed: u64) -> Result<Ablation> {
    // Kernel PFR solves an n x n eigenproblem, so always use the reduced
    // synthetic dataset here; `fast` further trims it.
    let config = PipelineConfig {
        fast: true,
        knn_k: if fast { 5 } else { 10 },
        seed,
        ..PipelineConfig::default()
    };
    let exp = prepare(DatasetSpec::Synthetic, &config)?;
    let mut rows = Vec::new();

    // Linear PFR reference.
    let linear = Pfr::new(default_pfr_config(exp.x_train_prot.cols(), 0.9)).fit(
        &exp.x_train_prot,
        &exp.wx_train,
        &exp.wf_train,
    )?;
    let eval = evaluate_representation(
        "linear",
        &linear.transform(&exp.x_train_prot)?,
        &linear.transform(&exp.x_test_prot)?,
        &exp,
    )?;
    rows.push(AblationRow {
        parameter: "linear".to_string(),
        auc: eval.auc,
        consistency_wf: eval.consistency_wf,
        consistency_wx: eval.consistency_wx,
    });

    // Kernel PFR with a few RBF widths (and the linear kernel as a sanity
    // point: it spans the same space as linear PFR).
    let kernels = [
        ("rbf sigma=0.5", KernelType::Rbf { sigma: 0.5 }),
        ("rbf sigma=1.0", KernelType::Rbf { sigma: 1.0 }),
        ("rbf sigma=2.0", KernelType::Rbf { sigma: 2.0 }),
        ("linear kernel", KernelType::Linear),
    ];
    for (label, kernel) in kernels {
        let model = KernelPfr::new(KernelPfrConfig {
            gamma: 0.9,
            dim: 2,
            kernel,
            ..KernelPfrConfig::default()
        })
        .fit(&exp.x_train_prot, &exp.wx_train, &exp.wf_train)?;
        let eval = evaluate_representation(
            label,
            &model.transform(&exp.x_train_prot)?,
            &model.transform(&exp.x_test_prot)?,
            &exp,
        )?;
        rows.push(AblationRow {
            parameter: label.to_string(),
            auc: eval.auc,
            consistency_wf: eval.consistency_wf,
            consistency_wx: eval.consistency_wx,
        });
    }

    Ok(Ablation {
        title: "Ablation A2: linear PFR vs kernel PFR (synthetic data, gamma=0.9)".to_string(),
        parameter_name: "variant".to_string(),
        rows,
    })
}

/// A3 — number of quantile buckets in the between-group fairness graph.
pub fn run_quantiles(fast: bool, seed: u64) -> Result<Ablation> {
    let base_config = if fast {
        PipelineConfig::fast(seed)
    } else {
        PipelineConfig {
            seed,
            ..PipelineConfig::default()
        }
    };
    let mut rows = Vec::new();
    for &k in &[2usize, 4, 5, 10, 20] {
        let config = PipelineConfig {
            quantiles: k,
            ..base_config.clone()
        };
        let exp = prepare(DatasetSpec::Compas, &config)?;
        let pfr_config = default_pfr_config(exp.x_train_prot.cols(), 0.5);
        let model = Pfr::new(pfr_config).fit(&exp.x_train_prot, &exp.wx_train, &exp.wf_train)?;
        let z_train = model.transform(&exp.x_train_prot)?;
        let z_test = model.transform(&exp.x_test_prot)?;
        let eval = evaluate_representation(format!("PFR@k={k}"), &z_train, &z_test, &exp)?;
        rows.push(AblationRow {
            parameter: k.to_string(),
            auc: eval.auc,
            consistency_wf: eval.consistency_wf,
            consistency_wx: eval.consistency_wx,
        });
    }
    Ok(Ablation {
        title: "Ablation A3: quantile count k of the between-group fairness graph (Compas, PFR gamma=0.5)"
            .to_string(),
        parameter_name: "quantiles k".to_string(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_ablation_produces_one_row_per_rate() {
        let ablation = run_sparsity(true, 41).unwrap();
        assert_eq!(ablation.rows.len(), 6);
        assert!(ablation.render().contains("edge-sampling rate"));
        // Denser fairness graphs should not hurt Consistency(WF) relative to
        // the sparsest setting.
        let dense = &ablation.rows[0];
        let sparse = ablation.rows.last().unwrap();
        assert!(dense.consistency_wf >= sparse.consistency_wf - 0.1);
    }

    #[test]
    fn kernel_ablation_includes_linear_reference() {
        let ablation = run_kernel(true, 42).unwrap();
        assert!(ablation.rows.iter().any(|r| r.parameter == "linear"));
        assert!(ablation.rows.len() >= 4);
        for row in &ablation.rows {
            assert!(
                row.auc > 0.4,
                "{} AUC {} unreasonably low",
                row.parameter,
                row.auc
            );
        }
    }

    #[test]
    fn quantile_ablation_covers_the_grid() {
        let ablation = run_quantiles(true, 43).unwrap();
        assert_eq!(ablation.rows.len(), 5);
        assert!(ablation.render().contains("quantiles k"));
    }
}
