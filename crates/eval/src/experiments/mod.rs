//! Experiment drivers — one per table / figure of the paper plus the
//! ablations listed in `DESIGN.md` §4/§6.
//!
//! Every driver returns structured results *and* can render them as a text
//! table, so the same code backs the `pfr-eval` binary, the integration tests
//! and the Criterion benches.

pub mod ablation;
pub mod gamma;
pub mod representations;
pub mod table1;
pub mod tradeoff;

use crate::Result;

/// The experiments known to the harness, keyed by their command-line name.
pub const EXPERIMENT_NAMES: [&str; 14] = [
    "table1",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "ablation-sparsity",
    "ablation-kernel",
    "ablation-quantiles",
];

/// Runs an experiment by name and returns its rendered report.
///
/// `fast` selects reduced dataset sizes and iteration budgets — the same
/// qualitative behaviour at a fraction of the runtime (used by tests and
/// benches; the binary defaults to full size).
pub fn run_by_name(name: &str, fast: bool, seed: u64) -> Result<String> {
    match name {
        "table1" => table1::run(fast, seed).map(|r| r.render()),
        "figure1" => representations::run(fast, seed).map(|r| r.render()),
        "figure2" => tradeoff::run_tradeoff(crate::pipeline::DatasetSpec::Synthetic, fast, seed)
            .map(|r| r.render_tradeoff()),
        "figure3" => tradeoff::run_tradeoff(crate::pipeline::DatasetSpec::Synthetic, fast, seed)
            .map(|r| r.render_group_fairness()),
        "figure4" => {
            gamma::run(crate::pipeline::DatasetSpec::Synthetic, fast, seed).map(|r| r.render())
        }
        "figure5" => tradeoff::run_tradeoff(crate::pipeline::DatasetSpec::Crime, fast, seed)
            .map(|r| r.render_tradeoff()),
        "figure6" => tradeoff::run_tradeoff(crate::pipeline::DatasetSpec::Crime, fast, seed)
            .map(|r| r.render_group_fairness()),
        "figure7" => {
            gamma::run(crate::pipeline::DatasetSpec::Crime, fast, seed).map(|r| r.render())
        }
        "figure8" => tradeoff::run_tradeoff(crate::pipeline::DatasetSpec::Compas, fast, seed)
            .map(|r| r.render_tradeoff()),
        "figure9" => tradeoff::run_tradeoff(crate::pipeline::DatasetSpec::Compas, fast, seed)
            .map(|r| r.render_group_fairness()),
        "figure10" => {
            gamma::run(crate::pipeline::DatasetSpec::Compas, fast, seed).map(|r| r.render())
        }
        "ablation-sparsity" => ablation::run_sparsity(fast, seed).map(|r| r.render()),
        "ablation-kernel" => ablation::run_kernel(fast, seed).map(|r| r.render()),
        "ablation-quantiles" => ablation::run_quantiles(fast, seed).map(|r| r.render()),
        other => Err(crate::EvalError::InvalidParameter(format!(
            "unknown experiment '{other}'; known experiments: {}",
            EXPERIMENT_NAMES.join(", ")
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_rejected_with_a_helpful_message() {
        let err = run_by_name("figure99", true, 1).unwrap_err();
        assert!(err.to_string().contains("figure99"));
        assert!(err.to_string().contains("table1"));
    }

    #[test]
    fn experiment_names_cover_every_paper_artifact() {
        // 1 table + 10 figures + 3 ablations.
        assert_eq!(EXPERIMENT_NAMES.len(), 14);
        assert!(EXPERIMENT_NAMES.contains(&"figure10"));
    }
}
