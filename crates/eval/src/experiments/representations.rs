//! Figure 1 — what do the learned representations look like?
//!
//! The paper plots the original synthetic data and its 2-D representations
//! learned by iFair, LFR and PFR, and makes two qualitative observations:
//!
//! 1. in every *learned* representation the two protected groups are well
//!    mixed (unlike the original data), and
//! 2. only PFR maps the *deserving* candidates of one group close to the
//!    deserving candidates of the other group.
//!
//! A textual reproduction of a scatter plot needs summary statistics instead
//! of pixels, so this driver reports, for every method,
//!
//! * the distance between the two group centroids ("group separation" —
//!   smaller means better mixed), and
//! * the mean distance between equally deserving cross-group pairs, i.e. the
//!   pairs connected in `WF`, normalized by the mean pairwise distance
//!   ("deserving-pair distance" — smaller means the method maps equally
//!   deserving individuals together).
//!
//! It can also dump the raw 2-D coordinates as CSV for external plotting.

use crate::methods::{default_ifair_config, default_lfr_config, default_pfr_config, PfrMethod};
use crate::pipeline::{prepare, DatasetSpec, PipelineConfig, PreparedExperiment};
use crate::report::{fmt3, TextTable};
use crate::Result;
use pfr_baselines::{FitContext, IFair, Lfr, RepresentationMethod};
use pfr_data::csv::NumericTable;
use pfr_linalg::Matrix;

/// Geometry statistics of one learned representation.
#[derive(Debug, Clone)]
pub struct RepresentationGeometry {
    /// Method name.
    pub method: String,
    /// Distance between the protected and non-protected group centroids,
    /// normalized by the mean pairwise distance of the embedding.
    pub group_separation: f64,
    /// Mean distance between fairness-graph pairs, normalized by the mean
    /// pairwise distance of the embedding.
    pub deserving_pair_distance: f64,
    /// The 2-D coordinates of the training individuals in this
    /// representation (for CSV export / plotting).
    pub coordinates: Matrix,
}

/// Figure 1 results: one geometry record per method.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// Geometry per method, in the paper's order
    /// (Original, iFair, LFR, PFR).
    pub per_method: Vec<RepresentationGeometry>,
}

impl Figure1 {
    /// Renders the summary table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "Method",
            "Group separation (lower = better mixed)",
            "Deserving-pair distance (lower = fairer)",
        ]);
        for g in &self.per_method {
            t.add_row(vec![
                g.method.clone(),
                fmt3(g.group_separation),
                fmt3(g.deserving_pair_distance),
            ]);
        }
        format!(
            "Figure 1: geometry of the learned representations (synthetic data, d = 2)\n{}",
            t.render()
        )
    }

    /// Exports the 2-D coordinates of one method as a CSV table
    /// (`x, y, group, label`) for external plotting.
    pub fn to_csv(&self, method: &str, exp: &PreparedExperiment) -> Option<NumericTable> {
        let geometry = self.per_method.iter().find(|g| g.method == method)?;
        let coords = &geometry.coordinates;
        let rows: Vec<Vec<f64>> = (0..coords.rows())
            .map(|i| {
                vec![
                    coords[(i, 0)],
                    if coords.cols() > 1 {
                        coords[(i, 1)]
                    } else {
                        0.0
                    },
                    exp.train.groups()[i] as f64,
                    exp.train.labels()[i] as f64,
                ]
            })
            .collect();
        NumericTable::new(
            vec!["x".into(), "y".into(), "group".into(), "label".into()],
            rows,
        )
        .ok()
    }
}

fn geometry(method: String, z: &Matrix, exp: &PreparedExperiment) -> RepresentationGeometry {
    let groups = exp.train.groups();
    let n = z.rows();

    // Mean pairwise distance (over a deterministic subsample for large n).
    let step = (n / 200).max(1);
    let mut total = 0.0;
    let mut count = 0usize;
    for i in (0..n).step_by(step) {
        for j in ((i + 1)..n).step_by(step) {
            total += pfr_linalg::vector::distance(z.row(i), z.row(j));
            count += 1;
        }
    }
    let mean_pairwise = (total / count.max(1) as f64).max(1e-12);

    // Group centroid separation.
    let centroid = |group: usize| -> Vec<f64> {
        let members: Vec<usize> = (0..n).filter(|&i| groups[i] == group).collect();
        let mut c = vec![0.0; z.cols()];
        for &i in &members {
            for (j, v) in z.row(i).iter().enumerate() {
                c[j] += v / members.len() as f64;
            }
        }
        c
    };
    let sep = pfr_linalg::vector::distance(&centroid(0), &centroid(1)) / mean_pairwise;

    // Mean distance between fairness-graph (equally deserving) pairs.
    let mut pair_total = 0.0;
    let mut pair_count = 0usize;
    for e in exp.wf_train.edges() {
        pair_total += pfr_linalg::vector::distance(z.row(e.i as usize), z.row(e.j as usize));
        pair_count += 1;
    }
    let pair_dist = if pair_count == 0 {
        0.0
    } else {
        pair_total / pair_count as f64 / mean_pairwise
    };

    RepresentationGeometry {
        method,
        group_separation: sep,
        deserving_pair_distance: pair_dist,
        coordinates: z.clone(),
    }
}

/// Runs the Figure 1 experiment on the synthetic dataset.
pub fn run(fast: bool, seed: u64) -> Result<Figure1> {
    let exp = prepare(
        DatasetSpec::Synthetic,
        &if fast {
            PipelineConfig::fast(seed)
        } else {
            PipelineConfig {
                seed,
                ..PipelineConfig::default()
            }
        },
    )?;
    // The representation learners see the protected attribute (the paper
    // masks it only for the Original representation and the WX graph).
    let ctx = FitContext {
        x: &exp.x_train_prot,
        labels: exp.train.labels(),
        groups: exp.train.groups(),
        wx: &exp.wx_train,
    };

    let mut per_method = Vec::new();

    // Original (standardized 2-D data, protected attribute masked).
    per_method.push(geometry("Original".to_string(), &exp.x_train, &exp));

    // iFair (reconstruction has the learner-input dimensionality; the first
    // two coordinates are the GPA/SAT reconstruction).
    let ifair = IFair::new(default_ifair_config(fast)).fit(&ctx)?;
    per_method.push(geometry(
        "iFair".to_string(),
        &ifair.transform(&exp.x_train_prot)?,
        &exp,
    ));

    // LFR: the assignment vectors are K-dimensional; for the figure the paper
    // learns 2-D representations, so use 2 prototypes.
    let mut lfr_config = default_lfr_config(fast);
    lfr_config.num_prototypes = 2;
    let lfr = Lfr::new(lfr_config).fit(&ctx)?;
    per_method.push(geometry(
        "LFR".to_string(),
        &lfr.transform(&exp.x_train_prot)?,
        &exp,
    ));

    // PFR with d = 2 over [gpa, sat, protected], γ tuned high as in the
    // paper's synthetic experiment.
    let mut pfr_config = default_pfr_config(exp.x_train_prot.cols(), 0.9);
    pfr_config.dim = 2.min(exp.x_train_prot.cols());
    let pfr = PfrMethod::new(pfr_config, exp.wf_train.clone()).fit(&ctx)?;
    per_method.push(geometry(
        "PFR".to_string(),
        &pfr.transform(&exp.x_train_prot)?,
        &exp,
    ));

    Ok(Figure1 { per_method })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learned_representations_mix_the_groups_better_than_the_original() {
        let fig = run(true, 11).unwrap();
        assert_eq!(fig.per_method.len(), 4);
        let original = &fig.per_method[0];
        let pfr = fig.per_method.iter().find(|g| g.method == "PFR").unwrap();
        // Paper observation 1: learned representations mix the groups; PFR's
        // group separation should not exceed the original's.
        assert!(
            pfr.group_separation <= original.group_separation + 1e-9,
            "PFR separation {} vs original {}",
            pfr.group_separation,
            original.group_separation
        );
        // Paper observation 2: PFR maps equally deserving individuals closer
        // than the original representation does.
        assert!(
            pfr.deserving_pair_distance < original.deserving_pair_distance,
            "PFR pair distance {} vs original {}",
            pfr.deserving_pair_distance,
            original.deserving_pair_distance
        );
        let rendered = fig.render();
        assert!(rendered.contains("PFR"));
        assert!(rendered.contains("Figure 1"));
    }

    #[test]
    fn csv_export_round_trips() {
        let fig = run(true, 13).unwrap();
        let exp = prepare(DatasetSpec::Synthetic, &PipelineConfig::fast(13)).unwrap();
        let table = fig.to_csv("PFR", &exp).unwrap();
        assert_eq!(table.columns, vec!["x", "y", "group", "label"]);
        assert_eq!(table.rows.len(), exp.train.len());
        assert!(fig.to_csv("Nonexistent", &exp).is_none());
    }
}
