//! Table 1 — experimental setting and statistics of the datasets.

use crate::pipeline::DatasetSpec;
use crate::report::{fmt3, TextTable};
use crate::Result;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: String,
    /// Total number of records.
    pub total: usize,
    /// Size of the non-protected group (`s = 0`).
    pub size_s0: usize,
    /// Size of the protected group (`s = 1`).
    pub size_s1: usize,
    /// Base rate of the non-protected group.
    pub base_rate_s0: f64,
    /// Base rate of the protected group.
    pub base_rate_s1: f64,
    /// The downstream classification task.
    pub task: &'static str,
    /// The protected attribute.
    pub protected_attribute: &'static str,
}

/// The full reproduction of Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One row per dataset.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Renders the table in the paper's column order.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "Dataset",
            "|X|",
            "|Xs=0|",
            "|Xs=1|",
            "Base-rate (s=0)",
            "Base-rate (s=1)",
            "Classification task",
            "Protected attribute",
        ]);
        for row in &self.rows {
            t.add_row(vec![
                row.dataset.clone(),
                row.total.to_string(),
                row.size_s0.to_string(),
                row.size_s1.to_string(),
                fmt3(row.base_rate_s0),
                fmt3(row.base_rate_s1),
                row.task.to_string(),
                row.protected_attribute.to_string(),
            ]);
        }
        format!("Table 1: dataset statistics\n{}", t.render())
    }
}

/// Generates all three datasets and collects their statistics.
pub fn run(fast: bool, seed: u64) -> Result<Table1> {
    let specs = [
        (DatasetSpec::Synthetic, "Is successful", "Race"),
        (DatasetSpec::Crime, "Is violent", "Race"),
        (DatasetSpec::Compas, "Is rearrested", "Race"),
    ];
    let mut rows = Vec::new();
    for (spec, task, protected) in specs {
        let ds = spec.generate(seed, fast)?;
        rows.push(Table1Row {
            dataset: spec.name().to_string(),
            total: ds.len(),
            size_s0: ds.group_size(0),
            size_s1: ds.group_size(1),
            base_rate_s0: ds.base_rate(0).unwrap_or(0.0),
            base_rate_s1: ds.base_rate(1).unwrap_or(0.0),
            task,
            protected_attribute: protected,
        });
    }
    Ok(Table1 { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_table_has_three_rows_with_correct_proportions() {
        let table = run(true, 3).unwrap();
        assert_eq!(table.rows.len(), 3);
        let compas = &table.rows[2];
        assert_eq!(compas.dataset, "Compas");
        // Protected group is larger than the non-protected group in COMPAS.
        assert!(compas.size_s1 > compas.size_s0);
        // Crime has the striking base-rate gap.
        let crime = &table.rows[1];
        assert!(crime.base_rate_s1 > crime.base_rate_s0 + 0.3);
        let rendered = table.render();
        assert!(rendered.contains("Compas"));
        assert!(rendered.contains("Is violent"));
    }
}
