//! Hyper-parameter tuning by grid search with stratified k-fold
//! cross-validation, mirroring the paper's protocol ("5-fold cross-validation
//! ... to find the best hyper-parameters for each model via grid search",
//! Section 4.1).
//!
//! The search optimizes a scalar selection criterion computed on the
//! validation folds. The paper tunes for the best achievable trade-off
//! between utility and individual fairness; the default criterion here is
//! `AUC + Consistency(WF)` which reproduces that intent, and a pure-AUC
//! criterion is provided for the baselines.

use crate::pipeline::{evaluate_representation, PreparedExperiment};
use crate::Result;
use pfr_baselines::FitContext;
use pfr_core::{Pfr, PfrConfig};
use pfr_data::split::k_fold;
use pfr_graph::KnnGraphBuilder;
use pfr_linalg::stats::Standardizer;
use pfr_metrics::{consistency, roc_auc};
use pfr_opt::{LogisticRegression, LogisticRegressionConfig};

/// What the grid search optimizes on the validation folds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionCriterion {
    /// Validation AUC only.
    Auc,
    /// Validation AUC plus consistency w.r.t. the fairness graph — the
    /// utility / individual-fairness trade-off the paper tunes for.
    AucPlusConsistencyWf,
}

/// Result of a grid search over PFR's γ.
#[derive(Debug, Clone)]
pub struct GammaSearchResult {
    /// The selected γ.
    pub best_gamma: f64,
    /// Mean validation score of the selected γ.
    pub best_score: f64,
    /// `(γ, mean validation score)` for every candidate.
    pub scores: Vec<(f64, f64)>,
}

/// Cross-validated grid search over PFR's γ on the training split of a
/// prepared experiment.
pub fn search_pfr_gamma(
    exp: &PreparedExperiment,
    candidates: &[f64],
    dim: usize,
    folds: usize,
    criterion: SelectionCriterion,
    seed: u64,
) -> Result<GammaSearchResult> {
    if candidates.is_empty() {
        return Err(crate::EvalError::InvalidParameter(
            "the γ grid must not be empty".to_string(),
        ));
    }
    let splits = k_fold(&exp.train, folds, seed)?;
    let mut scores = Vec::with_capacity(candidates.len());
    for &gamma in candidates {
        let mut total = 0.0;
        let mut count = 0usize;
        for fold in &splits {
            let train = exp.train.subset(&fold.train)?;
            let valid = exp.train.subset(&fold.test)?;
            // PFR's input includes the protected attribute; the WX graph is
            // built on the masked features (Section 3.1).
            let (train_prot_raw, _) = train.features_with_protected()?;
            let (valid_prot_raw, _) = valid.features_with_protected()?;
            let (standardizer, x_train) = Standardizer::fit_transform(&train_prot_raw)?;
            let x_valid = standardizer.transform(&valid_prot_raw)?;
            let (masked_standardizer, x_train_masked) =
                Standardizer::fit_transform(train.features())?;
            let _ = masked_standardizer;
            let k = 5.min(x_train.rows().saturating_sub(1)).max(1);
            let wx = KnnGraphBuilder::new(k).build(&x_train_masked)?;
            let wf = exp.spec.build_fairness_graph(&train, 5)?;
            let config = PfrConfig {
                gamma,
                dim: dim.min(x_train.cols()).max(1),
                ..PfrConfig::default()
            };
            let model = Pfr::new(config).fit(&x_train, &wx, &wf)?;
            let z_train = model.transform(&x_train)?;
            let z_valid = model.transform(&x_valid)?;
            let mut clf = LogisticRegression::new(LogisticRegressionConfig::default());
            clf.fit(&z_train, train.labels())?;
            let probs = clf.predict_proba(&z_valid)?;
            let auc = roc_auc(valid.labels(), &probs).unwrap_or(0.5);
            let score = match criterion {
                SelectionCriterion::Auc => auc,
                SelectionCriterion::AucPlusConsistencyWf => {
                    let preds: Vec<f64> = probs.iter().map(|&p| f64::from(p >= 0.5)).collect();
                    let wf_valid = exp.spec.build_fairness_graph(&valid, 5)?;
                    let cons = consistency(&wf_valid, &preds)?;
                    auc + cons
                }
            };
            total += score;
            count += 1;
        }
        scores.push((gamma, total / count as f64));
    }
    let (best_gamma, best_score) = scores
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("grid is non-empty");
    Ok(GammaSearchResult {
        best_gamma,
        best_score,
        scores,
    })
}

/// Cross-validated evaluation of a fixed baseline method (helper used by the
/// hyper-parameter sweeps in the ablation experiments).
pub fn cross_validated_auc(
    exp: &PreparedExperiment,
    method: &dyn pfr_baselines::RepresentationMethod,
    folds: usize,
    seed: u64,
) -> Result<f64> {
    let splits = k_fold(&exp.train, folds, seed)?;
    let mut total = 0.0;
    for fold in &splits {
        let train = exp.train.subset(&fold.train)?;
        let valid = exp.train.subset(&fold.test)?;
        let (standardizer, x_train) = Standardizer::fit_transform(train.features())?;
        let x_valid = standardizer.transform(valid.features())?;
        let k = 5.min(x_train.rows().saturating_sub(1)).max(1);
        let wx = KnnGraphBuilder::new(k).build(&x_train)?;
        let ctx = FitContext {
            x: &x_train,
            labels: train.labels(),
            groups: train.groups(),
            wx: &wx,
        };
        let fitted = method.fit(&ctx)?;
        let z_train = fitted.transform(&x_train)?;
        let z_valid = fitted.transform(&x_valid)?;
        let mut clf = LogisticRegression::new(LogisticRegressionConfig::default());
        clf.fit(&z_train, train.labels())?;
        let probs = clf.predict_proba(&z_valid)?;
        total += roc_auc(valid.labels(), &probs).unwrap_or(0.5);
    }
    Ok(total / splits.len() as f64)
}

/// Convenience: evaluates the final, tuned PFR configuration on the held-out
/// test split of a prepared experiment.
pub fn evaluate_tuned_pfr(
    exp: &PreparedExperiment,
    gamma: f64,
    dim: usize,
) -> Result<crate::pipeline::Evaluation> {
    let config = PfrConfig {
        gamma,
        dim: dim.min(exp.x_train_prot.cols()).max(1),
        ..PfrConfig::default()
    };
    let model = Pfr::new(config).fit(&exp.x_train_prot, &exp.wx_train, &exp.wf_train)?;
    let z_train = model.transform(&exp.x_train_prot)?;
    let z_test = model.transform(&exp.x_test_prot)?;
    evaluate_representation("PFR", &z_train, &z_test, exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{prepare, DatasetSpec, PipelineConfig};

    #[test]
    fn gamma_search_returns_a_candidate_from_the_grid() {
        let exp = prepare(DatasetSpec::Synthetic, &PipelineConfig::fast(2)).unwrap();
        let result = search_pfr_gamma(
            &exp,
            &[0.0, 0.5, 1.0],
            1,
            3,
            SelectionCriterion::AucPlusConsistencyWf,
            7,
        )
        .unwrap();
        assert!([0.0, 0.5, 1.0].contains(&result.best_gamma));
        assert_eq!(result.scores.len(), 3);
        assert!(
            result.best_score >= result.scores.iter().map(|s| s.1).fold(f64::MIN, f64::max) - 1e-12
        );
    }

    #[test]
    fn empty_grid_is_rejected() {
        let exp = prepare(DatasetSpec::Synthetic, &PipelineConfig::fast(2)).unwrap();
        assert!(search_pfr_gamma(&exp, &[], 1, 3, SelectionCriterion::Auc, 7).is_err());
    }

    #[test]
    fn cross_validated_auc_beats_chance_on_synthetic_data() {
        let exp = prepare(DatasetSpec::Synthetic, &PipelineConfig::fast(4)).unwrap();
        let auc = cross_validated_auc(&exp, &pfr_baselines::OriginalRepresentation, 3, 5).unwrap();
        assert!(auc > 0.6, "cross-validated AUC {auc} too low");
    }

    #[test]
    fn tuned_pfr_evaluates_on_test_split() {
        let exp = prepare(DatasetSpec::Synthetic, &PipelineConfig::fast(6)).unwrap();
        let eval = evaluate_tuned_pfr(&exp, 0.5, 1).unwrap();
        assert_eq!(eval.method, "PFR");
        assert!(eval.auc > 0.5);
    }
}
