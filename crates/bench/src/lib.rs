//! # pfr-bench
//!
//! Criterion benchmark harness for the PFR reproduction.
//!
//! Two bench binaries are provided:
//!
//! * `substrates` — micro-benchmarks of the building blocks (eigensolvers,
//!   k-NN graph construction, Laplacian quadratic forms, logistic
//!   regression), including the eigensolver-choice ablation from
//!   `DESIGN.md` §6.
//! * `tables_and_figures` — one benchmark per paper artifact (Table 1,
//!   Figures 1–10 and the three ablations), each running the corresponding
//!   experiment driver from `pfr-eval` in fast mode so that `cargo bench`
//!   regenerates every row/series the paper reports while also measuring its
//!   cost.
//!
//! This library crate exposes the small helpers shared by the bench
//! binaries and the `perf_gate` regression checker: dataset/graph setup,
//! wall-clock throughput measurement, and reading/writing the flat
//! `BENCH_*.json` perf records CI gates on.

#![deny(missing_docs)]
#![warn(clippy::all)]

use pfr_data::Dataset;
use pfr_graph::{KnnGraphBuilder, SparseGraph};
use pfr_linalg::stats::Standardizer;
use pfr_linalg::Matrix;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Runs `f` `reps` times and returns the observed rate in units per second,
/// where one call to `f` processes `units_per_rep` units (requests, flops,
/// rows — the caller picks the unit).
///
/// This is the explicit wall-clock measurement every bench binary prints
/// next to its Criterion timings and records into its `BENCH_*.json`.
pub fn measure_rate(reps: usize, units_per_rep: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    (reps * units_per_rep) as f64 / start.elapsed().as_secs_f64()
}

/// Times `samples` calls of `f` individually and returns the (p50, p99)
/// latency in **microseconds** — the per-request distribution a throughput
/// figure hides. Throughput states how many requests fit in a second; the
/// tail states how long an unlucky client waited, and a serving-tier
/// regression (a lock moved onto the hot path, a batch boundary stall)
/// routinely shows up in p99 long before it moves the mean.
pub fn measure_latency_percentiles(samples: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut micros: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    (percentile(&mut micros, 0.50), percentile(&mut micros, 0.99))
}

/// Times `samples` calls of `f` individually and returns the
/// (p50, p99, p999) latency in **microseconds**. The p999 needs enough
/// samples to be a real order statistic rather than the max — pass at
/// least a few thousand. It exists because the extreme tail is where
/// scheduling hiccups, allocator stalls and batch-boundary waits hide:
/// a serving regression can leave p99 untouched and only move p999.
pub fn measure_latency_tail(samples: usize, mut f: impl FnMut()) -> (f64, f64, f64) {
    let mut micros: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    (
        percentile(&mut micros, 0.50),
        percentile(&mut micros, 0.99),
        percentile(&mut micros, 0.999),
    )
}

/// The `q`-quantile (0 ≤ q ≤ 1) of `samples` by the nearest-rank method.
/// Sorts in place; NaN-free input is the caller's contract (latencies are).
pub fn percentile(samples: &mut [f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of an empty sample set");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Absolute path of a file at the workspace root (where the `BENCH_*.json`
/// perf records live, and where CI picks them up).
pub fn workspace_root_path(file_name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file_name)
}

/// Writes a flat perf record `{ "bench": <bench>, "<key>": <value>, … }` to
/// `file_name` at the workspace root, mirroring it to stdout. These records
/// are the PR-over-PR perf trajectory; CI uploads them as artifacts and the
/// `perf_gate` binary fails the build when one regresses against its
/// checked-in baseline.
///
/// # Panics
/// Panics if the record cannot be created or written: a bench run that
/// silently leaves a stale record behind would make the downstream
/// `perf_gate` step validate old numbers and report green with zero fresh
/// measurements.
pub fn write_bench_json(file_name: &str, bench: &str, metrics: &[(&str, f64)]) {
    let mut json = format!("{{\n  \"bench\": \"{bench}\"");
    for (key, value) in metrics {
        json.push_str(&format!(",\n  \"{key}\": {value:.4}"));
    }
    json.push_str("\n}\n");
    let path = workspace_root_path(file_name);
    let mut file = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("creating {} failed: {e}", path.display()));
    file.write_all(json.as_bytes())
        .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
    println!("  wrote {}", path.display());
}

/// Parses a flat JSON object (`{"key": value, …}`, no nesting) and returns
/// its numeric fields in file order. String fields (like `"bench"`) are
/// skipped; this is exactly the subset of JSON the `BENCH_*.json` records
/// use, so no JSON dependency is needed offline.
pub fn parse_flat_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for part in text.split(',') {
        let Some((raw_key, raw_value)) = part.split_once(':') else {
            continue;
        };
        let key = raw_key.trim().trim_start_matches('{').trim();
        let key = key.trim_matches('"');
        if key.is_empty() {
            continue;
        }
        let value = raw_value.trim().trim_end_matches('}').trim();
        if let Ok(v) = value.parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

/// Whether a metric key names a **latency / wall-clock duration** (lower
/// is better): the `BENCH_*.json` convention reserves the `_ns` / `_us` /
/// `_ms` suffixes for durations; everything else is a rate or speedup
/// (higher is better).
fn is_latency_metric(key: &str) -> bool {
    key.ends_with("_us") || key.ends_with("_ns") || key.ends_with("_ms")
}

/// Compares fresh metrics against a baseline: every numeric metric present
/// in `baseline` must also exist in `fresh` and must not have regressed by
/// more than `tolerance` (a fraction: `0.30` allows a 30% change for the
/// worse). Direction is keyed on the metric name: rates and speedups
/// (higher is better) fail by *dropping*, duration metrics (`_ns` / `_us`
/// / `_ms` suffix) fail by *rising*. Tail latencies (keys containing `p99`) are
/// gated at triple tolerance — the p99 of a microsecond-scale operation is
/// the noisiest number in the suite, and a gate that cries wolf gets
/// deleted. Returns one human-readable line per violation.
pub fn regressions(
    baseline: &[(String, f64)],
    fresh: &[(String, f64)],
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (key, base) in baseline {
        let Some((_, new)) = fresh.iter().find(|(k, _)| k == key) else {
            failures.push(format!("metric '{key}' disappeared from the fresh record"));
            continue;
        };
        if *base <= 0.0 {
            continue;
        }
        if is_latency_metric(key) {
            let slack = if key.contains("p99") {
                3.0 * tolerance
            } else {
                tolerance
            };
            if *new > *base * (1.0 + slack) {
                failures.push(format!(
                    "latency '{key}' rose {:.1}%: baseline {base:.2}, fresh {new:.2}",
                    100.0 * (new / base - 1.0)
                ));
            }
        } else if *new < *base * (1.0 - tolerance) {
            failures.push(format!(
                "metric '{key}' regressed {:.1}%: baseline {base:.2}, fresh {new:.2}",
                100.0 * (1.0 - new / base)
            ));
        }
    }
    failures
}

/// Prepares a standardized feature matrix, its k-NN graph and its fairness
/// graph for a dataset spec — the common setup cost shared by the substrate
/// benchmarks.
pub fn bench_setup(
    dataset: &Dataset,
    k: usize,
    quantiles: usize,
) -> (Matrix, SparseGraph, SparseGraph) {
    let (_, x) = Standardizer::fit_transform(dataset.features()).expect("standardization succeeds");
    let wx = KnnGraphBuilder::new(k.min(x.rows() - 1).max(1))
        .build(&x)
        .expect("k-NN graph construction succeeds");
    let groups = dataset.groups().to_vec();
    let scores: Vec<f64> = dataset
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    let wf = pfr_graph::fairness::between_group_quantile_graph(&groups, &scores, quantiles)
        .expect("fairness graph construction succeeds");
    (x, wx, wf)
}

/// A deterministic pseudo-random symmetric matrix for eigensolver benches.
pub fn random_symmetric(n: usize, seed: u64) -> Matrix {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = next();
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfr_data::synthetic;

    #[test]
    fn bench_setup_produces_consistent_shapes() {
        let ds = synthetic::generate_default(1).unwrap();
        let (x, wx, wf) = bench_setup(&ds, 5, 5);
        assert_eq!(x.rows(), ds.len());
        assert_eq!(wx.num_nodes(), ds.len());
        assert_eq!(wf.num_nodes(), ds.len());
        assert!(wf.num_edges() > 0);
    }

    #[test]
    fn random_symmetric_is_symmetric() {
        let a = random_symmetric(10, 3);
        assert!(a.is_symmetric(1e-12));
    }

    #[test]
    fn parse_flat_json_reads_numeric_fields_in_order() {
        let text = "{\n  \"bench\": \"x\",\n  \"a_rate\": 120.5,\n  \"b_rate\": 3,\n  \"note\": \"skip me\"\n}\n";
        let parsed = parse_flat_json(text);
        assert_eq!(
            parsed,
            vec![("a_rate".to_string(), 120.5), ("b_rate".to_string(), 3.0)]
        );
    }

    #[test]
    fn regressions_flags_drops_beyond_tolerance_only() {
        let baseline = vec![
            ("fast".to_string(), 100.0),
            ("slow".to_string(), 100.0),
            ("gone".to_string(), 1.0),
        ];
        let fresh = vec![("fast".to_string(), 75.0), ("slow".to_string(), 60.0)];
        let failures = regressions(&baseline, &fresh, 0.30);
        assert_eq!(
            failures.len(),
            2,
            "one drop, one disappearance: {failures:?}"
        );
        assert!(failures.iter().any(|f| f.contains("'slow'")));
        assert!(failures.iter().any(|f| f.contains("'gone'")));
        assert!(regressions(&baseline[..1], &fresh, 0.30).is_empty());
    }

    #[test]
    fn latency_metrics_gate_in_the_opposite_direction() {
        let baseline = vec![
            ("p50_us".to_string(), 100.0),
            ("single_p99_us".to_string(), 100.0),
            ("rate".to_string(), 100.0),
        ];
        // Latencies *dropping* (faster) never fail, however far.
        let faster = vec![
            ("p50_us".to_string(), 10.0),
            ("single_p99_us".to_string(), 10.0),
            ("rate".to_string(), 100.0),
        ];
        // The `_ms` wall-clock suffix gates in the latency direction too.
        let wall = vec![("suite_ms".to_string(), 100.0)];
        assert!(regressions(&wall, &[("suite_ms".to_string(), 50.0)], 0.30).is_empty());
        assert_eq!(
            regressions(&wall, &[("suite_ms".to_string(), 140.0)], 0.30).len(),
            1
        );
        assert!(regressions(&baseline, &faster, 0.30).is_empty());
        // A p50 rise beyond tolerance fails; p99 gets triple slack.
        let slower = vec![
            ("p50_us".to_string(), 140.0),
            ("single_p99_us".to_string(), 180.0),
            ("rate".to_string(), 100.0),
        ];
        let failures = regressions(&baseline, &slower, 0.30);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("'p50_us'"));
        // Past triple tolerance even the p99 fails.
        let tail_blowup = vec![
            ("p50_us".to_string(), 100.0),
            ("single_p99_us".to_string(), 200.0),
            ("rate".to_string(), 100.0),
        ];
        let failures = regressions(&baseline, &tail_blowup, 0.30);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("'single_p99_us'"));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&mut samples, 0.50), 50.0);
        assert_eq!(percentile(&mut samples, 0.99), 99.0);
        assert_eq!(percentile(&mut samples, 1.0), 100.0);
        let mut one = vec![7.0];
        assert_eq!(percentile(&mut one, 0.5), 7.0);
        let (p50, p99) = measure_latency_percentiles(50, || {
            std::hint::black_box(1 + 1);
        });
        assert!(p50 <= p99);
        assert!(p50 >= 0.0);
        let (t50, t99, t999) = measure_latency_tail(50, || {
            std::hint::black_box(1 + 1);
        });
        assert!(t50 <= t99 && t99 <= t999);
        assert!(t50 >= 0.0);
    }

    #[test]
    fn measure_rate_counts_units() {
        let mut n = 0u64;
        let rate = measure_rate(5, 10, || n += 1);
        assert_eq!(n, 5);
        assert!(rate > 0.0);
    }
}
