//! # pfr-bench
//!
//! Criterion benchmark harness for the PFR reproduction.
//!
//! Two bench binaries are provided:
//!
//! * `substrates` — micro-benchmarks of the building blocks (eigensolvers,
//!   k-NN graph construction, Laplacian quadratic forms, logistic
//!   regression), including the eigensolver-choice ablation from
//!   `DESIGN.md` §6.
//! * `tables_and_figures` — one benchmark per paper artifact (Table 1,
//!   Figures 1–10 and the three ablations), each running the corresponding
//!   experiment driver from `pfr-eval` in fast mode so that `cargo bench`
//!   regenerates every row/series the paper reports while also measuring its
//!   cost.
//!
//! This library crate only exposes small helpers shared by the two bench
//! binaries.

#![deny(missing_docs)]
#![warn(clippy::all)]

use pfr_data::Dataset;
use pfr_graph::{KnnGraphBuilder, SparseGraph};
use pfr_linalg::stats::Standardizer;
use pfr_linalg::Matrix;

/// Prepares a standardized feature matrix, its k-NN graph and its fairness
/// graph for a dataset spec — the common setup cost shared by the substrate
/// benchmarks.
pub fn bench_setup(dataset: &Dataset, k: usize, quantiles: usize) -> (Matrix, SparseGraph, SparseGraph) {
    let (_, x) = Standardizer::fit_transform(dataset.features()).expect("standardization succeeds");
    let wx = KnnGraphBuilder::new(k.min(x.rows() - 1).max(1))
        .build(&x)
        .expect("k-NN graph construction succeeds");
    let groups = dataset.groups().to_vec();
    let scores: Vec<f64> = dataset
        .side_information()
        .iter()
        .map(|s| s.unwrap_or(0.0))
        .collect();
    let wf = pfr_graph::fairness::between_group_quantile_graph(&groups, &scores, quantiles)
        .expect("fairness graph construction succeeds");
    (x, wx, wf)
}

/// A deterministic pseudo-random symmetric matrix for eigensolver benches.
pub fn random_symmetric(n: usize, seed: u64) -> Matrix {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = next();
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfr_data::synthetic;

    #[test]
    fn bench_setup_produces_consistent_shapes() {
        let ds = synthetic::generate_default(1).unwrap();
        let (x, wx, wf) = bench_setup(&ds, 5, 5);
        assert_eq!(x.rows(), ds.len());
        assert_eq!(wx.num_nodes(), ds.len());
        assert_eq!(wf.num_nodes(), ds.len());
        assert!(wf.num_edges() > 0);
    }

    #[test]
    fn random_symmetric_is_symmetric() {
        let a = random_symmetric(10, 3);
        assert!(a.is_symmetric(1e-12));
    }
}
