//! Perf-regression gate: compares fresh `BENCH_*.json` records against the
//! baselines checked in under `crates/bench/baselines/` and exits non-zero
//! when any recorded metric regressed by more than the tolerance.
//!
//! CI runs this after the bench smoke steps so the bench JSON is an
//! *enforced* contract rather than a write-only artifact: a PR that slows
//! the GEMM kernel, the serving batcher or the routing tier by more than
//! 30% fails the build with the offending metric named.
//!
//! Direction is keyed on the metric name: rates and speedups fail by
//! dropping, duration metrics (`_ns` / `_us` / `_ms` suffix, e.g. the
//! serving p50/p99 and the paper-artifact wall-clocks) fail by rising —
//! with triple tolerance for `p99` keys, whose
//! tail noise would otherwise make the gate cry wolf. Configuration fields
//! recorded alongside (shard counts, request totals) only fail the gate by
//! *disappearing*, which is exactly the protection they need.
//!
//! Usage:
//!
//! ```text
//! perf_gate [--baseline-dir DIR] [--fresh-dir DIR] [--tolerance FRACTION]
//!           [--update]
//! ```
//!
//! `--update` rewrites the baselines from the fresh records instead of
//! checking — for intentional perf-profile changes *and* for moving the
//! suite to different hardware: the baselines are absolute rates measured
//! on one environment, so a new class of CI runner needs its baselines
//! re-recorded once (commit the diff). The 30% tolerance absorbs run-to-run
//! noise on the same machine, not a hardware change.
//! Defaults: baselines from `crates/bench/baselines/`, fresh records from
//! the workspace root, tolerance `0.30`.

use std::path::PathBuf;
use std::process::ExitCode;

/// The tolerated fractional drop before a metric fails the gate.
const DEFAULT_TOLERANCE: f64 = 0.30;

struct Args {
    baseline_dir: PathBuf,
    fresh_dir: PathBuf,
    tolerance: f64,
    update: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline_dir: pfr_bench::workspace_root_path("crates/bench/baselines"),
        fresh_dir: pfr_bench::workspace_root_path(""),
        tolerance: DEFAULT_TOLERANCE,
        update: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value_of =
            |flag: &str| argv.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--baseline-dir" => args.baseline_dir = PathBuf::from(value_of("--baseline-dir")?),
            "--fresh-dir" => args.fresh_dir = PathBuf::from(value_of("--fresh-dir")?),
            "--tolerance" => {
                args.tolerance = value_of("--tolerance")?
                    .parse::<f64>()
                    .map_err(|e| format!("--tolerance expects a fraction: {e}"))?;
                if !(0.0..1.0).contains(&args.tolerance) {
                    return Err(format!(
                        "--tolerance must lie in [0, 1), got {}",
                        args.tolerance
                    ));
                }
            }
            "--update" => args.update = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

/// Baseline file names found in the baseline directory, sorted for stable
/// output.
fn baseline_files(args: &Args) -> Result<Vec<String>, String> {
    let entries = std::fs::read_dir(&args.baseline_dir)
        .map_err(|e| format!("cannot read {}: {e}", args.baseline_dir.display()))?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines in {}",
            args.baseline_dir.display()
        ));
    }
    Ok(names)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let mut all_green = true;
    for name in baseline_files(&args)? {
        let baseline_path = args.baseline_dir.join(&name);
        let fresh_path = args.fresh_dir.join(&name);
        let fresh_text = std::fs::read_to_string(&fresh_path).map_err(|e| {
            format!(
                "fresh record {} missing (did the bench step run?): {e}",
                fresh_path.display()
            )
        })?;
        if args.update {
            std::fs::copy(&fresh_path, &baseline_path)
                .map_err(|e| format!("updating {} failed: {e}", baseline_path.display()))?;
            println!(
                "perf_gate: updated baseline {name} from {}",
                fresh_path.display()
            );
            continue;
        }
        let baseline_text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
        let baseline = pfr_bench::parse_flat_json(&baseline_text);
        if baseline.is_empty() {
            return Err(format!(
                "{} holds no numeric metrics",
                baseline_path.display()
            ));
        }
        let fresh = pfr_bench::parse_flat_json(&fresh_text);
        let failures = pfr_bench::regressions(&baseline, &fresh, args.tolerance);
        if failures.is_empty() {
            println!(
                "perf_gate: {name} ok ({} metrics within {:.0}% of baseline)",
                baseline.len(),
                100.0 * args.tolerance
            );
        } else {
            all_green = false;
            for failure in failures {
                eprintln!("perf_gate: {name}: {failure}");
            }
        }
    }
    Ok(all_green)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("perf_gate: FAILED — a recorded metric regressed beyond tolerance");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("perf_gate: error: {message}");
            ExitCode::FAILURE
        }
    }
}
