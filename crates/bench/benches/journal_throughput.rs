//! Write-ahead journal throughput: append rate under each fsync policy,
//! single-append latency under the durable (`PerRecord`) policy, and the
//! replay rate recovery pays at startup.
//!
//! The interesting spread is *policy cost*: `Never` measures the frame
//! encoding + OS write path alone, `Interval` adds a clock-driven fsync
//! every few milliseconds, and `PerRecord` pays one fsync per acknowledged
//! append — group commit amortizes that fsync across whatever batch has
//! queued behind it, which the concurrent-appender measurement shows as
//! appends-per-fsync > 1. Results are recorded to `BENCH_journal.json` and
//! gated by `perf_gate` against the checked-in baseline, like the GEMM,
//! serve and router benches.

use criterion::{criterion_group, criterion_main, Criterion};
use pfr_journal::{FsyncPolicy, Journal, JournalConfig, Record};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Appends per measured repetition.
const RECORDS: usize = 512;

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "pfr_journal_bench_{tag}_{}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: PathBuf, fsync: FsyncPolicy) -> JournalConfig {
    let mut config = JournalConfig::new(dir);
    config.fsync = fsync;
    config
}

/// A request-shaped record: a SCORE with a typical feature arity.
fn score_record(i: usize) -> Record {
    Record::Score {
        model: "bench".to_string(),
        features: vec![i as f64, 0.25 * i as f64, -1.5, 0.0, 42.0],
    }
}

/// Appends `RECORDS` records through a fresh journal under `fsync`;
/// returns the append rate in records/sec.
fn append_rate(fsync: FsyncPolicy) -> f64 {
    let dir = scratch_dir("rate");
    let rate = pfr_bench::measure_rate(8, RECORDS, || {
        let journal = Journal::open(config(dir.clone(), fsync)).unwrap();
        for i in 0..RECORDS {
            black_box(journal.append(&score_record(i)).unwrap());
        }
        journal.close();
    });
    let _ = std::fs::remove_dir_all(&dir);
    rate
}

fn bench_journal(c: &mut Criterion) {
    // Criterion timings for the non-durable append path and for replay.
    let mut group = c.benchmark_group("journal_throughput");
    group.sample_size(10);
    group.bench_function("append_512_no_fsync", |bench| {
        let dir = scratch_dir("criterion");
        bench.iter(|| {
            let journal = Journal::open(config(dir.clone(), FsyncPolicy::Never)).unwrap();
            for i in 0..RECORDS {
                black_box(journal.append(&score_record(i)).unwrap());
            }
            journal.close();
        });
        let _ = std::fs::remove_dir_all(&dir);
    });
    let replay_dir_path = scratch_dir("replay");
    {
        let journal = Journal::open(config(replay_dir_path.clone(), FsyncPolicy::Never)).unwrap();
        for i in 0..RECORDS {
            journal.append(&score_record(i)).unwrap();
        }
        journal.close();
    }
    group.bench_function("replay_512", |bench| {
        bench.iter(|| {
            let mut seen = 0u64;
            let summary = pfr_journal::replay_dir(&replay_dir_path, |_, record| {
                black_box(&record);
                seen += 1;
            })
            .unwrap();
            assert_eq!(seen, RECORDS as u64);
            black_box(summary)
        });
    });
    group.finish();

    // Explicit rates per fsync policy — the recorded perf trajectory.
    println!("journal_throughput: append rate by fsync policy ({RECORDS} records/rep)");
    let never = append_rate(FsyncPolicy::Never);
    println!("  Never:          {never:>12.0} appends/s");
    let interval = append_rate(FsyncPolicy::Interval(Duration::from_millis(2)));
    println!("  Interval(2ms):  {interval:>12.0} appends/s");
    let per_record = append_rate(FsyncPolicy::PerRecord);
    println!("  PerRecord:      {per_record:>12.0} appends/s");

    // Durable-append latency distribution: one sample = one acknowledged
    // (written + fsynced) append, the price a journaling server adds to a
    // request under the default policy.
    let dir = scratch_dir("latency");
    let journal = Journal::open(config(dir.clone(), FsyncPolicy::PerRecord)).unwrap();
    let mut next = 0usize;
    let (p50_us, p99_us) = pfr_bench::measure_latency_percentiles(2048, || {
        black_box(journal.append(&score_record(next)).unwrap());
        next += 1;
    });
    // The journal's own lock-free fsync-latency histogram (the same series
    // it exposes as `pfr_journal_fsync_ns` via METRICS) saw every one of
    // those fsyncs — record its p99 too, isolating the sync cost from the
    // frame-encoding and write cost the append-level numbers include.
    let fsync_snap = journal.stats().fsync_histogram().snapshot();
    let fsync_p99_us = fsync_snap.p99() as f64 / 1e3;
    println!(
        "  durable append latency: p50 {p50_us:.3}us  p99 {p99_us:.3}us \
         (fsync alone: p99 {fsync_p99_us:.3}us over {} fsyncs)",
        fsync_snap.count
    );
    journal.close();
    let _ = std::fs::remove_dir_all(&dir);

    // Group commit under contention: concurrent appenders share fsyncs, so
    // the journal acknowledges more appends than it syncs. Printed for the
    // trajectory; not gated — the amortization factor depends on fsync
    // timing noise the 30% gate would misread.
    let dir = scratch_dir("group");
    let journal = Arc::new(Journal::open(config(dir.clone(), FsyncPolicy::PerRecord)).unwrap());
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let journal = Arc::clone(&journal);
            std::thread::spawn(move || {
                for i in 0..RECORDS / 4 {
                    journal.append(&score_record(t * 1000 + i)).unwrap();
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().unwrap();
    }
    let stats = journal.stats();
    let amortization = stats.appends() as f64 / stats.fsyncs().max(1) as f64;
    println!(
        "  group commit: {} appends / {} fsyncs from 4 threads ({amortization:.2} appends/fsync)",
        stats.appends(),
        stats.fsyncs()
    );
    match Arc::try_unwrap(journal) {
        Ok(journal) => journal.close(),
        Err(_) => unreachable!("appender threads joined"),
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Replay rate: what recovery costs per journaled record.
    let replay_per_sec = pfr_bench::measure_rate(8, RECORDS, || {
        let mut seen = 0u64;
        pfr_journal::replay_dir(&replay_dir_path, |_, record| {
            black_box(&record);
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, RECORDS as u64);
    });
    println!("  replay:         {replay_per_sec:>12.0} records/s");
    let _ = std::fs::remove_dir_all(&replay_dir_path);

    pfr_bench::write_bench_json(
        "BENCH_journal.json",
        "journal_throughput",
        &[
            ("records", RECORDS as f64),
            ("never_append_per_sec", never),
            ("interval_append_per_sec", interval),
            ("per_record_append_per_sec", per_record),
            ("replay_per_sec", replay_per_sec),
            // `_us` suffix = latency: perf_gate fails these for *rising*.
            ("durable_append_p50_us", p50_us),
            ("durable_append_p99_us", p99_us),
            // The fsync component alone, read from the journal's own
            // `pfr_journal_fsync_ns` histogram (p99-family: triple slack).
            ("journal_fsync_p99_us", fsync_p99_us),
        ],
    );
}

criterion_group!(journal_throughput, bench_journal);
criterion_main!(journal_throughput);
