//! Serving throughput: micro-batched scoring vs. one-vector-at-a-time.
//!
//! Scores the same 256 request vectors through a `ServableModel` at batch
//! sizes 1, 8 and 64. The work per vector is identical; what changes is how
//! much per-call overhead (matrix assembly, standardize/project/classify
//! dispatch) amortizes across a batch — the reason `pfr-serve` coalesces
//! requests before touching the linear-algebra kernels. Besides the
//! Criterion timings, the bench prints an explicit requests/sec comparison
//! (plus the score-cache hit rate of a server-shaped replay of the request
//! stream) and records it to `BENCH_serve.json` at the workspace root, the
//! same way the router bench records `BENCH_router.json` — CI uploads both
//! and gates on them via `perf_gate`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfr_core::persistence::{ClassifierSection, ModelBundle, StandardizerParams};
use pfr_core::{Pfr, PfrConfig};
use pfr_data::synthetic;
use pfr_linalg::stats::Standardizer;
use pfr_linalg::Matrix;
use pfr_opt::LogisticRegression;
use pfr_serve::{Frontend, ScoreCache, ScoreKey, ServableModel, Server, ServerConfig};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Number of request vectors scored per measured iteration.
const TOTAL_REQUESTS: usize = 256;

/// Trains a small fair pipeline on synthetic data and packages it the way a
/// decision service would receive it.
fn servable_model() -> (ServableModel, Vec<Vec<f64>>) {
    let ds = synthetic::generate_default(31).expect("synthetic data generates");
    let raw = ds.features();
    let (standardizer, x) = Standardizer::fit_transform(raw).expect("standardization succeeds");
    let (x_graph, wx, wf) = pfr_bench::bench_setup(&ds, 10, 5);
    assert_eq!(x.shape(), x_graph.shape());
    let model = Pfr::new(PfrConfig {
        gamma: 0.5,
        dim: 2,
        ..PfrConfig::default()
    })
    .fit(&x, &wx, &wf)
    .expect("PFR fits");
    let z = model.transform(&x).expect("transform succeeds");
    let mut clf = LogisticRegression::default();
    clf.fit(&z, ds.labels()).expect("classifier fits");
    let bundle = ModelBundle {
        model,
        standardizer: Some(StandardizerParams {
            means: standardizer.means().to_vec(),
            stds: standardizer.stds().to_vec(),
        }),
        classifier: Some(ClassifierSection {
            threshold: 0.5,
            text: clf.to_text().expect("classifier serializes"),
        }),
    };
    let servable = ServableModel::from_bundle("bench@1", &bundle).expect("bundle materializes");
    let requests: Vec<Vec<f64>> = (0..TOTAL_REQUESTS)
        .map(|i| raw.row(i % raw.rows()).to_vec())
        .collect();
    (servable, requests)
}

/// Scores all request vectors in chunks of `batch_size`; returns the scores
/// so the optimizer cannot elide the work.
fn score_all(model: &ServableModel, requests: &[Vec<f64>], batch_size: usize) -> Vec<f64> {
    let cols = requests[0].len();
    let mut scores = Vec::with_capacity(requests.len());
    for chunk in requests.chunks(batch_size) {
        let mut data = Vec::with_capacity(chunk.len() * cols);
        for r in chunk {
            data.extend_from_slice(r);
        }
        let batch = Matrix::from_vec(chunk.len(), cols, data).expect("chunk forms a matrix");
        scores.extend(model.score_batch(&batch).expect("scoring succeeds"));
    }
    scores
}

fn bench_batched_scoring(c: &mut Criterion) {
    let (model, requests) = servable_model();

    // Sanity: batching must not change a single bit of any score.
    let unbatched = score_all(&model, &requests, 1);
    for &b in &[8usize, 64] {
        let batched = score_all(&model, &requests, b);
        assert_eq!(unbatched.len(), batched.len());
        for (a, z) in unbatched.iter().zip(batched.iter()) {
            assert_eq!(a.to_bits(), z.to_bits(), "batch size {b} changed a score");
        }
    }

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);
    for &batch_size in &[1usize, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("score_256_requests", batch_size),
            &batch_size,
            |bench, &batch_size| {
                bench.iter(|| score_all(black_box(&model), black_box(&requests), batch_size))
            },
        );
    }
    group.finish();

    // Explicit requests/sec comparison (the acceptance check for batching),
    // recorded as the PR-over-PR serving perf trajectory.
    println!("serve_throughput: requests/sec by batch size over {TOTAL_REQUESTS} requests");
    let mut rps = Vec::new();
    for &batch_size in &[1usize, 8, 64] {
        let requests_per_sec = pfr_bench::measure_rate(20, TOTAL_REQUESTS, || {
            black_box(score_all(&model, &requests, batch_size));
        });
        println!("  B={batch_size:>2}: {requests_per_sec:>12.0} req/s");
        rps.push((batch_size, requests_per_sec));
    }
    let b1 = rps.iter().find(|(b, _)| *b == 1).expect("B=1 measured").1;
    let b64 = rps.iter().find(|(b, _)| *b == 64).expect("B=64 measured").1;
    println!(
        "  batched (B=64) is {:.2}x the unbatched (B=1) throughput",
        b64 / b1
    );

    // Per-request latency distribution (ROADMAP eval item: record p50/p99,
    // not just throughput). One sample = one single-vector scoring pass —
    // the unit of work a SCORE cache miss pays on the worker pool; the
    // request stream is cycled so the distribution covers every vector.
    let mut next = 0;
    let (p50_us, p99_us, p999_us) = pfr_bench::measure_latency_tail(8192, || {
        let features = &requests[next % requests.len()];
        next += 1;
        black_box(model.score_one(features).expect("scoring succeeds"));
    });
    println!("  score latency: p50 {p50_us:.3}us  p99 {p99_us:.3}us  p999 {p999_us:.3}us");

    // Replay the request stream through a score cache the way the server's
    // SCORE verb does: the stream revisits each distinct vector, so steady
    // state should hit for every repeat. The hit *rate* is a correctness-
    // shaped serving metric (a cache regression shows up here long before
    // it shows up as latency), so it is gated alongside the throughputs.
    let mut cache = ScoreCache::new(TOTAL_REQUESTS * 2);
    let mut hits = 0u64;
    let mut misses = 0u64;
    let passes = 4;
    for _ in 0..passes {
        for features in &requests {
            let key =
                ScoreKey::new(model.generation(), features).expect("request vectors carry no NaN");
            match cache.get(&key) {
                Some(score) => {
                    hits += 1;
                    black_box(score);
                }
                None => {
                    misses += 1;
                    let score = model.score_one(features).expect("scoring succeeds");
                    cache.insert(key, score);
                }
            }
        }
    }
    let hit_rate = hits as f64 / (hits + misses) as f64;
    println!(
        "  cache: {hits} hits / {misses} misses over {passes} passes (hit rate {hit_rate:.3})"
    );

    // Overload shedding: a reactor front end with a hard connection limit
    // closes surplus accepts with one `BUSY` line instead of queueing them
    // into collapse. The measurement is deterministic — admit exactly
    // `limit` connections (each confirmed with a round trip), then attempt
    // the same number again and count the sheds — so the recorded rate is
    // exactly 0.5 and a regression means the limiter broke, not that the
    // machine was slow.
    let limit = 8usize;
    let server = Server::spawn(ServerConfig {
        frontend: Frontend::reactor(1),
        max_connections: Some(limit),
        ..ServerConfig::default()
    })
    .expect("shed server spawns");
    let addr = server.addr();
    let admitted: Vec<(BufReader<TcpStream>, TcpStream)> = (0..limit)
        .map(|_| {
            let stream = TcpStream::connect(addr).expect("admitted client connects");
            stream.set_nodelay(true).expect("nodelay sets");
            let mut reader = BufReader::new(stream.try_clone().expect("stream clones"));
            let mut writer = stream;
            // A full round trip proves the reactor has registered the
            // connection before the next admission attempt.
            writeln!(writer, "STATS").expect("request writes");
            let mut response = String::new();
            reader.read_line(&mut response).expect("response reads");
            assert!(response.starts_with("OK"), "{response}");
            (reader, writer)
        })
        .collect();
    let mut shed = 0usize;
    for _ in 0..limit {
        let stream = TcpStream::connect(addr).expect("surplus client connects");
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("shed line reads");
        if response.trim_end() == "BUSY" {
            shed += 1;
        }
    }
    let shed_rate = shed as f64 / (2 * limit) as f64;
    println!(
        "  shedding: {shed}/{limit} surplus connections turned away at a {limit}-connection limit \
         (shed rate {shed_rate:.3})"
    );
    assert_eq!(server.stats().sheds(), shed as u64);
    drop(admitted);
    server.shutdown();

    pfr_bench::write_bench_json(
        "BENCH_serve.json",
        "serve_throughput",
        &[
            ("requests", TOTAL_REQUESTS as f64),
            ("b1_req_per_sec", b1),
            ("b64_req_per_sec", b64),
            ("batch_speedup", b64 / b1),
            ("cache_hit_rate", hit_rate),
            // `_us` suffix = latency: perf_gate fails these for *rising*.
            ("score_p50_us", p50_us),
            ("score_p99_us", p99_us),
            // The extreme tail (perf_gate gives p99-family keys triple
            // slack — it is the noisiest number in the suite).
            ("score_p999_us", p999_us),
            // Deterministic overload-shedding check: exactly half of 2x
            // the connection limit must be turned away with BUSY.
            ("shed_rate", shed_rate),
        ],
    );
}

criterion_group!(serve_throughput, bench_batched_scoring);
criterion_main!(serve_throughput);
