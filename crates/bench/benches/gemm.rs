//! GEMM kernel throughput: the blocked, multi-threaded `pfr_linalg::gemm`
//! kernel against the retained naive `i-k-j` reference.
//!
//! Measures square `f64` products at 64/256/512/1024, single-threaded and
//! at the machine's parallelism, in GFLOP/s (`2·n³` flops per product).
//! Every dense hot path in the system — PFR's `Xᵀ L X` assembly, PCA/eigen,
//! the serving tier's micro-batched scoring pass — funnels through this
//! kernel, so its GFLOP/s line is the single most leveraged perf number in
//! the workspace. Besides the Criterion timings, the bench prints the
//! explicit GFLOP/s table and records it to `BENCH_gemm.json` at the
//! workspace root, which CI's `perf_gate` step compares against the
//! checked-in baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfr_linalg::gemm::{gemm_into, MatRef};
use pfr_linalg::Matrix;
use std::hint::black_box;
use std::num::NonZeroUsize;

/// Square sizes measured and recorded.
const SIZES: [usize; 4] = [64, 256, 512, 1024];
/// The size the ≥3x blocked-vs-naive acceptance is asserted at.
const SPEEDUP_SIZE: usize = 512;

/// Deterministic pseudo-random matrix (xorshift, same generator as the
/// eigensolver benches).
fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches the generated buffer")
}

/// One blocked product with a forced worker count, returning the output so
/// the optimizer cannot elide it.
fn blocked(a: &Matrix, b: &Matrix, threads: usize) -> Vec<f64> {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = vec![0.0f64; m * n];
    gemm_into(
        m,
        n,
        k,
        MatRef::new(a.as_slice(), k, 1),
        MatRef::new(b.as_slice(), n, 1),
        &mut c,
        Some(NonZeroUsize::new(threads).expect("thread count is non-zero")),
    );
    c
}

/// GFLOP/s of `f` at size `n`, with repetitions scaled so every size runs a
/// comparable wall-clock slice.
fn gflops(n: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let flops = 2.0 * (n as f64).powi(3);
    pfr_bench::measure_rate(reps, 1, &mut f) * flops / 1e9
}

/// Repetition count keeping each measurement near a fixed flop budget.
fn reps_for(n: usize, budget_flops: f64) -> usize {
    (budget_flops / (2.0 * (n as f64).powi(3))).ceil().max(1.0) as usize
}

fn bench_gemm(c: &mut Criterion) {
    let hw_threads = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);

    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for &n in &SIZES {
        let a = random_matrix(n, n, 42 + n as u64);
        let b = random_matrix(n, n, 1042 + n as u64);
        group.bench_with_input(BenchmarkId::new("blocked_1t", n), &n, |bench, _| {
            bench.iter(|| blocked(black_box(&a), black_box(&b), 1))
        });
        if hw_threads > 1 {
            group.bench_with_input(
                BenchmarkId::new(format!("blocked_{hw_threads}t"), n),
                &n,
                |bench, _| bench.iter(|| blocked(black_box(&a), black_box(&b), hw_threads)),
            );
        }
        if n <= SPEEDUP_SIZE {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
                bench.iter(|| black_box(&a).matmul_naive(black_box(&b)).unwrap())
            });
        }
    }
    group.finish();

    // Explicit GFLOP/s table, recorded as the PR-over-PR perf trajectory.
    println!("gemm: square f64 products, GFLOP/s (2n^3 flops per product)");
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for &n in &SIZES {
        let a = random_matrix(n, n, 42 + n as u64);
        let b = random_matrix(n, n, 1042 + n as u64);
        let reps = reps_for(n, 2e9);
        let one = gflops(n, reps, || {
            black_box(blocked(&a, &b, 1));
        });
        metrics.push((format!("gflops_{n}_threads1"), one));
        if hw_threads > 1 {
            let many = gflops(n, reps, || {
                black_box(blocked(&a, &b, hw_threads));
            });
            println!("  n={n:>5}: 1 thread {one:>7.2}   {hw_threads} threads {many:>7.2}");
            // The key deliberately does not embed the core count: a record
            // produced on an M-core machine must stay key-compatible with a
            // baseline produced on an N-core one, or perf_gate would report
            // the metric as disappeared instead of comparing it.
            metrics.push((format!("gflops_{n}_threads_max"), many));
        } else {
            println!("  n={n:>5}: 1 thread {one:>7.2}");
        }
    }

    // Blocked (auto threads) vs the seed's naive i-k-j loop at 512.
    let n = SPEEDUP_SIZE;
    let a = random_matrix(n, n, 42 + n as u64);
    let b = random_matrix(n, n, 1042 + n as u64);
    let reps = reps_for(n, 2e9);
    let blocked_rate = gflops(n, reps, || {
        black_box(a.matmul(&b).unwrap());
    });
    let naive_rate = gflops(n, reps_for(n, 5e8), || {
        black_box(a.matmul_naive(&b).unwrap());
    });
    let speedup = blocked_rate / naive_rate;
    println!(
        "  blocked vs naive at {n}: {blocked_rate:.2} vs {naive_rate:.2} GFLOP/s ({speedup:.2}x)"
    );
    metrics.push((format!("naive_gflops_{n}"), naive_rate));
    metrics.push((format!("blocked_vs_naive_speedup_{n}"), speedup));

    let metric_refs: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    pfr_bench::write_bench_json("BENCH_gemm.json", "gemm", &metric_refs);
}

criterion_group!(gemm, bench_gemm);
criterion_main!(gemm);
