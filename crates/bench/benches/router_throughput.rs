//! Routing-tier throughput: scores routed through a 3-shard local cluster,
//! single-vector vs. scatter-gathered batches.
//!
//! The interesting quantity is the *router overhead*: the backends cache
//! repeated vectors, so the measured path is parse → route → pool → TCP →
//! cache-hit → reply — the part the routing tier adds on top of `pfr-serve`
//! (whose own scoring throughput `serve_throughput` measures). With the
//! router-side hot-key cache (on by default) repeated vectors short-circuit
//! before the network hop entirely; the recorded `hot_cache_hit_rate` is
//! the fraction of rows that did, which `perf_gate` guards against
//! regressing. The bench also times how long a brand-new router takes to
//! bootstrap the replicated placement catalog from a single seed address
//! (`catalog_convergence_ms` — the recovery cost of a restarted router).
//! Besides the Criterion timings, the bench prints requests/sec and
//! writes everything to `BENCH_router.json` at the workspace root so the
//! perf trajectory of the tier is recorded PR over PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfr_core::persistence::{ClassifierSection, ModelBundle, StandardizerParams};
use pfr_core::{Pfr, PfrConfig};
use pfr_data::synthetic;
use pfr_linalg::stats::Standardizer;
use pfr_opt::LogisticRegression;
use pfr_router::{LocalCluster, Router, RouterConfig};
use pfr_serve::{Frontend, ServerConfig};
use std::hint::black_box;

/// Request vectors scored per measured iteration.
const TOTAL_REQUESTS: usize = 256;

/// Scatter-gather batch size for the batched path.
const BATCH: usize = 64;

/// Trains a small fair pipeline and returns its deployable bundle plus the
/// raw request vectors a client would send.
fn bundle_and_requests() -> (ModelBundle, Vec<Vec<f64>>) {
    let ds = synthetic::generate_default(47).expect("synthetic data generates");
    let raw = ds.features();
    let (standardizer, x) = Standardizer::fit_transform(raw).expect("standardization succeeds");
    let (x_graph, wx, wf) = pfr_bench::bench_setup(&ds, 10, 5);
    assert_eq!(x.shape(), x_graph.shape());
    let model = Pfr::new(PfrConfig {
        gamma: 0.5,
        dim: 2,
        ..PfrConfig::default()
    })
    .fit(&x, &wx, &wf)
    .expect("PFR fits");
    let z = model.transform(&x).expect("transform succeeds");
    let mut clf = LogisticRegression::default();
    clf.fit(&z, ds.labels()).expect("classifier fits");
    let bundle = ModelBundle {
        model,
        standardizer: Some(StandardizerParams {
            means: standardizer.means().to_vec(),
            stds: standardizer.stds().to_vec(),
        }),
        classifier: Some(ClassifierSection {
            threshold: 0.5,
            text: clf.to_text().expect("classifier serializes"),
        }),
    };
    let requests: Vec<Vec<f64>> = (0..TOTAL_REQUESTS)
        .map(|i| raw.row(i % raw.rows()).to_vec())
        .collect();
    (bundle, requests)
}

/// Routes every request one vector at a time.
fn route_singles(router: &Router, requests: &[Vec<f64>]) -> Vec<f64> {
    requests
        .iter()
        .map(|row| router.score("bench", row).expect("routed score succeeds"))
        .collect()
}

/// Routes every request in scatter-gathered chunks of `batch`.
fn route_batches(router: &Router, requests: &[Vec<f64>], batch: usize) -> Vec<f64> {
    let mut scores = Vec::with_capacity(requests.len());
    for chunk in requests.chunks(batch) {
        scores.extend(
            router
                .score_batch("bench", chunk)
                .expect("routed batch succeeds"),
        );
    }
    scores
}

fn bench_router_throughput(c: &mut Criterion) {
    let (bundle, requests) = bundle_and_requests();
    let mut cluster = LocalCluster::boot(3, ServerConfig::default()).expect("local cluster boots");
    // The network-path router: hot-key cache off, so the recorded
    // `single_req_per_sec`/`batch64_req_per_sec`/latency metrics keep
    // measuring the tier's per-request network overhead (comparable PR
    // over PR). The production-default hot path is measured separately
    // below on `hot_router`.
    let router = cluster
        .router(RouterConfig {
            hot_cache_capacity: 0,
            ..RouterConfig::default()
        })
        .expect("router connects");
    let hot_router = cluster
        .router(RouterConfig::default())
        .expect("hot router connects");
    cluster
        .place(&router, "bench", &bundle)
        .expect("placement succeeds");
    router.verify("bench").expect("replicas agree on content");
    // Converge the hot router on the post-placement catalog *before*
    // anything is measured: its first sight of the "bench" placement
    // retires the model's hot-cache id (the router cannot know the
    // content it cached against matches the adopted digest), and left to
    // the background worker that adoption lands at a random point inside
    // the measurement — flushing a warm cache mid-run and turning the
    // hot-path figure into a timing lottery. Steady state is what this
    // bench records; the cold-convergence cost has its own metric below.
    hot_router.sync_now();
    assert_eq!(hot_router.catalog_version(), router.catalog_version());

    // Sanity: routing must not change a single bit of any score — with or
    // without the hot-key cache in front of the hop.
    let singles = route_singles(&router, &requests);
    let batched = route_batches(&router, &requests, BATCH);
    let hot = route_singles(&hot_router, &requests);
    for (i, ((a, b), h)) in singles
        .iter()
        .zip(batched.iter())
        .zip(hot.iter())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "scatter changed score {i}");
        assert_eq!(a.to_bits(), h.to_bits(), "hot-key cache changed score {i}");
    }

    let mut group = c.benchmark_group("router_throughput");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("route_256_requests", "single"),
        &(),
        |bench, ()| bench.iter(|| route_singles(black_box(&router), black_box(&requests))),
    );
    group.bench_with_input(
        BenchmarkId::new("route_256_requests", format!("batch{BATCH}")),
        &(),
        |bench, ()| bench.iter(|| route_batches(black_box(&router), black_box(&requests), BATCH)),
    );
    group.finish();

    // Explicit requests/sec, also persisted as the PR-over-PR perf record.
    let single = pfr_bench::measure_rate(10, TOTAL_REQUESTS, || {
        black_box(route_singles(&router, &requests));
    });
    let batch = pfr_bench::measure_rate(10, TOTAL_REQUESTS, || {
        black_box(route_batches(&router, &requests, BATCH));
    });
    println!("router_throughput: 3 shards, replication 2, {TOTAL_REQUESTS} requests");
    println!("  single-vector: {single:>12.0} req/s");
    println!(
        "  batch={BATCH}:    {batch:>12.0} req/s ({:.2}x)",
        batch / single
    );

    // Per-request routed latency distribution (parse → route → pool → TCP →
    // cache-hit → reply): the full client-visible round trip through the
    // tier, where tail effects (a slow replica, a refused socket, breaker
    // probation) actually live.
    let mut next = 0;
    let (p50_us, p99_us) = pfr_bench::measure_latency_percentiles(2048, || {
        let row = &requests[next % requests.len()];
        next += 1;
        black_box(router.score("bench", row).expect("routed score succeeds"));
    });
    println!("  routed latency: p50 {p50_us:.1}us  p99 {p99_us:.1}us");

    // The production-default hot path: repeated vectors answer at the
    // router without the network hop, so the steady-state hit rate for
    // this cyclic workload sits near 1.0 and throughput is bounded by the
    // cache lookup, not the socket.
    let hot_single = pfr_bench::measure_rate(10, TOTAL_REQUESTS, || {
        black_box(route_singles(&hot_router, &requests));
    });
    let hot_hits = hot_router.stats().hot_cache_hits() as f64;
    let hot_misses = hot_router.stats().hot_cache_misses() as f64;
    let hot_rate = hot_hits / (hot_hits + hot_misses).max(1.0);
    println!(
        "  hot-key cache: {hot_single:>12.0} req/s at {:.1}% hit rate ({hot_hits:.0} hits / {hot_misses:.0} misses)",
        hot_rate * 100.0
    );

    // Catalog convergence: wall-clock for a brand-new router connected to
    // ONE seed address to bootstrap the replicated placement catalog —
    // full roster, placements and content digests — and agree with the
    // incumbent router's catalog version. This is the recovery cost of a
    // hard-killed-and-restarted router; median of five cold bootstraps.
    let target = router.catalog_version();
    let mut bootstraps: Vec<f64> = (0..5)
        .map(|_| {
            let start = std::time::Instant::now();
            let fresh = Router::connect(
                &cluster.addrs()[..1],
                RouterConfig {
                    sync_interval: None,
                    ..RouterConfig::default()
                },
            )
            .expect("fresh router bootstraps");
            assert_eq!(
                fresh.catalog_version(),
                target,
                "bootstrap did not converge on the incumbent catalog"
            );
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let catalog_convergence_ms = pfr_bench::percentile(&mut bootstraps, 0.50);
    println!("  catalog convergence: {catalog_convergence_ms:.2}ms to bootstrap from one seed");

    // Multi-reactor scale-out: the same batched workload against backends
    // running a 4-thread reactor pool each. On a many-core runner the
    // wider pool lifts batched throughput (the acceptance bar is 1.5x on
    // a >= 4-core box); on a single-core runner the pool cannot add
    // parallelism and the recorded figure documents exactly that — the
    // metric is an honest measurement either way, gated only against
    // regressing relative to its own baseline.
    let mut pool_cluster = LocalCluster::boot(
        3,
        ServerConfig {
            frontend: Frontend::reactor(4),
            ..ServerConfig::default()
        },
    )
    .expect("multi-reactor cluster boots");
    let pool_router = pool_cluster
        .router(RouterConfig {
            hot_cache_capacity: 0,
            ..RouterConfig::default()
        })
        .expect("multi-reactor router connects");
    pool_cluster
        .place(&pool_router, "bench", &bundle)
        .expect("placement succeeds");
    let pooled = route_batches(&pool_router, &requests, BATCH);
    for (i, (a, b)) in singles.iter().zip(pooled.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "reactor pool changed score {i}");
    }
    let multi_reactor = pfr_bench::measure_rate(10, TOTAL_REQUESTS, || {
        black_box(route_batches(&pool_router, &requests, BATCH));
    });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "  4-reactor pool: {multi_reactor:>12.0} req/s batched ({:.2}x the 1-reactor figure, {cores} core(s))",
        multi_reactor / batch
    );

    pfr_bench::write_bench_json(
        "BENCH_router.json",
        "router_throughput",
        &[
            ("shards", 3.0),
            ("replication", 2.0),
            ("requests", TOTAL_REQUESTS as f64),
            ("single_req_per_sec", single),
            ("batch64_req_per_sec", batch),
            ("batch_speedup", batch / single),
            // `_us` suffix = latency: perf_gate fails these for *rising*.
            ("single_p50_us", p50_us),
            ("single_p99_us", p99_us),
            // A rate in [0, 1]: perf_gate fails it for dropping.
            ("hot_cache_hit_rate", hot_rate),
            ("hot_single_req_per_sec", hot_single),
            ("multi_reactor_req_per_sec", multi_reactor),
            // `_ms` suffix = wall-clock: perf_gate fails it for *rising*.
            ("catalog_convergence_ms", catalog_convergence_ms),
        ],
    );
}

criterion_group!(router_throughput, bench_router_throughput);
criterion_main!(router_throughput);
