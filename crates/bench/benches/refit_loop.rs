//! Online-refit loop costs: how fast the worker tails journal frames, what
//! a drift check costs per window, how much the warm-started PFR re-fit
//! saves over a cold fit on the same window, and what the shadow gate adds
//! before a swap. Results land in `BENCH_refit.json` and are gated by
//! `perf_gate` against the checked-in baseline.
//!
//! The wide feature count (`M = 96`) is deliberate: the cold path pays a
//! dense `O(M³)` eigendecomposition, while the warm path refines the
//! serving projection with a few GEMM-sized subspace sweeps — the
//! `warm_speedup_x` metric (higher is better, floor enforced by the
//! baseline) is the whole reason the refit worker can keep up online.

use criterion::{criterion_group, criterion_main, Criterion};
use pfr_core::persistence::{ClassifierSection, ModelBundle, StandardizerParams};
use pfr_core::{Pfr, PfrConfig, PfrModel};
use pfr_graph::{fairness, KnnGraphBuilder, SparseGraph};
use pfr_journal::{FsyncPolicy, Journal, JournalConfig, JournalCursor, Record};
use pfr_linalg::stats::Standardizer;
use pfr_linalg::Matrix;
use pfr_opt::{LogisticRegression, LogisticRegressionConfig};
use pfr_refit::{DriftConfig, DriftDetector, GateConfig, ShadowGate};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Window rows / feature arity of the benchmark traffic.
const N: usize = 256;
const M: usize = 96;
const DIM: usize = 4;
const KNN_K: usize = 8;
/// Journal frames per tailing repetition.
const FRAMES: usize = 2048;

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("pfr_refit_bench_{tag}_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Traffic with a protected flag in column 0; the remaining features load
/// onto two latent factors with fixed per-column loadings and per-column
/// noise scales. The varying loadings give the PFR objective a *structured*
/// spectrum (distinct eigenvalues, real gaps) like actual tabular data —
/// with exchangeable iid columns the bottom-`d` subspace is ill-conditioned
/// and no warm start could help. `shift` is the drift knob.
fn traffic(n: usize, seed: u64, shift: f64) -> Matrix {
    let mut state = seed.max(1);
    let mut uniform = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state as f64 / u64::MAX as f64
    };
    // Column structure is fixed across seeds: stationary and drifted windows
    // share the same feature semantics.
    let mut cstate = 0x51ab_c0ffee_u64;
    let mut cuniform = move || {
        cstate ^= cstate << 13;
        cstate ^= cstate >> 7;
        cstate ^= cstate << 17;
        cstate as f64 / u64::MAX as f64
    };
    let loadings: Vec<(f64, f64, f64)> = (0..M)
        .map(|j| {
            (
                0.5 + cuniform(),                 // factor-1 loading
                cuniform() - 0.5,                 // factor-2 loading
                0.05 + 0.9 * j as f64 / M as f64, // noise scale
            )
        })
        .collect();
    let mut w = Matrix::zeros(n, M);
    for i in 0..n {
        let blob = if uniform() > 0.5 { 1.0 } else { -1.0 };
        let trend = uniform() - 0.5;
        w[(i, 0)] = (i % 2) as f64;
        for j in 1..M {
            let (a, b, c) = loadings[j];
            w[(i, j)] = shift + a * blob + b * trend + c * (uniform() - 0.5);
        }
    }
    w
}

/// Standardized features plus the two graphs the PFR objective couples.
fn training_inputs(window: &Matrix) -> (Matrix, SparseGraph, SparseGraph) {
    let (_, x) = Standardizer::fit_transform(window).unwrap();
    let wx = KnnGraphBuilder::new(KNN_K).build(&x).unwrap();
    let groups: Vec<usize> = (0..window.rows())
        .map(|i| (window[(i, 0)] > 0.5) as usize)
        .collect();
    let ranking: Vec<f64> = (0..window.rows()).map(|i| window[(i, 1)]).collect();
    let wf = fairness::between_group_quantile_graph(&groups, &ranking, 5).unwrap();
    (x, wx, wf)
}

/// Serving bundle fit cold on stationary traffic: the warm-start seed.
fn serving_bundle(window: &Matrix) -> (ModelBundle, PfrModel) {
    let (standardizer, x) = Standardizer::fit_transform(window).unwrap();
    let (_, wx, wf) = training_inputs(window);
    let model = pfr_config().fit(&x, &wx, &wf).unwrap();
    let z = model.transform(&x).unwrap();
    let labels: Vec<u8> = (0..window.rows())
        .map(|i| (window[(i, 1)] > 0.0) as u8)
        .collect();
    let mut head = LogisticRegression::new(LogisticRegressionConfig::default());
    head.fit(&z, &labels).unwrap();
    let bundle = ModelBundle {
        model: model.clone(),
        standardizer: Some(StandardizerParams {
            means: standardizer.means().to_vec(),
            stds: standardizer.stds().to_vec(),
        }),
        classifier: Some(ClassifierSection {
            threshold: 0.5,
            text: head.to_text().unwrap(),
        }),
    };
    (bundle, model)
}

fn pfr_config() -> Pfr {
    Pfr::new(PfrConfig {
        gamma: 0.5,
        dim: DIM,
        ..PfrConfig::default()
    })
}

/// Best-of-`reps` wall clock in microseconds.
fn time_min_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn score_record(i: usize, window: &Matrix) -> Record {
    Record::Score {
        model: "bench".to_string(),
        features: window.row(i % window.rows()).to_vec(),
    }
}

fn bench_refit(c: &mut Criterion) {
    let stationary = traffic(N, 11, 0.0);
    let drifted = traffic(N, 47, 0.4);
    let (serving, serving_model) = serving_bundle(&stationary);
    let (x, wx, wf) = training_inputs(&drifted);

    // Criterion timing for the hot inner stage: the warm projection re-fit.
    let mut group = c.benchmark_group("refit_loop");
    group.sample_size(10);
    group.bench_function(format!("warm_fit_{N}x{M}_dim{DIM}"), |bench| {
        bench.iter(|| black_box(pfr_config().fit_warm(&x, &wx, &wf, &serving_model).unwrap()));
    });
    group.finish();

    println!("refit_loop: online refit stage costs ({N}x{M} window, dim {DIM})");

    // --- Frames tailed per second through the durable cursor. --------------
    let dir = scratch_dir("tail");
    {
        let mut config = JournalConfig::new(dir.clone());
        config.fsync = FsyncPolicy::Never;
        let journal = Journal::open(config).unwrap();
        for i in 0..FRAMES {
            journal.append(&score_record(i, &stationary)).unwrap();
        }
        journal.close();
    }
    let mut tail_rep = 0usize;
    let frames_per_sec = pfr_bench::measure_rate(8, FRAMES, || {
        tail_rep += 1;
        let mut cursor = JournalCursor::open(&dir, &format!("bench-{tail_rep}"), 1).unwrap();
        let mut seen = 0usize;
        while let Some(frame) = cursor.next().unwrap() {
            black_box(&frame);
            seen += 1;
        }
        assert_eq!(seen, FRAMES);
    });
    println!("  cursor tailing:  {frames_per_sec:>12.0} frames/s");
    let _ = std::fs::remove_dir_all(&dir);

    // --- Drift-check cost per window. --------------------------------------
    let mut detector = DriftDetector::from_standardizer(
        DriftConfig::default(),
        serving.standardizer.as_ref().unwrap(),
    )
    .unwrap();
    let reference: Vec<f64> = (0..N).map(|i| i as f64 / N as f64).collect();
    detector.set_reference_scores(reference.clone());
    let drift_check_us = time_min_us(16, || {
        black_box(detector.assess(&drifted, Some(&reference)).unwrap());
    });
    println!("  drift check:     {drift_check_us:>12.1} us/window");

    // --- Warm vs cold fit on the same drifted window. ----------------------
    let cold_fit_us = time_min_us(5, || {
        black_box(pfr_config().fit(&x, &wx, &wf).unwrap());
    });
    let warm_fit_us = time_min_us(5, || {
        black_box(pfr_config().fit_warm(&x, &wx, &wf, &serving_model).unwrap());
    });
    let warm_speedup = cold_fit_us / warm_fit_us;
    println!("  cold fit:        {cold_fit_us:>12.1} us");
    println!("  warm fit:        {warm_fit_us:>12.1} us  ({warm_speedup:.2}x speedup)");

    // --- Shadow-gate overhead per candidate. -------------------------------
    let candidate_text = {
        let engine = pfr_refit::RefitEngine::new(pfr_refit::RefitModelConfig {
            dim: DIM,
            knn_k: KNN_K,
            ..pfr_refit::RefitModelConfig::default()
        })
        .unwrap();
        engine.refit(&drifted, &serving).unwrap().bundle_text
    };
    let holdback = traffic(64, 91, 0.4);
    let gate = ShadowGate::new(GateConfig::default()).unwrap();
    let gate_overhead_us = time_min_us(16, || {
        black_box(gate.evaluate(&serving, &candidate_text, &holdback).unwrap());
    });
    println!("  shadow gate:     {gate_overhead_us:>12.1} us/candidate");

    pfr_bench::write_bench_json(
        "BENCH_refit.json",
        "refit_loop",
        &[
            ("window_rows", N as f64),
            ("features", M as f64),
            ("frames_tailed_per_sec", frames_per_sec),
            // `_us` suffix = cost: perf_gate fails these for *rising*.
            ("drift_check_us", drift_check_us),
            ("cold_fit_us", cold_fit_us),
            ("warm_fit_us", warm_fit_us),
            ("gate_overhead_us", gate_overhead_us),
            // Higher is better; the baseline enforces the >= 2x floor.
            ("warm_speedup_x", warm_speedup),
        ],
    );
}

criterion_group!(refit_loop, bench_refit);
criterion_main!(refit_loop);
