//! Micro-benchmarks of the substrates the PFR pipeline is built from,
//! including the eigensolver-choice ablation called out in DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfr_bench::{bench_setup, random_symmetric};
use pfr_core::{Pfr, PfrConfig};
use pfr_data::synthetic;
use pfr_graph::{KnnGraphBuilder, LaplacianKind};
use pfr_linalg::{Eigen, EigenMethod};
use pfr_opt::LogisticRegression;
use std::hint::black_box;

/// Jacobi vs. Householder+QL on symmetric matrices of growing size.
fn bench_eigensolvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigensolver_comparison");
    group.sample_size(10);
    for &n in &[10usize, 30, 60] {
        let a = random_symmetric(n, 42);
        group.bench_with_input(BenchmarkId::new("jacobi", n), &a, |b, a| {
            b.iter(|| Eigen::decompose_with(black_box(a), EigenMethod::Jacobi).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("tridiagonal_ql", n), &a, |b, a| {
            b.iter(|| Eigen::decompose_with(black_box(a), EigenMethod::TridiagonalQl).unwrap())
        });
    }
    group.finish();
}

/// Cost of building the k-NN similarity graph WX.
fn bench_knn_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_graph_construction");
    group.sample_size(10);
    for &n_per_group in &[100usize, 300] {
        let ds = synthetic::generate(&synthetic::SyntheticConfig {
            n_per_group,
            seed: 7,
            ..synthetic::SyntheticConfig::default()
        })
        .unwrap();
        let (x, _, _) = bench_setup(&ds, 10, 5);
        group.bench_with_input(BenchmarkId::from_parameter(2 * n_per_group), &x, |b, x| {
            b.iter(|| KnnGraphBuilder::new(10).build(black_box(x)).unwrap())
        });
    }
    group.finish();
}

/// Laplacian quadratic form Xᵀ L X without materializing L.
fn bench_quadratic_form(c: &mut Criterion) {
    let ds = synthetic::generate_default(9).unwrap();
    let (x, wx, wf) = bench_setup(&ds, 10, 10);
    let mut group = c.benchmark_group("laplacian_quadratic_form");
    group.sample_size(20);
    group.bench_function("wx_unnormalized", |b| {
        b.iter(|| {
            wx.quadratic_form(black_box(&x), LaplacianKind::Unnormalized)
                .unwrap()
        })
    });
    group.bench_function("wf_unnormalized", |b| {
        b.iter(|| {
            wf.quadratic_form(black_box(&x), LaplacianKind::Unnormalized)
                .unwrap()
        })
    });
    group.bench_function("wx_normalized", |b| {
        b.iter(|| {
            wx.quadratic_form(black_box(&x), LaplacianKind::SymmetricNormalized)
                .unwrap()
        })
    });
    group.finish();
}

/// Full PFR fit + transform on the synthetic dataset.
fn bench_pfr_fit(c: &mut Criterion) {
    let ds = synthetic::generate_default(11).unwrap();
    let (x, wx, wf) = bench_setup(&ds, 10, 10);
    let mut group = c.benchmark_group("pfr_fit");
    group.sample_size(20);
    for &gamma in &[0.0, 0.5, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &gamma, |b, &gamma| {
            b.iter(|| {
                let model = Pfr::new(PfrConfig {
                    gamma,
                    dim: 2,
                    ..PfrConfig::default()
                })
                .fit(black_box(&x), &wx, &wf)
                .unwrap();
                model.transform(&x).unwrap()
            })
        });
    }
    group.finish();
}

/// Downstream logistic-regression training (Newton/IRLS).
fn bench_logistic_regression(c: &mut Criterion) {
    let ds = synthetic::generate_default(13).unwrap();
    let (x, _, _) = bench_setup(&ds, 5, 5);
    let y = ds.labels().to_vec();
    let mut group = c.benchmark_group("logistic_regression_fit");
    group.sample_size(20);
    group.bench_function("synthetic_600", |b| {
        b.iter(|| {
            let mut clf = LogisticRegression::default();
            clf.fit(black_box(&x), black_box(&y)).unwrap();
            clf
        })
    });
    group.finish();
}

criterion_group!(
    substrates,
    bench_eigensolvers,
    bench_knn_graph,
    bench_quadratic_form,
    bench_pfr_fit,
    bench_logistic_regression
);
criterion_main!(substrates);
