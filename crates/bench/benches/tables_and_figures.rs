//! One Criterion benchmark per paper artifact (Table 1, Figures 1–10 and the
//! three ablations from DESIGN.md).
//!
//! Each benchmark runs the corresponding `pfr-eval` experiment driver in fast
//! mode (reduced dataset sizes, same pipeline), so `cargo bench` both
//! regenerates every row/series the paper reports and measures what it costs.
//! The rendered tables of the *full-size* runs are produced by
//! `cargo run --release -p pfr-eval -- --all` and recorded in
//! `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use pfr_eval::experiments::run_by_name;
use std::hint::black_box;

fn bench_artifact(c: &mut Criterion, bench_name: &str, experiment: &str) {
    let mut group = c.benchmark_group("paper_artifacts");
    group.sample_size(10);
    group.bench_function(bench_name, |b| {
        b.iter(|| {
            let report = run_by_name(black_box(experiment), true, 42).expect("experiment runs");
            assert!(!report.is_empty());
            report
        })
    });
    group.finish();
}

fn table1_datasets(c: &mut Criterion) {
    bench_artifact(c, "table1_datasets", "table1");
}

fn figure1_representations(c: &mut Criterion) {
    bench_artifact(c, "figure1_representations", "figure1");
}

fn figure2_synthetic_tradeoff(c: &mut Criterion) {
    bench_artifact(c, "figure2_synthetic_tradeoff", "figure2");
}

fn figure3_synthetic_group_fairness(c: &mut Criterion) {
    bench_artifact(c, "figure3_synthetic_group_fairness", "figure3");
}

fn figure4_gamma_sweep_synthetic(c: &mut Criterion) {
    bench_artifact(c, "figure4_gamma_sweep_synthetic", "figure4");
}

fn figure5_crime_tradeoff(c: &mut Criterion) {
    bench_artifact(c, "figure5_crime_tradeoff", "figure5");
}

fn figure6_crime_group_fairness(c: &mut Criterion) {
    bench_artifact(c, "figure6_crime_group_fairness", "figure6");
}

fn figure7_gamma_sweep_crime(c: &mut Criterion) {
    bench_artifact(c, "figure7_gamma_sweep_crime", "figure7");
}

fn figure8_compas_tradeoff(c: &mut Criterion) {
    bench_artifact(c, "figure8_compas_tradeoff", "figure8");
}

fn figure9_compas_group_fairness(c: &mut Criterion) {
    bench_artifact(c, "figure9_compas_group_fairness", "figure9");
}

fn figure10_gamma_sweep_compas(c: &mut Criterion) {
    bench_artifact(c, "figure10_gamma_sweep_compas", "figure10");
}

fn ablation_sparsity(c: &mut Criterion) {
    bench_artifact(c, "ablation_sparsity", "ablation-sparsity");
}

fn ablation_kernel(c: &mut Criterion) {
    bench_artifact(c, "ablation_kernel", "ablation-kernel");
}

fn ablation_quantiles(c: &mut Criterion) {
    bench_artifact(c, "ablation_quantiles", "ablation-quantiles");
}

criterion_group!(
    tables_and_figures,
    table1_datasets,
    figure1_representations,
    figure2_synthetic_tradeoff,
    figure3_synthetic_group_fairness,
    figure4_gamma_sweep_synthetic,
    figure5_crime_tradeoff,
    figure6_crime_group_fairness,
    figure7_gamma_sweep_crime,
    figure8_compas_tradeoff,
    figure9_compas_group_fairness,
    figure10_gamma_sweep_compas,
    ablation_sparsity,
    ablation_kernel,
    ablation_quantiles
);
criterion_main!(tables_and_figures);
