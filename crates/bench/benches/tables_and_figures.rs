//! One Criterion benchmark per paper artifact (Table 1, Figures 1–10 and the
//! three ablations from DESIGN.md).
//!
//! Each benchmark runs the corresponding `pfr-eval` experiment driver in fast
//! mode (reduced dataset sizes, same pipeline), so `cargo bench` both
//! regenerates every row/series the paper reports and measures what it costs.
//! The rendered tables of the *full-size* runs are produced by
//! `cargo run --release -p pfr-eval -- --all` and recorded in
//! `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use pfr_eval::experiments::run_by_name;
use std::hint::black_box;
use std::time::Instant;

fn bench_artifact(c: &mut Criterion, bench_name: &str, experiment: &str) {
    let mut group = c.benchmark_group("paper_artifacts");
    group.sample_size(10);
    group.bench_function(bench_name, |b| {
        b.iter(|| {
            let report = run_by_name(black_box(experiment), true, 42).expect("experiment runs");
            assert!(!report.is_empty());
            report
        })
    });
    group.finish();
}

fn table1_datasets(c: &mut Criterion) {
    bench_artifact(c, "table1_datasets", "table1");
}

fn figure1_representations(c: &mut Criterion) {
    bench_artifact(c, "figure1_representations", "figure1");
}

fn figure2_synthetic_tradeoff(c: &mut Criterion) {
    bench_artifact(c, "figure2_synthetic_tradeoff", "figure2");
}

fn figure3_synthetic_group_fairness(c: &mut Criterion) {
    bench_artifact(c, "figure3_synthetic_group_fairness", "figure3");
}

fn figure4_gamma_sweep_synthetic(c: &mut Criterion) {
    bench_artifact(c, "figure4_gamma_sweep_synthetic", "figure4");
}

fn figure5_crime_tradeoff(c: &mut Criterion) {
    bench_artifact(c, "figure5_crime_tradeoff", "figure5");
}

fn figure6_crime_group_fairness(c: &mut Criterion) {
    bench_artifact(c, "figure6_crime_group_fairness", "figure6");
}

fn figure7_gamma_sweep_crime(c: &mut Criterion) {
    bench_artifact(c, "figure7_gamma_sweep_crime", "figure7");
}

fn figure8_compas_tradeoff(c: &mut Criterion) {
    bench_artifact(c, "figure8_compas_tradeoff", "figure8");
}

fn figure9_compas_group_fairness(c: &mut Criterion) {
    bench_artifact(c, "figure9_compas_group_fairness", "figure9");
}

fn figure10_gamma_sweep_compas(c: &mut Criterion) {
    bench_artifact(c, "figure10_gamma_sweep_compas", "figure10");
}

fn ablation_sparsity(c: &mut Criterion) {
    bench_artifact(c, "ablation_sparsity", "ablation-sparsity");
}

fn ablation_kernel(c: &mut Criterion) {
    bench_artifact(c, "ablation_kernel", "ablation-kernel");
}

fn ablation_quantiles(c: &mut Criterion) {
    bench_artifact(c, "ablation_quantiles", "ablation-quantiles");
}

/// Every artifact of the paper, regenerated back to back, timed as one
/// wall-clock figure and persisted to `BENCH_paper.json` — the enforced
/// perf record for the reproduction suite itself (the last ungated
/// surface per ROADMAP). Per-artifact splits are printed for diagnosis
/// but only the suite total is gated: a single fast-mode artifact run is
/// too noisy a sample for a 30% gate, while the sum of all fourteen is
/// stable run over run.
fn paper_wall_clock(_c: &mut Criterion) {
    const ARTIFACTS: [&str; 14] = [
        "table1",
        "figure1",
        "figure2",
        "figure3",
        "figure4",
        "figure5",
        "figure6",
        "figure7",
        "figure8",
        "figure9",
        "figure10",
        "ablation-sparsity",
        "ablation-kernel",
        "ablation-quantiles",
    ];
    let start = Instant::now();
    println!(
        "paper_wall_clock: regenerating all {} artifacts",
        ARTIFACTS.len()
    );
    for name in ARTIFACTS {
        let artifact = Instant::now();
        let report = run_by_name(black_box(name), true, 42).expect("experiment runs");
        assert!(!report.is_empty());
        println!(
            "  {name:<20} {:>8.1}ms",
            artifact.elapsed().as_secs_f64() * 1e3
        );
    }
    let paper_suite_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("  whole paper:         {paper_suite_ms:>8.1}ms");
    pfr_bench::write_bench_json(
        "BENCH_paper.json",
        "paper_artifacts",
        &[
            ("artifacts", ARTIFACTS.len() as f64),
            // `_ms` suffix = wall-clock: perf_gate fails it for *rising*.
            ("paper_suite_ms", paper_suite_ms),
        ],
    );
}

criterion_group!(
    tables_and_figures,
    table1_datasets,
    figure1_representations,
    figure2_synthetic_tradeoff,
    figure3_synthetic_group_fairness,
    figure4_gamma_sweep_synthetic,
    figure5_crime_tradeoff,
    figure6_crime_group_fairness,
    figure7_gamma_sweep_crime,
    figure8_compas_tradeoff,
    figure9_compas_group_fairness,
    figure10_gamma_sweep_compas,
    ablation_sparsity,
    ablation_kernel,
    ablation_quantiles,
    paper_wall_clock
);
criterion_main!(tables_and_figures);
