//! Journal-tailing cursor: replay from an arbitrary sequence number, then
//! *follow* the live journal across segment rotations.
//!
//! A [`JournalCursor`] is the read side of the journal-as-feed contract:
//! downstream consumers (the online refit worker foremost) open a named
//! cursor, drain frames with [`JournalCursor::next`], and persist their
//! position with [`JournalCursor::checkpoint`]. The checkpoint is a tiny
//! `cursor-<name>.ckpt` file in the journal directory, written atomically
//! (temp file + rename), so a restarted consumer resumes exactly where its
//! last checkpoint left off — and, crucially, the journal's segment
//! retention reads those files and refuses to delete any segment still
//! holding frames at or after a registered cursor's checkpoint.
//!
//! Rotation following relies on the writer's naming discipline: a segment is
//! named after the first sequence number it will hold and is created
//! *before* that frame is written. So when a cursor has drained segment `S`
//! completely and `seg-{next_seq}` exists on disk, `S` is sealed — no frame
//! the cursor still wants can ever land in it — and the cursor hops to the
//! successor. A partially written frame at the live tail decodes as
//! `Incomplete` (bytes are appended strictly in order), which the cursor
//! treats as "not yet", never as corruption.

use crate::error::JournalError;
use crate::frame::{decode_frame, FrameOutcome, SEGMENT_MAGIC};
use crate::journal::{list_segments, segment_first_seq, segment_path};
use crate::record::Record;
use std::fs::{self, File};
use std::io::Read;
use std::path::{Path, PathBuf};

/// Version tag opening every checkpoint file.
const CHECKPOINT_MAGIC: &str = "pfr-cursor-v1";

/// Drain the consumed prefix of the tail buffer once it exceeds this.
const DRAIN_THRESHOLD: usize = 64 << 10;

/// A poll-based tailing reader over a journal directory.
///
/// Not tied to a live [`crate::Journal`] handle: a cursor works purely
/// against the segment files, so it can run in another thread — or another
/// process — than the writer.
#[derive(Debug)]
pub struct JournalCursor {
    dir: PathBuf,
    name: String,
    /// Sequence number of the next frame [`JournalCursor::next`] will return.
    next_seq: u64,
    /// Position as of the last durable checkpoint.
    checkpointed: u64,
    /// Frames delivered since open.
    delivered: u64,
    tail: Option<Tail>,
}

/// The segment currently being read.
#[derive(Debug)]
struct Tail {
    path: PathBuf,
    file: File,
    /// Absolute file offset up to which bytes have been pulled into `buf`.
    read_pos: u64,
    /// Unconsumed segment bytes (header magic already stripped).
    buf: Vec<u8>,
    /// Decode offset within `buf`.
    at: usize,
}

impl JournalCursor {
    /// Opens a named cursor over the journal in `dir`.
    ///
    /// If a checkpoint file for `name` exists the cursor resumes from it;
    /// otherwise it starts at `from_seq` (`0` and `1` both mean "from the
    /// first frame"). Opening registers the cursor durably: the checkpoint
    /// file is written immediately, so retention starts protecting the
    /// cursor's position before the first frame is ever delivered.
    pub fn open(
        dir: impl Into<PathBuf>,
        name: &str,
        from_seq: u64,
    ) -> Result<JournalCursor, JournalError> {
        let dir = dir.into();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(JournalError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("cursor name '{name}' must be non-empty [A-Za-z0-9_-]"),
            )));
        }
        fs::create_dir_all(&dir)?;
        let resumed = read_checkpoint(&checkpoint_file(&dir, name));
        let next_seq = resumed.unwrap_or(from_seq.max(1));
        let mut cursor = JournalCursor {
            dir,
            name: name.to_string(),
            next_seq,
            checkpointed: 0,
            delivered: 0,
            tail: None,
        };
        cursor.checkpoint()?;
        Ok(cursor)
    }

    /// Sequence number of the next frame this cursor will deliver.
    pub fn position(&self) -> u64 {
        self.next_seq
    }

    /// Position as of the last durable [`JournalCursor::checkpoint`].
    pub fn checkpointed(&self) -> u64 {
        self.checkpointed
    }

    /// Frames delivered since this handle was opened.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The cursor's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the next frame, or `None` when the cursor has caught up with
    /// the live tail (poll again later). Frames are delivered exactly once
    /// per handle, in strictly consecutive sequence order; a gap that
    /// cannot be explained by a torn tail is reported as corruption, and a
    /// start position already pruned by retention is an error rather than a
    /// silent skip.
    ///
    /// Not an `Iterator`: `None` means "caught up, poll again", not
    /// exhaustion, and errors must stay visible at every call site.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(u64, Record)>, JournalError> {
        loop {
            if self.tail.is_none() && !self.locate_segment()? {
                return Ok(None);
            }
            let tail = self.tail.as_mut().expect("segment located");
            match decode_frame(&tail.buf, tail.at) {
                FrameOutcome::Frame {
                    seq,
                    record,
                    next_offset,
                } => {
                    tail.at = next_offset;
                    if tail.at >= DRAIN_THRESHOLD {
                        tail.buf.drain(..tail.at);
                        tail.at = 0;
                    }
                    if seq < self.next_seq {
                        // Entered mid-segment (or re-read after a truncation
                        // race): skip frames already delivered.
                        continue;
                    }
                    if seq != self.next_seq {
                        return Err(JournalError::Corrupt {
                            segment: tail.path.clone(),
                            offset: tail.read_pos,
                            reason: format!(
                                "sequence jump while tailing: expected {}, found {seq}",
                                self.next_seq
                            ),
                        });
                    }
                    self.next_seq = seq + 1;
                    self.delivered += 1;
                    return Ok(Some((seq, record)));
                }
                FrameOutcome::End | FrameOutcome::Incomplete => {
                    if self.fill()? {
                        continue;
                    }
                    // No new bytes. If the successor segment exists, the
                    // current one is sealed and fully drained; hop over.
                    if self.advance_segment()? {
                        continue;
                    }
                    return Ok(None);
                }
                FrameOutcome::Corrupt(reason) => {
                    return Err(JournalError::Corrupt {
                        segment: tail.path.clone(),
                        offset: tail.read_pos,
                        reason,
                    });
                }
            }
        }
    }

    /// Durably persists the current position (atomic temp-file + rename).
    /// Retention will keep every segment holding frames at or after it.
    pub fn checkpoint(&mut self) -> Result<(), JournalError> {
        let path = checkpoint_file(&self.dir, &self.name);
        let tmp = self.dir.join(format!("cursor-{}.ckpt.tmp", self.name));
        fs::write(&tmp, format!("{CHECKPOINT_MAGIC} {}\n", self.next_seq))?;
        fs::rename(&tmp, &path)?;
        self.checkpointed = self.next_seq;
        Ok(())
    }

    /// Deregisters the cursor: removes its checkpoint file so retention no
    /// longer protects its position. The handle is consumed.
    pub fn deregister(self) -> Result<(), JournalError> {
        let path = checkpoint_file(&self.dir, &self.name);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Finds the segment containing `next_seq` and opens it. Returns `false`
    /// when the journal has no segment yet (nothing to read — caught up).
    fn locate_segment(&mut self) -> Result<bool, JournalError> {
        let segments = list_segments(&self.dir)?;
        if segments.is_empty() {
            return Ok(false);
        }
        // The last segment whose first frame is ≤ next_seq holds (or will
        // hold) the frame we want; zero-padded naming keeps the list sorted.
        let mut candidate: Option<&PathBuf> = None;
        let mut earliest: Option<u64> = None;
        for path in &segments {
            if let Some(first) = segment_first_seq(path) {
                earliest = Some(earliest.map_or(first, |e: u64| e.min(first)));
                if first <= self.next_seq {
                    candidate = Some(path);
                }
            }
        }
        match candidate {
            Some(path) => {
                self.open_tail(path.clone())?;
                Ok(self.tail.is_some())
            }
            None => Err(JournalError::Corrupt {
                segment: segments[0].clone(),
                offset: 0,
                reason: format!(
                    "cursor '{}' needs seq {} but the earliest segment starts at {} — \
                     retention outran the reader",
                    self.name,
                    self.next_seq,
                    earliest.map_or(0, |e| e)
                ),
            }),
        }
    }

    /// Opens `path` as the new tail, verifying the segment magic.
    fn open_tail(&mut self, path: PathBuf) -> Result<(), JournalError> {
        let mut file = File::open(&path)?;
        let mut magic = [0u8; SEGMENT_MAGIC.len()];
        match file.read_exact(&mut magic) {
            Ok(()) if &magic == SEGMENT_MAGIC => {}
            Ok(()) => {
                return Err(JournalError::Corrupt {
                    segment: path,
                    offset: 0,
                    reason: "bad segment magic".into(),
                });
            }
            // A segment created but not yet fully headered by the writer:
            // treat as "not yet" and retry on the next poll.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Ok(());
            }
            Err(e) => return Err(e.into()),
        }
        self.tail = Some(Tail {
            path,
            file,
            read_pos: SEGMENT_MAGIC.len() as u64,
            buf: Vec::new(),
            at: 0,
        });
        Ok(())
    }

    /// Pulls newly appended bytes from the tail file. Returns `true` if any
    /// arrived. A file that *shrank* (reopened journal truncated a torn
    /// tail under us) resets the tail so the segment is re-read; already
    /// delivered frames are skipped by the `seq < next_seq` check. A file
    /// that *vanished* is a fully-drained segment legitimately pruned by
    /// retention once the checkpoint moved past it — the cursor drops the
    /// handle and re-locates from `next_seq`.
    fn fill(&mut self) -> Result<bool, JournalError> {
        let tail = self.tail.as_mut().expect("tail open");
        let len = fs::metadata(&tail.path).map(|m| m.len()).unwrap_or(0);
        if len < tail.read_pos {
            let path = tail.path.clone();
            self.tail = None;
            match self.open_tail(path) {
                Ok(()) => return Ok(true),
                Err(JournalError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Ok(false);
                }
                Err(e) => return Err(e),
            }
        }
        let n = tail.file.read_to_end(&mut tail.buf)?;
        tail.read_pos += n as u64;
        Ok(n > 0)
    }

    /// Hops to the successor segment if it exists. Only called once the
    /// current segment is fully drained, at which point `next_seq` is
    /// exactly the successor's first frame — and its name.
    fn advance_segment(&mut self) -> Result<bool, JournalError> {
        let successor = segment_path(&self.dir, self.next_seq);
        // Guard against the empty-tail case: when no frame has been read
        // from the current segment yet, the "successor" name can be the
        // segment itself (its first frame is still unwritten).
        if self.tail.as_ref().is_some_and(|t| t.path == successor) || !successor.exists() {
            return Ok(false);
        }
        self.tail = None;
        self.open_tail(successor)?;
        Ok(self.tail.is_some())
    }
}

/// Path of the checkpoint file for cursor `name`.
fn checkpoint_file(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("cursor-{name}.ckpt"))
}

/// Parses a checkpoint file; `None` if absent or malformed (a malformed
/// checkpoint is treated as no checkpoint — the cursor restarts from its
/// configured seed position rather than failing the open).
fn read_checkpoint(path: &Path) -> Option<u64> {
    let text = fs::read_to_string(path).ok()?;
    let mut parts = text.split_whitespace();
    if parts.next()? != CHECKPOINT_MAGIC {
        return None;
    }
    parts.next()?.parse().ok()
}

/// Positions of every registered (checkpointed) cursor under `dir`.
/// Retention must keep all frames at or after the minimum of these.
pub(crate) fn checkpoint_positions(dir: &Path) -> Vec<u64> {
    let mut positions = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return positions;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("cursor-") && name.ends_with(".ckpt") {
            if let Some(seq) = read_checkpoint(&path) {
                positions.push(seq);
            }
        }
    }
    positions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{FsyncPolicy, Journal, JournalConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static SCRATCH: AtomicUsize = AtomicUsize::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("pfr_cursor_unit_{}_{tag}_{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn score(i: u64) -> Record {
        Record::Score {
            model: "m".into(),
            features: vec![i as f64],
        }
    }

    fn drain(cursor: &mut JournalCursor) -> Vec<u64> {
        let mut seqs = Vec::new();
        while let Some((seq, _)) = cursor.next().expect("cursor reads") {
            seqs.push(seq);
        }
        seqs
    }

    #[test]
    fn tails_appends_across_rotations_in_order() {
        let dir = scratch_dir("tail");
        let journal = Journal::open(JournalConfig {
            segment_bytes: 96, // force frequent rotation
            fsync: FsyncPolicy::Never,
            ..JournalConfig::new(&dir)
        })
        .expect("opens");
        let mut cursor = JournalCursor::open(&dir, "tailer", 1).expect("cursor opens");
        assert!(drain(&mut cursor).is_empty(), "nothing to read yet");
        let mut seen = Vec::new();
        for i in 1..=40u64 {
            journal.append(&score(i)).expect("appends");
            if i % 7 == 0 {
                seen.extend(drain(&mut cursor));
            }
        }
        seen.extend(drain(&mut cursor));
        assert_eq!(seen, (1..=40).collect::<Vec<u64>>());
        assert_eq!(cursor.position(), 41);
        assert_eq!(cursor.delivered(), 40);
        journal.close();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_resumes_from_checkpoint_not_from_scratch() {
        let dir = scratch_dir("resume");
        let journal = Journal::open(JournalConfig {
            segment_bytes: 128,
            fsync: FsyncPolicy::Never,
            ..JournalConfig::new(&dir)
        })
        .expect("opens");
        for i in 1..=20u64 {
            journal.append(&score(i)).expect("appends");
        }
        let mut cursor = JournalCursor::open(&dir, "worker", 1).expect("cursor opens");
        for want in 1..=12u64 {
            let (seq, _) = cursor.next().expect("reads").expect("has frame");
            assert_eq!(seq, want);
        }
        cursor.checkpoint().expect("checkpoints");
        assert_eq!(cursor.checkpointed(), 13);
        drop(cursor);

        // A restarted worker opens the same name and picks up at frame 13,
        // even though it asked to start from 1.
        let mut restarted = JournalCursor::open(&dir, "worker", 1).expect("reopens");
        assert_eq!(restarted.position(), 13);
        assert_eq!(drain(&mut restarted), (13..=20).collect::<Vec<u64>>());
        journal.close();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_from_mid_stream_skips_earlier_frames() {
        let dir = scratch_dir("midstart");
        let journal = Journal::open(JournalConfig {
            fsync: FsyncPolicy::Never,
            ..JournalConfig::new(&dir)
        })
        .expect("opens");
        for i in 1..=10u64 {
            journal.append(&score(i)).expect("appends");
        }
        let mut cursor = JournalCursor::open(&dir, "late", 7).expect("cursor opens");
        assert_eq!(drain(&mut cursor), vec![7, 8, 9, 10]);
        journal.close();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_outrunning_a_cursor_is_an_error_not_a_skip() {
        let dir = scratch_dir("outrun");
        let journal = Journal::open(JournalConfig {
            segment_bytes: 96,
            retain_segments: 2,
            fsync: FsyncPolicy::Never,
            ..JournalConfig::new(&dir)
        })
        .expect("opens");
        for i in 1..=60u64 {
            journal.append(&score(i)).expect("appends");
        }
        journal.close();
        // No checkpoint existed while retention ran, so early segments are
        // gone; a cursor asking for seq 1 must fail loudly.
        let mut cursor = JournalCursor::open(&dir, "fresh", 1).expect("opens");
        match cursor.next() {
            Err(JournalError::Corrupt { reason, .. }) => {
                assert!(reason.contains("retention"), "unexpected reason: {reason}");
            }
            other => panic!("expected retention error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_cursor_names_are_rejected() {
        let dir = scratch_dir("names");
        for bad in ["", "has space", "dots.too", "slash/y"] {
            assert!(JournalCursor::open(&dir, bad, 1).is_err(), "{bad:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn deregister_removes_the_checkpoint_file() {
        let dir = scratch_dir("dereg");
        let cursor = JournalCursor::open(&dir, "gone", 1).expect("opens");
        assert_eq!(checkpoint_positions(&dir), vec![1]);
        cursor.deregister().expect("deregisters");
        assert!(checkpoint_positions(&dir).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_survives_torn_tmp_file() {
        let dir = scratch_dir("torn_ckpt");
        let mut cursor = JournalCursor::open(&dir, "c", 5).expect("opens");
        cursor.checkpoint().expect("checkpoints");
        // A stale tmp file from a crashed writer must not confuse parsing.
        fs::write(dir.join("cursor-c.ckpt.tmp"), "garbage").expect("writes");
        fs::write(dir.join("cursor-x.ckpt"), "not-a-checkpoint").expect("writes");
        let mut positions = checkpoint_positions(&dir);
        positions.sort_unstable();
        assert_eq!(positions, vec![5]);
        let reopened = JournalCursor::open(&dir, "c", 1).expect("reopens");
        assert_eq!(reopened.position(), 5);
        let _ = fs::remove_dir_all(&dir);
    }
}
