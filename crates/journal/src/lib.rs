//! # pfr-journal — durable write-ahead request journal
//!
//! A std-only, segmented, append-only journal for the PFR serving tier.
//! Every accepted request (`SCORE`, `TRANSFORM`, `LOAD`, `PUSH`) becomes a
//! checksummed, length-prefixed binary frame; a group-commit writer thread
//! batches concurrent appends between fsyncs; recovery truncates at the
//! first torn tail frame and replays everything before it, which is enough
//! to rebuild the model registry and re-warm the score cache to the exact
//! pre-crash state.
//!
//! See `DESIGN.md` in this crate for the frame format, the torn-write
//! argument, and the recovery invariants.
//!
//! ```
//! use pfr_journal::{Journal, JournalConfig, FsyncPolicy, Record, replay_dir};
//!
//! let dir = std::env::temp_dir().join(format!("pfr_journal_doc_{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let journal = Journal::open(JournalConfig {
//!     fsync: FsyncPolicy::Never,
//!     ..JournalConfig::new(&dir)
//! })
//! .unwrap();
//! let seq = journal
//!     .append(&Record::Score { model: "m".into(), features: vec![1.0, 2.0] })
//!     .unwrap();
//! assert_eq!(seq, 1);
//! journal.close();
//!
//! let mut frames = 0;
//! replay_dir(&dir, |_seq, _record| frames += 1).unwrap();
//! assert_eq!(frames, 1);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod cursor;
mod error;
pub mod frame;
mod journal;
mod record;

pub use cursor::JournalCursor;
pub use error::JournalError;
pub use journal::{
    replay_dir, FsyncPolicy, Journal, JournalConfig, JournalStats, PinGuard, ReplaySummary,
};
pub use record::Record;
