//! Error type for the journal subsystem.

use std::fmt;
use std::path::PathBuf;

/// Errors produced by the write-ahead journal.
#[derive(Debug)]
pub enum JournalError {
    /// A file or directory operation failed.
    Io(std::io::Error),
    /// A segment contains invalid data *before* its tail — bitrot or foreign
    /// bytes, not a torn write — so recovery cannot trust anything after it.
    Corrupt {
        /// Segment file in which the damage was found.
        segment: PathBuf,
        /// Byte offset of the first invalid frame.
        offset: u64,
        /// Human-readable description of the damage.
        reason: String,
    },
    /// The journal's writer thread has shut down and can accept no appends.
    Closed,
    /// An append was accepted but could not be made durable.
    Append(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "journal segment {} corrupt at byte {offset}: {reason}",
                segment.display()
            ),
            JournalError::Closed => write!(f, "journal is closed"),
            JournalError::Append(msg) => write!(f, "journal append failed: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_every_variant() {
        let io: JournalError = std::io::Error::other("disk gone").into();
        for (err, needle) in [
            (io, "disk gone"),
            (
                JournalError::Corrupt {
                    segment: PathBuf::from("seg-1.wal"),
                    offset: 42,
                    reason: "bad checksum".into(),
                },
                "byte 42",
            ),
            (JournalError::Closed, "closed"),
            (JournalError::Append("sync failed".into()), "sync failed"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn io_errors_expose_a_source() {
        use std::error::Error;
        let err: JournalError = std::io::Error::other("x").into();
        assert!(err.source().is_some());
        assert!(JournalError::Closed.source().is_none());
    }
}
