//! The journal proper: segmented append-only log with a group-commit writer
//! thread, size-based rotation, retention, and torn-write-safe recovery.
//!
//! All appends funnel through one writer thread. Callers block on an ack
//! channel, so when several threads append concurrently their frames are
//! written — and, under [`FsyncPolicy::PerRecord`], made durable — by a
//! *single* batched flush+fsync: classic group commit. The durability
//! guarantee is per policy:
//!
//! * [`FsyncPolicy::PerRecord`] — `append` returns only after the frame is
//!   fsynced. Survives machine crash.
//! * [`FsyncPolicy::Interval`] — `append` returns once the frame reaches the
//!   OS page cache; fsync happens at least every interval. Survives process
//!   crash; a machine crash may lose the last interval.
//! * [`FsyncPolicy::Never`] — never fsyncs. Survives process crash only.

use crate::cursor::checkpoint_positions;
use crate::error::JournalError;
use crate::frame::{decode_frame, encode_frame, FrameOutcome, SEGMENT_MAGIC};
use crate::record::Record;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// In-process pin registry: pin id → lowest sequence number the pinned
/// reader still needs. Shared between [`Journal`] handles (which register
/// pins) and the writer thread (whose retention consults it).
type PinSet = Arc<Mutex<BTreeMap<u64, u64>>>;

/// Keeps every frame at or after a sequence number safe from retention for
/// as long as the guard lives. Returned by [`Journal::pin_from`]; dropping
/// the guard releases the pin.
#[derive(Debug)]
pub struct PinGuard {
    pins: PinSet,
    id: u64,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        if let Ok(mut pins) = self.pins.lock() {
            pins.remove(&self.id);
        }
    }
}

/// When the writer thread pushes bytes to the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync before acknowledging every append (group-committed: one fsync
    /// covers every append in the batch).
    PerRecord,
    /// Acknowledge after the OS write; fsync at least this often.
    Interval(Duration),
    /// Never fsync; rely on the OS flushing its page cache.
    Never,
}

/// Configuration for opening a [`Journal`].
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Roll to a new segment once the active one exceeds this many bytes.
    pub segment_bytes: u64,
    /// Keep at most this many segments, deleting the oldest sealed ones
    /// after a roll. `0` keeps everything — the only setting under which
    /// replay is guaranteed to reconstruct the full registry (deleting a
    /// sealed segment may drop the `LOAD`/`PUSH` frame that installed a
    /// model).
    pub retain_segments: usize,
    /// Durability policy (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
}

impl JournalConfig {
    /// Durable-by-default configuration rooted at `dir`: 8 MiB segments,
    /// unlimited retention, fsync-per-record.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            segment_bytes: 8 << 20,
            retain_segments: 0,
            fsync: FsyncPolicy::PerRecord,
        }
    }
}

/// Live journal telemetry, shared between the writer thread and `STATS`
/// reporting. All counters are relaxed atomics.
#[derive(Debug, Default)]
pub struct JournalStats {
    last_seq: AtomicU64,
    segments: AtomicU64,
    bytes: AtomicU64,
    appends: AtomicU64,
    fsyncs: AtomicU64,
    unsynced: AtomicU64,
    /// Wall-clock latency of each fsync — the component that dominates
    /// durable append tails, kept as a full distribution because fsync
    /// latency is bimodal on most filesystems.
    fsync_ns: Arc<pfr_obs::LatencyHisto>,
}

impl JournalStats {
    /// Highest sequence number written (0 before the first append).
    pub fn last_seq(&self) -> u64 {
        self.last_seq.load(Ordering::Relaxed)
    }

    /// Number of segment files currently on disk.
    pub fn segments(&self) -> u64 {
        self.segments.load(Ordering::Relaxed)
    }

    /// Valid journal bytes currently on disk across all segments.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Appends acknowledged since open.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Fsyncs issued since open.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Bytes written but not yet covered by an fsync — the fsync lag.
    /// Always 0 under [`FsyncPolicy::PerRecord`] between batches; grows
    /// without bound under [`FsyncPolicy::Never`] by design.
    pub fn unsynced(&self) -> u64 {
        self.unsynced.load(Ordering::Relaxed)
    }

    /// The live fsync-latency histogram (nanoseconds per fsync call).
    pub fn fsync_histogram(&self) -> &Arc<pfr_obs::LatencyHisto> {
        &self.fsync_ns
    }

    /// Renders the snapshot as `key=value` pairs for the `STATS` line.
    pub fn to_line(&self) -> String {
        format!(
            "journal_seq={} journal_segments={} journal_bytes={} \
             journal_appends={} journal_fsyncs={} journal_unsynced={}",
            self.last_seq(),
            self.segments(),
            self.bytes(),
            self.appends(),
            self.fsyncs(),
            self.unsynced(),
        )
    }
}

/// What [`replay_dir`] (and [`Journal::replay`]) found.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReplaySummary {
    /// Complete, checksum-valid frames delivered to the callback.
    pub frames: u64,
    /// Sequence number of the last delivered frame (0 if none).
    pub last_seq: u64,
    /// Segment files visited.
    pub segments: u64,
    /// Bytes of valid frames (plus magic headers) replayed.
    pub bytes: u64,
    /// Bytes ignored after the last valid frame — a torn tail (or a write
    /// racing the replay). Zero on a cleanly closed journal.
    pub truncated_bytes: u64,
}

/// One append in flight to the writer thread.
struct Append {
    kind: u8,
    body: Vec<u8>,
    ack: SyncSender<Result<u64, String>>,
}

/// A durable, append-only, segmented request journal.
///
/// Cloneable handles are not provided; share via `Arc`. Dropping the last
/// handle flushes, fsyncs (per policy) and joins the writer thread.
#[derive(Debug)]
pub struct Journal {
    config: JournalConfig,
    stats: Arc<JournalStats>,
    pins: PinSet,
    next_pin: AtomicU64,
    tx: Option<Sender<Append>>,
    writer: Option<JoinHandle<()>>,
}

impl Journal {
    /// Opens (or creates) the journal in `config.dir`, recovering from any
    /// torn tail: the last segment is truncated back to its final valid
    /// frame before the writer thread starts appending after it.
    ///
    /// Invalid bytes *before* the tail of the final segment — i.e. damage
    /// that torn writes cannot explain — fail the open with
    /// [`JournalError::Corrupt`] rather than silently dropping reachable
    /// frames.
    pub fn open(config: JournalConfig) -> Result<Journal, JournalError> {
        fs::create_dir_all(&config.dir)?;
        let segments = list_segments(&config.dir)?;
        let mut last_seq = 0u64;
        let mut valid_bytes = 0u64;
        let mut expect: Option<u64> = None;
        for (index, path) in segments.iter().enumerate() {
            let is_last = index + 1 == segments.len();
            let scan = scan_segment(path, &mut expect)?;
            if scan.valid_len < scan.file_len {
                if !is_last {
                    return Err(JournalError::Corrupt {
                        segment: path.clone(),
                        offset: scan.valid_len,
                        reason: scan
                            .damage
                            .unwrap_or_else(|| "invalid frame before the journal tail".into()),
                    });
                }
                // Torn tail: drop everything from the first invalid byte.
                let mut file = OpenOptions::new().write(true).open(path)?;
                file.set_len(scan.valid_len)?;
                if scan.valid_len == 0 {
                    // The crash tore the segment's own magic header;
                    // rewrite it so the segment stays appendable.
                    file.write_all(SEGMENT_MAGIC)?;
                    valid_bytes += SEGMENT_MAGIC.len() as u64;
                }
                file.sync_data()?;
            }
            if let Some(seq) = scan.last_seq {
                last_seq = seq;
            }
            valid_bytes += scan.valid_len;
        }

        let stats = Arc::new(JournalStats::default());
        stats.last_seq.store(last_seq, Ordering::Relaxed);
        stats.bytes.store(valid_bytes, Ordering::Relaxed);

        // Open the active segment (create the first one on a fresh dir).
        let (segment_paths, active) = match segments.last() {
            Some(last) => {
                let file = OpenOptions::new().append(true).open(last)?;
                (segments.clone(), (last.clone(), file))
            }
            None => {
                let path = segment_path(&config.dir, last_seq + 1);
                let mut file = File::create(&path)?;
                file.write_all(SEGMENT_MAGIC)?;
                stats
                    .bytes
                    .fetch_add(SEGMENT_MAGIC.len() as u64, Ordering::Relaxed);
                (vec![path.clone()], (path, file))
            }
        };
        stats
            .segments
            .store(segment_paths.len() as u64, Ordering::Relaxed);

        let pins: PinSet = Arc::new(Mutex::new(BTreeMap::new()));
        let (tx, rx) = mpsc::channel();
        let writer_state = Writer {
            dir: config.dir.clone(),
            segment_bytes: config.segment_bytes,
            retain_segments: config.retain_segments,
            fsync: config.fsync,
            segments: segment_paths,
            active_len: fs::metadata(&active.0)?.len(),
            active: active.1,
            next_seq: last_seq + 1,
            stats: Arc::clone(&stats),
            pins: Arc::clone(&pins),
            last_sync: Instant::now(),
            buffer: Vec::with_capacity(64 << 10),
        };
        let writer = std::thread::Builder::new()
            .name("pfr-journal-writer".into())
            .spawn(move || writer_state.run(rx))
            .map_err(JournalError::Io)?;

        Ok(Journal {
            config,
            stats,
            pins,
            next_pin: AtomicU64::new(1),
            tx: Some(tx),
            writer: Some(writer),
        })
    }

    /// Pins every frame with sequence number ≥ `seq`: segment retention
    /// will not delete a segment still holding any of them while the
    /// returned guard lives. Used by in-process readers (replay, tailing)
    /// that have no durable checkpoint to protect them.
    pub fn pin_from(&self, seq: u64) -> PinGuard {
        let id = self.next_pin.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut pins) = self.pins.lock() {
            pins.insert(id, seq.max(1));
        }
        PinGuard {
            pins: Arc::clone(&self.pins),
            id,
        }
    }

    /// Appends one record and blocks until it is acknowledged per the
    /// journal's [`FsyncPolicy`]. Returns the assigned sequence number.
    pub fn append(&self, record: &Record) -> Result<u64, JournalError> {
        let mut body = Vec::with_capacity(64);
        record.encode_body(&mut body);
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        self.tx
            .as_ref()
            .ok_or(JournalError::Closed)?
            .send(Append {
                kind: record.kind(),
                body,
                ack: ack_tx,
            })
            .map_err(|_| JournalError::Closed)?;
        match ack_rx.recv() {
            Ok(Ok(seq)) => Ok(seq),
            Ok(Err(msg)) => Err(JournalError::Append(msg)),
            Err(_) => Err(JournalError::Closed),
        }
    }

    /// Replays every valid frame currently on disk, oldest first. Tolerant
    /// of a torn tail (it stops there and reports the skipped bytes), so it
    /// is safe to run concurrently with appends — frames mid-write simply
    /// are not visited.
    pub fn replay<F>(&self, visit: F) -> Result<ReplaySummary, JournalError>
    where
        F: FnMut(u64, Record),
    {
        // Pin the whole journal for the duration: a concurrent roll must not
        // rotate away a segment this replay is about to read.
        let _pin = self.pin_from(1);
        replay_dir(&self.config.dir, visit)
    }

    /// Live telemetry counters.
    pub fn stats(&self) -> &JournalStats {
        &self.stats
    }

    /// The shared handle behind [`Journal::stats`] — for gauges that must
    /// outlive the borrow (e.g. a refit worker's cursor-lag gauge reading
    /// this journal's tip from inside a registry closure).
    pub fn shared_stats(&self) -> Arc<JournalStats> {
        Arc::clone(&self.stats)
    }

    /// Registers the journal's counters and the fsync-latency histogram on
    /// `registry` under the `pfr_journal_*` namespace.
    pub fn register_metrics(&self, registry: &pfr_obs::MetricsRegistry) {
        macro_rules! gauge {
            ($name:expr, $read:expr) => {{
                let stats = Arc::clone(&self.stats);
                registry.gauge($name, &[], Arc::new(move || ($read)(&stats) as f64));
            }};
        }
        gauge!("pfr_journal_seq", |s: &JournalStats| s.last_seq());
        gauge!("pfr_journal_segments", |s: &JournalStats| s.segments());
        gauge!("pfr_journal_bytes", |s: &JournalStats| s.bytes());
        gauge!("pfr_journal_appends_total", |s: &JournalStats| s.appends());
        gauge!("pfr_journal_fsyncs_total", |s: &JournalStats| s.fsyncs());
        gauge!("pfr_journal_unsynced_bytes", |s: &JournalStats| s
            .unsynced());
        registry.histogram(
            "pfr_journal_fsync_ns",
            &[],
            Arc::clone(self.stats.fsync_histogram()),
        );
    }

    /// The directory holding the segment files.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Flushes, fsyncs (per policy) and stops the writer thread. Equivalent
    /// to dropping the journal, but explicit.
    pub fn close(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.writer.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Replays every valid frame under `dir` without opening a [`Journal`] —
/// a pure read: no truncation, no writer thread, no locks. Stops at the
/// first invalid frame (torn tail) and reports how many bytes it skipped.
pub fn replay_dir<F>(dir: &Path, mut visit: F) -> Result<ReplaySummary, JournalError>
where
    F: FnMut(u64, Record),
{
    let segments = list_segments(dir)?;
    let mut summary = ReplaySummary::default();
    let mut expect: Option<u64> = None;
    for path in &segments {
        summary.segments += 1;
        let buf = fs::read(path)?;
        if buf.len() < SEGMENT_MAGIC.len() || &buf[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            summary.truncated_bytes += buf.len() as u64;
            break;
        }
        summary.bytes += SEGMENT_MAGIC.len() as u64;
        let mut offset = SEGMENT_MAGIC.len();
        let stop = loop {
            match decode_frame(&buf, offset) {
                FrameOutcome::Frame {
                    seq,
                    record,
                    next_offset,
                } => {
                    if let Some(want) = expect {
                        if seq != want {
                            // A sequence break cannot come from a torn
                            // write; stop delivering rather than invent
                            // an inconsistent history.
                            break true;
                        }
                    }
                    expect = Some(seq + 1);
                    visit(seq, record);
                    summary.frames += 1;
                    summary.last_seq = seq;
                    summary.bytes += (next_offset - offset) as u64;
                    offset = next_offset;
                }
                FrameOutcome::End => break false,
                FrameOutcome::Incomplete | FrameOutcome::Corrupt(_) => break true,
            }
        };
        if stop {
            summary.truncated_bytes += (buf.len() - offset) as u64;
            break;
        }
    }
    Ok(summary)
}

/// Segment file name for the segment whose first frame will carry `seq`.
pub(crate) fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:020}.wal"))
}

/// Inverse of [`segment_path`]: the first sequence number a segment file
/// holds, parsed from its name. `None` for foreign file names.
pub(crate) fn segment_first_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("seg-")?
        .strip_suffix(".wal")?
        .parse()
        .ok()
}

/// All `seg-*.wal` files under `dir`, sorted by name (zero-padded first-seq
/// naming makes lexicographic order equal journal order).
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<PathBuf>, JournalError> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("seg-") && name.ends_with(".wal") {
            segments.push(path);
        }
    }
    segments.sort();
    Ok(segments)
}

/// What scanning one segment at open time found.
struct SegmentScan {
    file_len: u64,
    valid_len: u64,
    last_seq: Option<u64>,
    damage: Option<String>,
}

/// Validates one segment, advancing the cross-segment sequence expectation.
fn scan_segment(path: &Path, expect: &mut Option<u64>) -> Result<SegmentScan, JournalError> {
    let buf = fs::read(path)?;
    let file_len = buf.len() as u64;
    if buf.len() < SEGMENT_MAGIC.len() || &buf[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        // The segment never got a complete magic header (crash during
        // creation): everything in it is a torn tail.
        return Ok(SegmentScan {
            file_len,
            valid_len: 0,
            last_seq: None,
            damage: Some("missing or torn segment magic".into()),
        });
    }
    let mut offset = SEGMENT_MAGIC.len();
    let mut last_seq = None;
    let mut damage = None;
    loop {
        match decode_frame(&buf, offset) {
            FrameOutcome::Frame {
                seq,
                record: _,
                next_offset,
            } => {
                if let Some(want) = *expect {
                    if seq != want {
                        damage = Some(format!("sequence jump: expected {want}, found {seq}"));
                        break;
                    }
                }
                *expect = Some(seq + 1);
                last_seq = Some(seq);
                offset = next_offset;
            }
            FrameOutcome::End => break,
            FrameOutcome::Incomplete => {
                damage = Some("partial frame at segment tail".into());
                break;
            }
            FrameOutcome::Corrupt(reason) => {
                damage = Some(reason);
                break;
            }
        }
    }
    Ok(SegmentScan {
        file_len,
        valid_len: offset as u64,
        last_seq,
        damage,
    })
}

/// State owned by the writer thread.
struct Writer {
    dir: PathBuf,
    segment_bytes: u64,
    retain_segments: usize,
    fsync: FsyncPolicy,
    segments: Vec<PathBuf>,
    active: File,
    active_len: u64,
    next_seq: u64,
    stats: Arc<JournalStats>,
    pins: PinSet,
    last_sync: Instant,
    buffer: Vec<u8>,
}

/// Cap on how many queued appends one flush+fsync may cover.
const MAX_GROUP: usize = 512;

impl Writer {
    fn run(mut self, rx: Receiver<Append>) {
        loop {
            // Block for the first append; under an interval policy, wake up
            // in time to honor the fsync deadline even when traffic stops.
            let first = match self.fsync {
                FsyncPolicy::Interval(interval) => match rx.recv_timeout(interval) {
                    Ok(append) => Some(append),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                },
                _ => match rx.recv() {
                    Ok(append) => Some(append),
                    Err(_) => break,
                },
            };
            let Some(first) = first else {
                self.sync_if_due(true);
                continue;
            };

            // Group commit: drain whatever else is already queued.
            let mut batch = vec![first];
            while batch.len() < MAX_GROUP {
                match rx.try_recv() {
                    Ok(append) => batch.push(append),
                    Err(_) => break,
                }
            }
            self.commit(batch);
        }
        // Graceful close: everything queued was already committed (the
        // channel only disconnects after the last sender is gone and the
        // queue is drained above); push the tail to the platter.
        let _ = self.active.flush();
        if self.fsync != FsyncPolicy::Never {
            self.fsync_active();
        }
    }

    /// Writes a batch of appends, flushes once, fsyncs per policy, then
    /// acknowledges every append.
    fn commit(&mut self, batch: Vec<Append>) {
        let mut done: Vec<(u64, SyncSender<Result<u64, String>>)> = Vec::with_capacity(batch.len());
        let mut failure: Option<String> = None;
        for append in batch {
            if failure.is_some() {
                let _ = append.ack.send(Err(failure.clone().unwrap()));
                continue;
            }
            match self.write_frame(append.kind, &append.body) {
                Ok(seq) => done.push((seq, append.ack)),
                Err(e) => {
                    let msg = e.to_string();
                    let _ = append.ack.send(Err(msg.clone()));
                    failure = Some(msg);
                }
            }
        }
        if let Err(e) = self.active.flush() {
            let msg = e.to_string();
            for (_, ack) in done {
                let _ = ack.send(Err(msg.clone()));
            }
            return;
        }
        if self.fsync == FsyncPolicy::PerRecord {
            if !self.fsync_active() {
                for (_, ack) in done {
                    let _ = ack.send(Err("fsync failed".into()));
                }
                return;
            }
        } else {
            self.sync_if_due(false);
        }
        for (seq, ack) in done {
            self.stats.appends.fetch_add(1, Ordering::Relaxed);
            self.stats.last_seq.fetch_max(seq, Ordering::Relaxed);
            let _ = ack.send(Ok(seq));
        }
    }

    /// Encodes and writes one frame, rolling the segment first if the
    /// active one is full. Returns the assigned sequence number.
    fn write_frame(&mut self, kind: u8, body: &[u8]) -> std::io::Result<u64> {
        if self.active_len >= self.segment_bytes && self.active_len > SEGMENT_MAGIC.len() as u64 {
            self.roll()?;
        }
        let seq = self.next_seq;
        self.buffer.clear();
        let frame_len = encode_frame(seq, kind, body, &mut self.buffer) as u64;
        self.active.write_all(&self.buffer)?;
        self.next_seq += 1;
        self.active_len += frame_len;
        self.stats.bytes.fetch_add(frame_len, Ordering::Relaxed);
        self.stats.unsynced.fetch_add(frame_len, Ordering::Relaxed);
        Ok(seq)
    }

    /// Seals the active segment (flush + fsync unless policy is `Never`),
    /// starts a new one named after the next sequence number, and applies
    /// retention.
    fn roll(&mut self) -> std::io::Result<()> {
        self.active.flush()?;
        if self.fsync != FsyncPolicy::Never {
            let started = Instant::now();
            self.active.sync_data()?;
            self.stats.fsync_ns.record_duration(started.elapsed());
            self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            self.stats.unsynced.store(0, Ordering::Relaxed);
        }
        let path = segment_path(&self.dir, self.next_seq);
        let mut file = File::create(&path)?;
        file.write_all(SEGMENT_MAGIC)?;
        self.stats
            .bytes
            .fetch_add(SEGMENT_MAGIC.len() as u64, Ordering::Relaxed);
        self.segments.push(path);
        self.active = file;
        self.active_len = SEGMENT_MAGIC.len() as u64;
        if self.retain_segments > 0 {
            let floor = self.retention_floor();
            while self.segments.len() > self.retain_segments {
                // The victim's frames span [first_seq(victim),
                // first_seq(successor) − 1]; deleting it is safe only when
                // every registered reader is already past that range.
                if let Some(need) = floor {
                    match segment_first_seq(&self.segments[1]) {
                        Some(successor_first) if successor_first <= need => {}
                        _ => break,
                    }
                }
                let victim = self.segments.remove(0);
                let dropped = fs::metadata(&victim).map(|m| m.len()).unwrap_or(0);
                if fs::remove_file(&victim).is_ok() {
                    self.stats.bytes.fetch_sub(dropped, Ordering::Relaxed);
                }
            }
        }
        self.stats
            .segments
            .store(self.segments.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// The lowest sequence number any registered reader still needs:
    /// in-process pins ([`Journal::pin_from`]) and durable cursor
    /// checkpoints (`cursor-*.ckpt` files written by
    /// [`crate::JournalCursor`]). `None` means no reader is registered and
    /// retention may prune freely.
    fn retention_floor(&self) -> Option<u64> {
        let mut floor: Option<u64> = None;
        let mut fold = |seq: u64| floor = Some(floor.map_or(seq, |f: u64| f.min(seq)));
        if let Ok(pins) = self.pins.lock() {
            for &seq in pins.values() {
                fold(seq);
            }
        }
        for seq in checkpoint_positions(&self.dir) {
            fold(seq);
        }
        floor
    }

    /// Fsyncs the active segment under an interval policy when the deadline
    /// has passed (or when `force`d by an idle wake-up with pending bytes).
    fn sync_if_due(&mut self, idle: bool) {
        if let FsyncPolicy::Interval(interval) = self.fsync {
            let due = self.last_sync.elapsed() >= interval;
            let pending = self.stats.unsynced.load(Ordering::Relaxed) > 0;
            if pending && (due || idle) {
                let _ = self.active.flush();
                self.fsync_active();
            }
        }
    }

    /// Fsyncs the active segment, updating telemetry. Returns success.
    fn fsync_active(&mut self) -> bool {
        let started = Instant::now();
        match self.active.sync_data() {
            Ok(()) => {
                self.stats.fsync_ns.record_duration(started.elapsed());
                self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                self.stats.unsynced.store(0, Ordering::Relaxed);
                self.last_sync = Instant::now();
                true
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static SCRATCH: AtomicUsize = AtomicUsize::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("pfr_journal_unit_{}_{tag}_{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn score(model: &str, features: &[f64]) -> Record {
        Record::Score {
            model: model.into(),
            features: features.to_vec(),
        }
    }

    fn collect(dir: &Path) -> Vec<(u64, Record)> {
        let mut out = Vec::new();
        replay_dir(dir, |seq, record| out.push((seq, record))).expect("replays");
        out
    }

    #[test]
    fn append_reopen_replay_roundtrips() {
        let dir = scratch_dir("roundtrip");
        let config = JournalConfig {
            fsync: FsyncPolicy::Never,
            ..JournalConfig::new(&dir)
        };
        let journal = Journal::open(config.clone()).expect("opens");
        let records = [
            score("a", &[1.0, f64::NAN]),
            Record::Push {
                model: "b".into(),
                bundle_text: "bundle body\n".into(),
            },
            Record::Transform {
                model: "a".into(),
                features: vec![-0.0, 2.5],
            },
            Record::Load {
                model: "c".into(),
                bundle_text: "x".repeat(1000),
            },
        ];
        for (i, record) in records.iter().enumerate() {
            assert_eq!(journal.append(record).expect("appends"), i as u64 + 1);
        }
        assert_eq!(journal.stats().last_seq(), 4);
        journal.close();

        let replayed = collect(&dir);
        assert_eq!(replayed.len(), 4);
        for (i, (seq, record)) in replayed.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert!(record.bitwise_eq(&records[i]), "frame {i} differs");
        }

        // Reopen continues the sequence where it left off.
        let journal = Journal::open(config).expect("reopens");
        assert_eq!(journal.append(&score("a", &[9.0])).expect("appends"), 5);
        journal.close();
        assert_eq!(collect(&dir).len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open_and_never_invents_frames() {
        let dir = scratch_dir("torn");
        let config = JournalConfig {
            fsync: FsyncPolicy::Never,
            ..JournalConfig::new(&dir)
        };
        let journal = Journal::open(config.clone()).expect("opens");
        for i in 0..5 {
            journal.append(&score("m", &[i as f64])).expect("appends");
        }
        journal.close();

        // Tear the last frame: chop off its final 3 bytes.
        let segments = list_segments(&dir).expect("lists");
        let last = segments.last().expect("has a segment");
        let len = fs::metadata(last).expect("meta").len();
        let file = OpenOptions::new().write(true).open(last).expect("opens");
        file.set_len(len - 3).expect("truncates");
        drop(file);

        // Read-only replay stops at the torn frame and reports the skip.
        let mut seen = 0;
        let summary = replay_dir(&dir, |_, _| seen += 1).expect("replays");
        assert_eq!(seen, 4);
        assert_eq!(summary.frames, 4);
        assert!(summary.truncated_bytes > 0);

        // Open truncates the tear and appends cleanly after frame 4.
        let journal = Journal::open(config).expect("recovers");
        assert_eq!(journal.stats().last_seq(), 4);
        assert_eq!(journal.append(&score("m", &[9.0])).expect("appends"), 5);
        journal.close();
        let replayed = collect(&dir);
        assert_eq!(replayed.len(), 5);
        assert_eq!(replayed.last().unwrap().0, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_before_the_tail_fails_open() {
        let dir = scratch_dir("midrot");
        let config = JournalConfig {
            segment_bytes: 64, // force several segments
            fsync: FsyncPolicy::Never,
            ..JournalConfig::new(&dir)
        };
        let journal = Journal::open(config.clone()).expect("opens");
        for i in 0..20 {
            journal.append(&score("m", &[i as f64])).expect("appends");
        }
        journal.close();
        let segments = list_segments(&dir).expect("lists");
        assert!(segments.len() >= 2, "rotation must have produced segments");

        // Flip a byte in the FIRST segment: not a torn tail, hard error.
        let first = &segments[0];
        let mut buf = fs::read(first).expect("reads");
        let mid = buf.len() / 2;
        buf[mid] ^= 0xff;
        fs::write(first, &buf).expect("writes");
        match Journal::open(config) {
            Err(JournalError::Corrupt { .. }) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_rolls_and_retention_prunes_oldest_segments() {
        let dir = scratch_dir("retain");
        let journal = Journal::open(JournalConfig {
            segment_bytes: 128,
            retain_segments: 3,
            fsync: FsyncPolicy::Never,
            ..JournalConfig::new(&dir)
        })
        .expect("opens");
        for i in 0..50 {
            journal
                .append(&score("model", &[i as f64, 0.5, -1.0]))
                .expect("appends");
        }
        let segments_on_disk = list_segments(&dir).expect("lists").len();
        assert_eq!(segments_on_disk, 3, "retention must cap segment count");
        assert_eq!(journal.stats().segments(), 3);
        journal.close();

        // Replay starts mid-stream but stays consecutive and ends at 50.
        let replayed = collect(&dir);
        assert!(replayed.len() < 50);
        assert_eq!(replayed.last().expect("has frames").0, 50);
        for pair in replayed.windows(2) {
            assert_eq!(pair[1].0, pair[0].0 + 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_skips_segments_a_pin_still_needs() {
        let dir = scratch_dir("pinned");
        let journal = Journal::open(JournalConfig {
            segment_bytes: 128,
            retain_segments: 2,
            fsync: FsyncPolicy::Never,
            ..JournalConfig::new(&dir)
        })
        .expect("opens");
        let pin = journal.pin_from(1);
        for i in 0..50 {
            journal
                .append(&score("model", &[i as f64, 0.5, -1.0]))
                .expect("appends");
        }
        // Every frame is still replayable: the pin blocked all pruning.
        let replayed = collect(&dir);
        assert_eq!(replayed.len(), 50);
        assert_eq!(replayed[0].0, 1);
        assert!(journal.stats().segments() > 2, "nothing was pruned");

        // Release the pin; the next roll prunes back down to the cap.
        drop(pin);
        for i in 0..30 {
            journal
                .append(&score("model", &[i as f64, 0.5, -1.0]))
                .expect("appends");
        }
        assert_eq!(list_segments(&dir).expect("lists").len(), 2);
        journal.close();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_respects_cursor_checkpoints_across_handles() {
        let dir = scratch_dir("ckpt_pin");
        let config = JournalConfig {
            segment_bytes: 128,
            retain_segments: 2,
            fsync: FsyncPolicy::Never,
            ..JournalConfig::new(&dir)
        };
        // A registered cursor parked at frame 1 — e.g. a refit worker that
        // has not caught up yet — must hold every segment on disk.
        let cursor = crate::JournalCursor::open(&dir, "worker", 1).expect("cursor opens");
        let journal = Journal::open(config.clone()).expect("opens");
        for i in 0..50 {
            journal
                .append(&score("model", &[i as f64, 0.5, -1.0]))
                .expect("appends");
        }
        assert_eq!(collect(&dir).len(), 50, "no frame was pruned");

        // Once the cursor drains and checkpoints at the tail (seq 51),
        // retention may prune segments wholly behind the checkpoint on the
        // next roll — but nothing at or after it.
        let mut cursor = cursor;
        while cursor.next().expect("tails").is_some() {}
        cursor.checkpoint().expect("checkpoints");
        assert_eq!(cursor.checkpointed(), 51);
        for i in 0..30 {
            journal
                .append(&score("model", &[i as f64, 0.5, -1.0]))
                .expect("appends");
        }
        let replayed = collect(&dir);
        let first = replayed.first().expect("frames remain").0;
        assert!(first > 1, "pruning must resume once the cursor advances");
        assert!(
            first <= 51,
            "no frame at or after the checkpoint may be pruned (first={first})"
        );
        assert_eq!(replayed.last().expect("frames remain").0, 80);
        journal.close();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_names_roundtrip_through_first_seq() {
        let dir = PathBuf::from("/tmp/j");
        for seq in [1u64, 42, u64::MAX] {
            assert_eq!(segment_first_seq(&segment_path(&dir, seq)), Some(seq));
        }
        assert_eq!(segment_first_seq(Path::new("/tmp/j/other.txt")), None);
        assert_eq!(segment_first_seq(Path::new("/tmp/j/seg-xyz.wal")), None);
    }

    #[test]
    fn concurrent_appends_group_commit_under_per_record_fsync() {
        let dir = scratch_dir("group");
        let journal = Arc::new(
            Journal::open(JournalConfig {
                fsync: FsyncPolicy::PerRecord,
                ..JournalConfig::new(&dir)
            })
            .expect("opens"),
        );
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let journal = Arc::clone(&journal);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        journal
                            .append(&score("m", &[t as f64, i as f64]))
                            .expect("appends");
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("appender joins");
        }
        let stats = journal.stats();
        assert_eq!(stats.appends(), 100);
        assert_eq!(stats.last_seq(), 100);
        assert!(stats.fsyncs() >= 1);
        assert!(
            stats.fsyncs() <= 100,
            "group commit must not fsync more than once per append"
        );
        assert_eq!(stats.unsynced(), 0, "per-record policy leaves no lag");
        Arc::try_unwrap(journal).expect("sole owner").close();
        assert_eq!(collect(&dir).len(), 100);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interval_policy_eventually_fsyncs_idle_tail() {
        let dir = scratch_dir("interval");
        let journal = Journal::open(JournalConfig {
            fsync: FsyncPolicy::Interval(Duration::from_millis(5)),
            ..JournalConfig::new(&dir)
        })
        .expect("opens");
        journal.append(&score("m", &[1.0])).expect("appends");
        let deadline = Instant::now() + Duration::from_secs(5);
        while journal.stats().unsynced() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(journal.stats().unsynced(), 0, "idle fsync must catch up");
        assert!(journal.stats().fsyncs() >= 1);
        journal.close();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_after_close_reports_closed() {
        let dir = scratch_dir("closed");
        let mut journal = Journal::open(JournalConfig {
            fsync: FsyncPolicy::Never,
            ..JournalConfig::new(&dir)
        })
        .expect("opens");
        journal.shutdown();
        match journal.append(&score("m", &[1.0])) {
            Err(JournalError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        drop(journal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_line_is_key_value_pairs() {
        let stats = JournalStats::default();
        stats.last_seq.store(7, Ordering::Relaxed);
        let line = stats.to_line();
        assert!(line.contains("journal_seq=7"));
        for pair in line.split_whitespace() {
            assert!(pair.contains('='), "malformed pair '{pair}'");
        }
    }

    #[test]
    fn fresh_directory_starts_at_sequence_one() {
        let dir = scratch_dir("fresh");
        let journal = Journal::open(JournalConfig {
            fsync: FsyncPolicy::Never,
            ..JournalConfig::new(&dir)
        })
        .expect("opens");
        assert_eq!(journal.stats().last_seq(), 0);
        assert_eq!(journal.stats().segments(), 1);
        assert_eq!(journal.append(&score("m", &[0.0])).expect("appends"), 1);
        journal.close();
        let _ = fs::remove_dir_all(&dir);
    }
}
