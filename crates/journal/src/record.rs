//! Journal record payloads: the four serving-tier mutations/reads worth
//! replaying after a crash, with a compact binary body encoding.
//!
//! Feature vectors are stored as raw IEEE-754 bit patterns (not decimal
//! text), so a replayed `Score` reproduces the exact `f64`s the live server
//! saw — including NaN payloads — and cache re-warming stays bit-exact.
//! Bundle text is inlined verbatim for `Load` and `Push`, so recovery never
//! needs the filesystem the original `LOAD` read from.

/// One journaled request, decoded.
#[derive(Debug, Clone)]
pub enum Record {
    /// An accepted `SCORE` request: model name and the raw feature vector.
    Score {
        /// Registry name the request addressed.
        model: String,
        /// Feature vector exactly as scored.
        features: Vec<f64>,
    },
    /// An accepted `TRANSFORM` request.
    Transform {
        /// Registry name the request addressed.
        model: String,
        /// Feature vector exactly as transformed.
        features: Vec<f64>,
    },
    /// A successful `LOAD`: the bundle text is inlined so replay does not
    /// depend on the file the original request named.
    Load {
        /// Registry name the bundle was installed under.
        model: String,
        /// Canonical bundle text ([`pfr_core::persistence::bundle_to_string`]).
        bundle_text: String,
    },
    /// A successful `PUSH`: bundle text exactly as received on the wire.
    Push {
        /// Registry name the bundle was installed under.
        model: String,
        /// Canonical bundle text.
        bundle_text: String,
    },
    /// A slow-request diagnostic: the span breakdown of a traced request
    /// that breached the configured latency threshold, riding the same
    /// durable stream as the requests themselves. Replay skips these —
    /// they carry no state to rebuild.
    SlowTrace {
        /// The trace id of the slow request.
        trace_id: u64,
        /// End-to-end latency of the request in nanoseconds.
        total_ns: u64,
        /// The rendered span breakdown (`SpanRecord::render` text).
        text: String,
    },
}

/// Frame kind tags (one byte on disk).
const KIND_SCORE: u8 = 1;
const KIND_TRANSFORM: u8 = 2;
const KIND_LOAD: u8 = 3;
const KIND_PUSH: u8 = 4;
const KIND_SLOW_TRACE: u8 = 5;

impl Record {
    /// The one-byte kind tag written into the frame header.
    pub fn kind(&self) -> u8 {
        match self {
            Record::Score { .. } => KIND_SCORE,
            Record::Transform { .. } => KIND_TRANSFORM,
            Record::Load { .. } => KIND_LOAD,
            Record::Push { .. } => KIND_PUSH,
            Record::SlowTrace { .. } => KIND_SLOW_TRACE,
        }
    }

    /// The model name this record addresses (empty for diagnostics like
    /// [`Record::SlowTrace`], which address no model).
    pub fn model(&self) -> &str {
        match self {
            Record::Score { model, .. }
            | Record::Transform { model, .. }
            | Record::Load { model, .. }
            | Record::Push { model, .. } => model,
            Record::SlowTrace { .. } => "",
        }
    }

    /// Serializes the frame body (everything between the header and the
    /// checksum) into `out`.
    pub fn encode_body(&self, out: &mut Vec<u8>) {
        let model = self.model().as_bytes();
        out.extend_from_slice(&(model.len() as u16).to_le_bytes());
        out.extend_from_slice(model);
        match self {
            Record::Score { features, .. } | Record::Transform { features, .. } => {
                out.extend_from_slice(&(features.len() as u32).to_le_bytes());
                for value in features {
                    out.extend_from_slice(&value.to_bits().to_le_bytes());
                }
            }
            Record::Load { bundle_text, .. } | Record::Push { bundle_text, .. } => {
                out.extend_from_slice(&(bundle_text.len() as u32).to_le_bytes());
                out.extend_from_slice(bundle_text.as_bytes());
            }
            Record::SlowTrace {
                trace_id,
                total_ns,
                text,
            } => {
                out.extend_from_slice(&trace_id.to_le_bytes());
                out.extend_from_slice(&total_ns.to_le_bytes());
                out.extend_from_slice(&(text.len() as u32).to_le_bytes());
                out.extend_from_slice(text.as_bytes());
            }
        }
    }

    /// Parses a frame body back into a [`Record`]. The checksum has already
    /// been verified by the caller, so a failure here means a writer bug or
    /// deliberate tampering — it is reported as corruption either way.
    pub fn decode_body(kind: u8, body: &[u8]) -> Result<Record, String> {
        let mut cursor = Cursor { body, at: 0 };
        let model_len = cursor.u16()? as usize;
        let model = String::from_utf8(cursor.take(model_len)?.to_vec())
            .map_err(|_| "model name is not utf-8".to_string())?;
        let record = match kind {
            KIND_SCORE | KIND_TRANSFORM => {
                let n = cursor.u32()? as usize;
                let mut features = Vec::with_capacity(n);
                for _ in 0..n {
                    features.push(f64::from_bits(cursor.u64()?));
                }
                if kind == KIND_SCORE {
                    Record::Score { model, features }
                } else {
                    Record::Transform { model, features }
                }
            }
            KIND_LOAD | KIND_PUSH => {
                let len = cursor.u32()? as usize;
                let bundle_text = String::from_utf8(cursor.take(len)?.to_vec())
                    .map_err(|_| "bundle text is not utf-8".to_string())?;
                if kind == KIND_LOAD {
                    Record::Load { model, bundle_text }
                } else {
                    Record::Push { model, bundle_text }
                }
            }
            KIND_SLOW_TRACE => {
                let trace_id = cursor.u64()?;
                let total_ns = cursor.u64()?;
                let len = cursor.u32()? as usize;
                let text = String::from_utf8(cursor.take(len)?.to_vec())
                    .map_err(|_| "trace text is not utf-8".to_string())?;
                Record::SlowTrace {
                    trace_id,
                    total_ns,
                    text,
                }
            }
            other => return Err(format!("unknown record kind {other}")),
        };
        if cursor.at != body.len() {
            return Err(format!(
                "{} trailing bytes after record body",
                body.len() - cursor.at
            ));
        }
        Ok(record)
    }

    /// Bitwise equality: feature vectors compare by IEEE-754 bit pattern
    /// (`NaN == NaN` here), which is the round-trip contract the journal
    /// guarantees and what property tests assert.
    pub fn bitwise_eq(&self, other: &Record) -> bool {
        let features_eq = |a: &[f64], b: &[f64]| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        };
        match (self, other) {
            (
                Record::Score {
                    model: m1,
                    features: f1,
                },
                Record::Score {
                    model: m2,
                    features: f2,
                },
            )
            | (
                Record::Transform {
                    model: m1,
                    features: f1,
                },
                Record::Transform {
                    model: m2,
                    features: f2,
                },
            ) => m1 == m2 && features_eq(f1, f2),
            (
                Record::Load {
                    model: m1,
                    bundle_text: t1,
                },
                Record::Load {
                    model: m2,
                    bundle_text: t2,
                },
            )
            | (
                Record::Push {
                    model: m1,
                    bundle_text: t1,
                },
                Record::Push {
                    model: m2,
                    bundle_text: t2,
                },
            ) => m1 == m2 && t1 == t2,
            (
                Record::SlowTrace {
                    trace_id: i1,
                    total_ns: n1,
                    text: t1,
                },
                Record::SlowTrace {
                    trace_id: i2,
                    total_ns: n2,
                    text: t2,
                },
            ) => i1 == i2 && n1 == n2 && t1 == t2,
            _ => false,
        }
    }
}

/// Minimal little-endian reader over a frame body.
struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.body.len())
            .ok_or_else(|| "record body truncated".to_string())?;
        let slice = &self.body[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(record: &Record) -> Record {
        let mut body = Vec::new();
        record.encode_body(&mut body);
        Record::decode_body(record.kind(), &body).expect("decodes")
    }

    #[test]
    fn score_roundtrips_bit_exactly_including_nan() {
        let record = Record::Score {
            model: "admissions".into(),
            features: vec![1.5, -0.0, f64::NAN, f64::INFINITY, 1e-308],
        };
        assert!(record.bitwise_eq(&roundtrip(&record)));
    }

    #[test]
    fn transform_and_push_roundtrip() {
        let t = Record::Transform {
            model: "m".into(),
            features: vec![],
        };
        assert!(t.bitwise_eq(&roundtrip(&t)));
        let p = Record::Push {
            model: "m".into(),
            bundle_text: "pfr-bundle v1\nweights 1 2 3\n".into(),
        };
        assert!(p.bitwise_eq(&roundtrip(&p)));
        let l = Record::Load {
            model: "m".into(),
            bundle_text: String::new(),
        };
        assert!(l.bitwise_eq(&roundtrip(&l)));
    }

    #[test]
    fn kinds_are_distinct_and_stable() {
        let score = Record::Score {
            model: "m".into(),
            features: vec![],
        };
        assert_eq!(score.kind(), 1);
        let empty = Record::Push {
            model: "m".into(),
            bundle_text: String::new(),
        };
        assert_eq!(empty.kind(), 4);
    }

    #[test]
    fn slow_trace_roundtrips() {
        let record = Record::SlowTrace {
            trace_id: 0xdead_beef_cafe_f00d,
            total_ns: 12_345_678,
            text: "span serve/SCORE trace=deadbeefcafef00d total_ns=12345678\n  @ resolve 100\n"
                .into(),
        };
        assert_eq!(record.kind(), 5);
        assert_eq!(record.model(), "");
        assert!(record.bitwise_eq(&roundtrip(&record)));
    }

    #[test]
    fn decode_rejects_unknown_kind_and_truncation() {
        let mut body = Vec::new();
        Record::Score {
            model: "m".into(),
            features: vec![1.0],
        }
        .encode_body(&mut body);
        assert!(Record::decode_body(99, &body).is_err());
        assert!(Record::decode_body(1, &body[..body.len() - 1]).is_err());
        let mut padded = body.clone();
        padded.push(0);
        assert!(Record::decode_body(1, &padded).is_err());
    }

    #[test]
    fn different_kinds_never_compare_equal() {
        let s = Record::Score {
            model: "m".into(),
            features: vec![1.0],
        };
        let t = Record::Transform {
            model: "m".into(),
            features: vec![1.0],
        };
        assert!(!s.bitwise_eq(&t));
    }
}
