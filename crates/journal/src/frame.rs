//! On-disk frame format: checksummed, length-prefixed binary frames.
//!
//! ```text
//! segment := MAGIC frame*
//! MAGIC   := "PFRWAL1\n"                        (8 bytes)
//! frame   := body_len:u32  seq:u64  kind:u8     (13-byte header, little-endian)
//!            body[body_len]
//!            checksum:u64                       (FNV-1a over header ++ body)
//! ```
//!
//! The checksum covers the header *and* the body, so a frame whose length
//! field itself was torn mid-write cannot masquerade as valid: the declared
//! region either ends past EOF (incomplete) or hashes wrong (corrupt).
//! Either way the frame — and everything after it — is discarded, which is
//! exactly the torn-write recovery contract: a crash can only ever cost the
//! suffix that was never acknowledged as durable.

use crate::record::Record;
use pfr_core::persistence::fnv1a;

/// Eight magic bytes opening every segment file (includes a format version).
pub const SEGMENT_MAGIC: &[u8; 8] = b"PFRWAL1\n";

/// Fixed header size: `body_len` (4) + `seq` (8) + `kind` (1).
pub const HEADER_LEN: usize = 13;

/// Trailing checksum size.
pub const TRAILER_LEN: usize = 8;

/// Upper bound on a frame body — far above `MAX_PUSH_BYTES` (64 MiB) but
/// small enough that a torn length field cannot trigger a giant allocation.
pub const MAX_BODY_LEN: usize = 256 << 20;

/// Encodes one frame (header + body + checksum) into `out`; returns the
/// number of bytes appended.
pub fn encode_frame(seq: u64, kind: u8, body: &[u8], out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(body);
    let checksum = fnv1a(&out[start..]);
    out.extend_from_slice(&checksum.to_le_bytes());
    out.len() - start
}

/// Result of attempting to read one frame at `offset`.
#[derive(Debug)]
pub enum FrameOutcome {
    /// A complete, checksum-valid frame.
    Frame {
        /// Sequence number from the header.
        seq: u64,
        /// Decoded record payload.
        record: Record,
        /// Offset of the byte after this frame.
        next_offset: usize,
    },
    /// `offset` is exactly the end of the buffer — a clean segment end.
    End,
    /// The buffer ends inside a frame — a torn write at the tail.
    Incomplete,
    /// The frame region is present but invalid (bad checksum, insane
    /// length, unknown kind, undecodable body).
    Corrupt(String),
}

/// Reads the frame starting at `offset` in a segment's byte buffer.
pub fn decode_frame(buf: &[u8], offset: usize) -> FrameOutcome {
    if offset == buf.len() {
        return FrameOutcome::End;
    }
    if buf.len() - offset < HEADER_LEN {
        return FrameOutcome::Incomplete;
    }
    let header = &buf[offset..offset + HEADER_LEN];
    let body_len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    if body_len > MAX_BODY_LEN {
        return FrameOutcome::Corrupt(format!("declared body of {body_len} bytes"));
    }
    let frame_len = HEADER_LEN + body_len + TRAILER_LEN;
    if buf.len() - offset < frame_len {
        return FrameOutcome::Incomplete;
    }
    let seq = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let kind = header[12];
    let hashed = &buf[offset..offset + HEADER_LEN + body_len];
    let stored = u64::from_le_bytes(
        buf[offset + HEADER_LEN + body_len..offset + frame_len]
            .try_into()
            .unwrap(),
    );
    if fnv1a(hashed) != stored {
        return FrameOutcome::Corrupt("checksum mismatch".into());
    }
    match Record::decode_body(
        kind,
        &buf[offset + HEADER_LEN..offset + HEADER_LEN + body_len],
    ) {
        Ok(record) => FrameOutcome::Frame {
            seq,
            record,
            next_offset: offset + frame_len,
        },
        Err(reason) => FrameOutcome::Corrupt(reason),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record::Score {
            model: "m".into(),
            features: vec![0.25, f64::NAN],
        }
    }

    fn encoded(seq: u64) -> Vec<u8> {
        let record = sample();
        let mut body = Vec::new();
        record.encode_body(&mut body);
        let mut out = Vec::new();
        encode_frame(seq, record.kind(), &body, &mut out);
        out
    }

    #[test]
    fn frame_roundtrips() {
        let buf = encoded(7);
        match decode_frame(&buf, 0) {
            FrameOutcome::Frame {
                seq,
                record,
                next_offset,
            } => {
                assert_eq!(seq, 7);
                assert_eq!(next_offset, buf.len());
                assert!(record.bitwise_eq(&sample()));
            }
            other => panic!("expected frame, got {other:?}"),
        }
        assert!(matches!(decode_frame(&buf, buf.len()), FrameOutcome::End));
    }

    #[test]
    fn every_truncation_is_incomplete_not_corrupt() {
        let buf = encoded(1);
        for cut in 1..buf.len() {
            assert!(
                matches!(decode_frame(&buf[..cut], 0), FrameOutcome::Incomplete),
                "cut at {cut} must read as a torn tail"
            );
        }
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let buf = encoded(3);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            match decode_frame(&bad, 0) {
                FrameOutcome::Corrupt(_) | FrameOutcome::Incomplete => {}
                FrameOutcome::Frame { .. } => {
                    panic!("flipping byte {i} went undetected")
                }
                FrameOutcome::End => unreachable!(),
            }
        }
    }

    #[test]
    fn insane_length_is_corrupt_without_allocating() {
        let mut buf = vec![0u8; HEADER_LEN + TRAILER_LEN];
        buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&buf, 0), FrameOutcome::Corrupt(_)));
    }
}
