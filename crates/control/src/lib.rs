//! # pfr-control
//!
//! The replicated placement catalog — the small control plane that lets
//! N `pfr-router` instances over one backend cluster agree on a single
//! (roster, placements, epoch) view without any shared filesystem,
//! coordinator process or config replay.
//!
//! A [`Catalog`] is an epoch-versioned value:
//!
//! * **roster** — the ring membership as `(backend id, address)` pairs.
//!   Ids are the router-tier ring ids (never reused), so two routers that
//!   adopt the same roster build bit-identical hash rings.
//! * **placements** — model name → canonical bundle text plus its FNV-1a
//!   content digest (the same digest `EPOCH` reports), so any holder of
//!   the catalog can both *verify* a replica and *repair* it by `PUSH`.
//! * **epoch / writer** — a totally ordered version stamp. Every local
//!   mutation bumps the epoch; concurrent equal-epoch writes are broken
//!   deterministically by `(writer, digest)`.
//!
//! Propagation is **digest-first anti-entropy**: holders exchange the
//! one-line summary `(epoch, writer, digest)` and transfer the full
//! catalog text only when the summaries differ. Merging is wholesale
//! last-writer-wins under the [`Version`] total order — the catalog is a
//! small control-plane value (tens of entries), so the simplicity of
//! replacing it atomically beats per-entry CRDT merging; the router tier
//! serializes its own mutations behind a reconcile gate, and cross-router
//! races resolve deterministically (see `DESIGN.md` for the lost-update
//! window this admits and why placement convergence survives it).
//!
//! The crate is deliberately dumb: no sockets, no threads, no clocks —
//! just the value, its canonical text form, and its ordering. `pfr-serve`
//! stores one as a blob behind the `CATALOG`/`SYNC` verbs; `pfr-router`
//! mutates, publishes and adopts it.

#![deny(missing_docs)]
#![warn(clippy::all)]

use pfr_core::persistence::{bundle_text_digest, digest_hex, fnv1a};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from parsing or mutating a catalog.
#[derive(Debug)]
pub enum ControlError {
    /// The catalog text did not parse.
    Parse(String),
    /// A placement's bundle text was rejected by the bundle parser.
    Bundle(String),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::Parse(m) => write!(f, "catalog parse error: {m}"),
            ControlError::Bundle(m) => write!(f, "catalog bundle error: {m}"),
        }
    }
}

impl std::error::Error for ControlError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, ControlError>;

/// The totally ordered version stamp of a catalog: `(epoch, writer,
/// digest)` compared lexicographically. Epoch is the logical clock;
/// `writer` breaks concurrent equal-epoch writes deterministically (every
/// router mints a distinct writer id); `digest` breaks the pathological
/// same-epoch-same-writer case so the order is total over *values*, not
/// just writers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Version {
    /// Logical clock, bumped on every local mutation.
    pub epoch: u64,
    /// Id of the router that produced this version.
    pub writer: u64,
    /// FNV-1a digest of the canonical catalog text.
    pub digest: u64,
}

impl Version {
    /// Renders the version the way the `CATALOG`/`SYNC` verbs report it.
    pub fn summary(&self) -> String {
        format!(
            "epoch={} writer={} digest={}",
            self.epoch,
            self.writer,
            digest_hex(self.digest)
        )
    }

    /// Parses a `epoch=<e> writer=<w> digest=<hex>` summary (the payload
    /// of an `OK` response to `CATALOG`, ignoring any extra tokens).
    pub fn parse_summary(text: &str) -> Result<Version> {
        let mut epoch = None;
        let mut writer = None;
        let mut digest = None;
        for token in text.split_whitespace() {
            if let Some(v) = token.strip_prefix("epoch=") {
                epoch = v.parse::<u64>().ok();
            } else if let Some(v) = token.strip_prefix("writer=") {
                writer = v.parse::<u64>().ok();
            } else if let Some(v) = token.strip_prefix("digest=") {
                digest = u64::from_str_radix(v, 16).ok();
            }
        }
        match (epoch, writer, digest) {
            (Some(epoch), Some(writer), Some(digest)) => Ok(Version {
                epoch,
                writer,
                digest,
            }),
            _ => Err(ControlError::Parse(format!(
                "malformed version summary '{text}'"
            ))),
        }
    }
}

/// One placed model: its canonical bundle text and that text's content
/// digest (identical to what the replica's `EPOCH` verb reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// FNV-1a digest of the canonical serialized bundle.
    pub digest: u64,
    /// The canonical serialized bundle text itself.
    pub bundle_text: String,
}

/// The replicated placement catalog. See the crate docs for semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Catalog {
    epoch: u64,
    writer: u64,
    roster: BTreeMap<usize, String>,
    placements: BTreeMap<String, Placement>,
}

impl Catalog {
    /// An empty catalog at epoch 0 owned by `writer`. Epoch 0 is the
    /// "never written" state: any real catalog supersedes it.
    pub fn new(writer: u64) -> Catalog {
        Catalog {
            epoch: 0,
            writer,
            roster: BTreeMap::new(),
            placements: BTreeMap::new(),
        }
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The writer that produced the current epoch.
    pub fn writer(&self) -> u64 {
        self.writer
    }

    /// Whether this catalog has ever been written (epoch > 0).
    pub fn is_initialized(&self) -> bool {
        self.epoch > 0
    }

    /// The ring roster as `(backend id, address)` pairs in id order.
    pub fn roster(&self) -> impl Iterator<Item = (usize, &str)> {
        self.roster.iter().map(|(id, addr)| (*id, addr.as_str()))
    }

    /// Number of roster members.
    pub fn roster_len(&self) -> usize {
        self.roster.len()
    }

    /// Placed models in name order.
    pub fn placements(&self) -> impl Iterator<Item = (&str, &Placement)> {
        self.placements.iter().map(|(n, p)| (n.as_str(), p))
    }

    /// Looks up one placement.
    pub fn placement(&self, name: &str) -> Option<&Placement> {
        self.placements.get(name)
    }

    /// Number of placed models.
    pub fn placements_len(&self) -> usize {
        self.placements.len()
    }

    /// This catalog's version stamp (digest computed over the canonical
    /// text, so two holders with identical content report identical
    /// versions regardless of how the content arrived).
    pub fn version(&self) -> Version {
        Version {
            epoch: self.epoch,
            writer: self.writer,
            digest: fnv1a(self.to_text().as_bytes()),
        }
    }

    /// Whether this catalog supersedes `other` under the total order.
    pub fn supersedes(&self, other: &Catalog) -> bool {
        self.version() > other.version()
    }

    fn bump(&mut self, writer: u64) {
        self.epoch += 1;
        self.writer = writer;
    }

    /// Replaces the roster wholesale and bumps the epoch. `writer` is the
    /// mutating router's id.
    pub fn set_roster(&mut self, writer: u64, roster: impl IntoIterator<Item = (usize, String)>) {
        self.roster = roster.into_iter().collect();
        self.bump(writer);
    }

    /// Adds or replaces one roster member and bumps the epoch.
    pub fn add_member(&mut self, writer: u64, id: usize, addr: String) {
        self.roster.insert(id, addr);
        self.bump(writer);
    }

    /// Removes one roster member and bumps the epoch (no-op bump is
    /// skipped when the id was absent).
    pub fn remove_member(&mut self, writer: u64, id: usize) {
        if self.roster.remove(&id).is_some() {
            self.bump(writer);
        }
    }

    /// Adds or replaces a placement and bumps the epoch. The bundle text
    /// is validated and its content digest computed through the same
    /// parser the serving tier uses, so a catalog can never distribute a
    /// bundle its replicas would reject.
    pub fn upsert_placement(&mut self, writer: u64, name: &str, bundle_text: &str) -> Result<u64> {
        let digest =
            bundle_text_digest(bundle_text).map_err(|e| ControlError::Bundle(e.to_string()))?;
        let placement = Placement {
            digest,
            bundle_text: bundle_text.to_string(),
        };
        if self.placements.get(name) == Some(&placement) {
            return Ok(digest); // idempotent re-place: no epoch churn
        }
        self.placements.insert(name.to_string(), placement);
        self.bump(writer);
        Ok(digest)
    }

    /// Removes a placement and bumps the epoch when it existed.
    pub fn remove_placement(&mut self, writer: u64, name: &str) {
        if self.placements.remove(name).is_some() {
            self.bump(writer);
        }
    }

    /// Canonical text form: line-based, deterministic (BTreeMap order),
    /// bundle payloads escaped onto single lines so the whole catalog
    /// travels as one counted frame over the line protocol.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "pfr-catalog v1 epoch={} writer={}\nroster {}\n",
            self.epoch,
            self.writer,
            self.roster.len()
        );
        for (id, addr) in &self.roster {
            out.push_str(&format!("member {id} {addr}\n"));
        }
        out.push_str(&format!("placements {}\n", self.placements.len()));
        for (name, placement) in &self.placements {
            out.push_str(&format!(
                "model {name} digest={}\n{}\n",
                digest_hex(placement.digest),
                escape(&placement.bundle_text)
            ));
        }
        out
    }

    /// Parses the canonical text form. Every placement's digest is
    /// recomputed from its bundle text and must match the recorded one —
    /// a catalog corrupted in flight is rejected, never adopted.
    pub fn from_text(text: &str) -> Result<Catalog> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| ControlError::Parse("empty catalog".to_string()))?;
        let rest = header
            .strip_prefix("pfr-catalog v1 ")
            .ok_or_else(|| ControlError::Parse(format!("bad header '{header}'")))?;
        let version = Version::parse_summary(&format!("{rest} digest=0"))?;
        let mut catalog = Catalog::new(version.writer);
        catalog.epoch = version.epoch;
        let roster_count = expect_count(lines.next(), "roster")?;
        for _ in 0..roster_count {
            let line = lines
                .next()
                .ok_or_else(|| ControlError::Parse("truncated roster".to_string()))?;
            let mut parts = line.split_whitespace();
            let (tag, id, addr) = (parts.next(), parts.next(), parts.next());
            match (tag, id, addr) {
                (Some("member"), Some(id), Some(addr)) => {
                    let id = id
                        .parse::<usize>()
                        .map_err(|e| ControlError::Parse(format!("bad member id: {e}")))?;
                    catalog.roster.insert(id, addr.to_string());
                }
                _ => return Err(ControlError::Parse(format!("bad roster line '{line}'"))),
            }
        }
        let placement_count = expect_count(lines.next(), "placements")?;
        for _ in 0..placement_count {
            let header = lines
                .next()
                .ok_or_else(|| ControlError::Parse("truncated placements".to_string()))?;
            let mut parts = header.split_whitespace();
            let (tag, name, digest) = (parts.next(), parts.next(), parts.next());
            let (name, digest) = match (tag, name, digest) {
                (Some("model"), Some(name), Some(digest)) => {
                    let digest = digest
                        .strip_prefix("digest=")
                        .and_then(|d| u64::from_str_radix(d, 16).ok())
                        .ok_or_else(|| {
                            ControlError::Parse(format!("bad placement digest in '{header}'"))
                        })?;
                    (name.to_string(), digest)
                }
                _ => {
                    return Err(ControlError::Parse(format!(
                        "bad placement line '{header}'"
                    )))
                }
            };
            let payload = lines
                .next()
                .ok_or_else(|| ControlError::Parse(format!("missing payload for '{name}'")))?;
            let bundle_text = unescape(payload);
            let recomputed = bundle_text_digest(&bundle_text)
                .map_err(|e| ControlError::Bundle(format!("placement '{name}': {e}")))?;
            if recomputed != digest {
                return Err(ControlError::Parse(format!(
                    "placement '{name}' digest mismatch: recorded {} computed {}",
                    digest_hex(digest),
                    digest_hex(recomputed)
                )));
            }
            catalog.placements.insert(
                name,
                Placement {
                    digest,
                    bundle_text,
                },
            );
        }
        Ok(catalog)
    }
}

fn expect_count(line: Option<&str>, section: &str) -> Result<usize> {
    let line = line.ok_or_else(|| ControlError::Parse(format!("missing {section} section")))?;
    let count = line
        .strip_prefix(section)
        .map(str::trim)
        .and_then(|n| n.parse::<usize>().ok());
    count.ok_or_else(|| ControlError::Parse(format!("bad {section} line '{line}'")))
}

/// Escapes a multi-line payload onto one line (`\` → `\\`, newline →
/// `\n`). Kept local so the crate stays at the bottom of the workspace
/// graph; byte-compatible with `pfr_obs::escape_multiline`.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Inverse of [`escape`].
pub fn unescape(wire: &str) -> String {
    let mut out = String::with_capacity(wire.len());
    let mut chars = wire.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfr_core::persistence::{bundle_to_string, ClassifierSection, ModelBundle};
    use pfr_core::{Pfr, PfrConfig};
    use pfr_graph::{KnnGraphBuilder, SparseGraph};
    use pfr_linalg::Matrix;

    fn toy_bundle_text() -> String {
        let x = Matrix::from_vec(
            6,
            3,
            vec![
                1.0, 2.0, 0.1, 1.1, 2.1, 0.2, 5.0, 6.0, 0.9, 5.1, 6.1, 0.8, 1.2, 2.2, 0.15, 5.2,
                6.2, 0.85,
            ],
        )
        .unwrap();
        let wx = KnnGraphBuilder::new(2).build(&x).unwrap();
        let mut wf = SparseGraph::new(6);
        wf.add_edge(0, 2, 1.0).unwrap();
        wf.add_edge(1, 3, 1.0).unwrap();
        let model = Pfr::new(PfrConfig {
            gamma: 0.6,
            dim: 2,
            ..PfrConfig::default()
        })
        .fit(&x, &wx, &wf)
        .unwrap();
        let bundle = ModelBundle {
            model,
            standardizer: None,
            classifier: Some(ClassifierSection {
                threshold: 0.5,
                text: "pfr-logreg-v1 intercept=0.25 features=2\nweights 1.5 -0.75\n".to_string(),
            }),
        };
        bundle_to_string(&bundle)
    }

    #[test]
    fn text_round_trip_is_exact() {
        let mut c = Catalog::new(7);
        c.set_roster(7, vec![(0, "127.0.0.1:9000".to_string())]);
        c.add_member(7, 3, "127.0.0.1:9003".to_string());
        let text = toy_bundle_text();
        c.upsert_placement(7, "toy", &text).unwrap();
        let round = Catalog::from_text(&c.to_text()).unwrap();
        assert_eq!(c, round);
        assert_eq!(c.version(), round.version());
        assert_eq!(round.placement("toy").unwrap().bundle_text, text);
    }

    #[test]
    fn every_mutation_bumps_the_epoch_once() {
        let mut c = Catalog::new(1);
        assert_eq!(c.epoch(), 0);
        assert!(!c.is_initialized());
        c.add_member(1, 0, "a:1".to_string());
        assert_eq!(c.epoch(), 1);
        let text = toy_bundle_text();
        c.upsert_placement(2, "toy", &text).unwrap();
        assert_eq!(c.epoch(), 2);
        assert_eq!(c.writer(), 2);
        // Idempotent re-place does not churn the epoch.
        c.upsert_placement(3, "toy", &text).unwrap();
        assert_eq!(c.epoch(), 2);
        assert_eq!(c.writer(), 2);
        c.remove_placement(3, "toy");
        assert_eq!(c.epoch(), 3);
        c.remove_placement(3, "toy");
        assert_eq!(c.epoch(), 3);
        c.remove_member(4, 9);
        assert_eq!(c.epoch(), 3);
        c.remove_member(4, 0);
        assert_eq!(c.epoch(), 4);
    }

    #[test]
    fn ordering_is_epoch_then_writer_then_digest() {
        let mut a = Catalog::new(1);
        let mut b = Catalog::new(2);
        a.add_member(1, 0, "a:1".to_string());
        assert!(a.supersedes(&b));
        b.add_member(2, 0, "a:1".to_string());
        b.add_member(2, 1, "a:2".to_string());
        // b at epoch 2 beats a at epoch 1.
        assert!(b.supersedes(&a));
        a.add_member(1, 1, "a:2".to_string());
        // Equal epoch, identical content: writer 2 wins deterministically.
        assert_eq!(a.epoch(), b.epoch());
        assert!(b.supersedes(&a));
        assert!(!a.supersedes(&b));
        // A catalog never supersedes itself.
        assert!(!a.supersedes(&a.clone()));
    }

    #[test]
    fn corrupted_or_mismatched_text_is_rejected() {
        let mut c = Catalog::new(5);
        c.add_member(5, 0, "a:1".to_string());
        c.upsert_placement(5, "toy", &toy_bundle_text()).unwrap();
        let text = c.to_text();
        assert!(Catalog::from_text("").is_err());
        assert!(Catalog::from_text("garbage\n").is_err());
        assert!(Catalog::from_text(&text.replace("roster 1", "roster 9")).is_err());
        // Flip the recorded digest: the recomputation catches it.
        let bad = text.replace("digest=", "digest=f");
        assert!(Catalog::from_text(&bad).is_err());
        // Garbage bundle payload is rejected by the bundle parser.
        let lines: Vec<&str> = text.lines().collect();
        let mut mangled: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        let payload_at = mangled.len() - 1;
        mangled[payload_at] = "not a bundle".to_string();
        assert!(Catalog::from_text(&format!("{}\n", mangled.join("\n"))).is_err());
    }

    #[test]
    fn escape_round_trips_bundle_text() {
        let text = "a\\nb\nliteral\\backslash\\\\double\n\n";
        assert_eq!(unescape(&escape(text)), text);
        assert!(!escape(text).contains('\n'));
    }

    #[test]
    fn version_summary_round_trips() {
        let mut c = Catalog::new(42);
        c.add_member(42, 0, "a:1".to_string());
        let v = c.version();
        assert_eq!(Version::parse_summary(&v.summary()).unwrap(), v);
        assert!(Version::parse_summary("epoch=1 writer=x digest=00").is_err());
        assert!(Version::parse_summary("nothing here").is_err());
    }
}
