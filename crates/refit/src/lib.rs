//! # pfr-refit
//!
//! Online model refit from the journal stream with a shadow-gated
//! hot-swap — the serving tier's write-ahead journal doubles as a live
//! training feed.
//!
//! The serving tier already journals every accepted request
//! (`pfr-journal`) so it can recover from a crash. This crate closes the
//! loop the other way: a background worker **tails** that same journal
//! with a durable [`pfr_journal::JournalCursor`], folds the scored feature
//! vectors into a sliding [`window::FeatureWindow`], and watches the
//! stream for **distribution drift** against the serving model's own
//! training statistics ([`drift::DriftDetector`]). When drift is detected,
//! the worker re-fits the PFR model **warm-started** from the serving
//! projection ([`engine::RefitEngine`] →
//! [`pfr_core::Pfr::fit_warm`] → `pfr_linalg::subspace`), shadow-scores
//! the candidate on a held-back slice the candidate never trained on
//! ([`gate::ShadowGate`]), and only on a passing report ships it through
//! the existing wire-level `PUSH` path ([`worker::SwapTarget`]) — a single
//! backend, a list of backends, or a whole routing tier at once.
//!
//! Every stage is observable: the worker's counters
//! (`refits_attempted/gated/swapped`, cursor position, drift checks) ride
//! the serving STATS line via
//! [`pfr_serve::Server::attach_stats_source`].
//!
//! ```text
//!   clients ──► serving tier ──► journal segments ──► JournalCursor
//!                   ▲                                      │ tail
//!                   │ PUSH (gated)                         ▼
//!              ShadowGate ◄── RefitEngine ◄── DriftDetector ◄── FeatureWindow
//! ```
//!
//! See `DESIGN.md` in this crate for the cursor protocol, the drift
//! statistics and the swap-safety argument.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod drift;
pub mod engine;
pub mod error;
pub mod gate;
pub mod window;
pub mod worker;

pub use drift::{DriftConfig, DriftDetector, DriftReport};
pub use engine::{RefitEngine, RefitModelConfig, RefitOutcome};
pub use error::RefitError;
pub use gate::{GateConfig, GateReport, ShadowGate};
pub use window::FeatureWindow;
pub use worker::{RefitConfig, RefitLoop, RefitStats, RefitStep, RefitWorker, SwapTarget};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, RefitError>;
