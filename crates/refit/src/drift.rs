//! Cheap streaming drift detection against the serving model's baseline.
//!
//! Three statistics, all `O(n·m)` over the window — deliberately far
//! cheaper than a re-fit, so the worker can afford to check often and
//! refit rarely:
//!
//! 1. **Per-feature mean shift**: `|mean_w(j) − μ_j| / σ_j`, an effect
//!    size in baseline standard deviations. Under a stationary stream this
//!    statistic concentrates like `1/√n`, so a constant threshold (default
//!    `0.5σ`) has a false-positive rate that *vanishes* as the window
//!    grows — the property the unit tests pin down.
//! 2. **Per-feature variance ratio**: `max(var_w/σ², σ²/var_w)`, catching
//!    dispersion changes a mean test is blind to.
//! 3. **Score PSI**: the Population Stability Index between the serving
//!    model's score distribution on a reference slice and on the current
//!    window — the standard industry trigger (`0.25` = act).
//!
//! The baseline mean/std come from the serving bundle's standardizer
//! section, i.e. exactly the distribution the model was fitted on; no
//! second pass over historical data is needed.

use crate::error::RefitError;
use crate::Result;
use pfr_core::persistence::StandardizerParams;
use pfr_linalg::Matrix;

/// Thresholds for [`DriftDetector::assess`].
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Trigger when any feature's mean moved more than this many baseline
    /// standard deviations.
    pub mean_shift_sigmas: f64,
    /// Trigger when any feature's variance ratio (larger/smaller) exceeds
    /// this factor.
    pub variance_ratio: f64,
    /// Trigger when the score PSI exceeds this value.
    pub psi_threshold: f64,
    /// Histogram buckets for the PSI statistic.
    pub psi_buckets: usize,
    /// Ignore windows smaller than this (too noisy to judge).
    pub min_samples: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            mean_shift_sigmas: 0.5,
            variance_ratio: 2.0,
            psi_threshold: 0.25,
            psi_buckets: 10,
            min_samples: 64,
        }
    }
}

/// What the detector saw in one window.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Verdict: at least one statistic crossed its threshold.
    pub drifted: bool,
    /// Largest per-feature standardized mean shift and its feature index.
    pub max_mean_shift: f64,
    /// Feature index attaining `max_mean_shift`.
    pub mean_shift_feature: usize,
    /// Largest per-feature variance ratio (larger/smaller).
    pub max_variance_ratio: f64,
    /// Feature index attaining `max_variance_ratio`.
    pub variance_ratio_feature: usize,
    /// Score PSI against the reference distribution (`None` when no
    /// reference scores were supplied).
    pub score_psi: Option<f64>,
    /// Window rows assessed.
    pub samples: usize,
}

impl DriftReport {
    fn stationary(samples: usize) -> DriftReport {
        DriftReport {
            drifted: false,
            max_mean_shift: 0.0,
            mean_shift_feature: 0,
            max_variance_ratio: 1.0,
            variance_ratio_feature: 0,
            score_psi: None,
            samples,
        }
    }
}

/// Drift detector anchored at the serving model's training distribution.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    means: Vec<f64>,
    stds: Vec<f64>,
    reference_scores: Option<Vec<f64>>,
}

impl DriftDetector {
    /// Builds a detector from the serving bundle's standardizer statistics.
    pub fn from_standardizer(config: DriftConfig, params: &StandardizerParams) -> Result<Self> {
        if params.means.len() != params.stds.len() || params.means.is_empty() {
            return Err(RefitError::Config(format!(
                "standardizer has {} means but {} stds",
                params.means.len(),
                params.stds.len()
            )));
        }
        if params.stds.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err(RefitError::Config(
                "baseline standard deviations must be positive and finite".to_string(),
            ));
        }
        Ok(DriftDetector {
            config,
            means: params.means.clone(),
            stds: params.stds.clone(),
            reference_scores: None,
        })
    }

    /// Installs the reference score distribution for the PSI statistic
    /// (typically the serving model's scores over an early window slice).
    pub fn set_reference_scores(&mut self, scores: Vec<f64>) {
        self.reference_scores = if scores.is_empty() {
            None
        } else {
            Some(scores)
        };
    }

    /// Whether a PSI reference is installed.
    pub fn has_reference_scores(&self) -> bool {
        self.reference_scores.is_some()
    }

    /// The configured thresholds.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Assesses one window (rows = observations) plus, optionally, the
    /// serving model's scores on that window for the PSI statistic.
    pub fn assess(&self, window: &Matrix, window_scores: Option<&[f64]>) -> Result<DriftReport> {
        let (n, m) = window.shape();
        if m != self.means.len() {
            return Err(RefitError::Window(format!(
                "window has {m} features but the baseline has {}",
                self.means.len()
            )));
        }
        if n < self.config.min_samples {
            return Ok(DriftReport::stationary(n));
        }

        let mut report = DriftReport::stationary(n);
        for j in 0..m {
            let mut sum = 0.0;
            for i in 0..n {
                sum += window[(i, j)];
            }
            let mean = sum / n as f64;
            let mut var = 0.0;
            for i in 0..n {
                let d = window[(i, j)] - mean;
                var += d * d;
            }
            var /= (n - 1).max(1) as f64;

            let shift = (mean - self.means[j]).abs() / self.stds[j];
            if shift > report.max_mean_shift {
                report.max_mean_shift = shift;
                report.mean_shift_feature = j;
            }
            let baseline_var = self.stds[j] * self.stds[j];
            let ratio = if var > baseline_var {
                var / baseline_var
            } else if var > 0.0 {
                baseline_var / var
            } else {
                f64::INFINITY
            };
            if ratio > report.max_variance_ratio {
                report.max_variance_ratio = ratio;
                report.variance_ratio_feature = j;
            }
        }

        if let (Some(reference), Some(current)) = (&self.reference_scores, window_scores) {
            if !current.is_empty() {
                report.score_psi = Some(population_stability_index(
                    reference,
                    current,
                    self.config.psi_buckets,
                ));
            }
        }

        report.drifted = report.max_mean_shift > self.config.mean_shift_sigmas
            || report.max_variance_ratio > self.config.variance_ratio
            || report
                .score_psi
                .is_some_and(|psi| psi > self.config.psi_threshold);
        Ok(report)
    }
}

/// Population Stability Index between two score samples over equal-width
/// buckets spanning the pooled range. Bucket proportions are Laplace
/// smoothed so empty buckets contribute a large-but-finite term instead of
/// `∞`.
pub fn population_stability_index(reference: &[f64], current: &[f64], buckets: usize) -> f64 {
    fn finite(s: &[f64]) -> impl Iterator<Item = f64> + '_ {
        s.iter().copied().filter(|v| v.is_finite())
    }
    let buckets = buckets.max(2);
    let lo = finite(reference)
        .chain(finite(current))
        .fold(f64::INFINITY, f64::min);
    let hi = finite(reference)
        .chain(finite(current))
        .fold(f64::NEG_INFINITY, f64::max);
    if !lo.is_finite() || !hi.is_finite() {
        return 0.0;
    }
    let width = ((hi - lo) / buckets as f64).max(f64::MIN_POSITIVE);
    let histogram = |sample: &[f64]| -> Vec<f64> {
        let mut counts = vec![0.0_f64; buckets];
        let mut total = 0.0;
        for v in finite(sample) {
            let b = (((v - lo) / width) as usize).min(buckets - 1);
            counts[b] += 1.0;
            total += 1.0;
        }
        // Laplace smoothing keeps the log term finite on empty buckets.
        counts
            .iter()
            .map(|c| (c + 0.5) / (total + 0.5 * buckets as f64))
            .collect()
    };
    let p = histogram(reference);
    let q = histogram(current);
    p.iter()
        .zip(q.iter())
        .map(|(&pi, &qi)| (qi - pi) * (qi / pi).ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline(m: usize) -> StandardizerParams {
        StandardizerParams {
            means: vec![0.0; m],
            stds: vec![1.0; m],
        }
    }

    /// Deterministic xorshift stream of approximately standard normal
    /// values (sum of 12 uniforms − 6).
    struct Normals {
        state: u64,
    }

    impl Normals {
        fn new(seed: u64) -> Self {
            Normals { state: seed.max(1) }
        }

        fn uniform(&mut self) -> f64 {
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            self.state ^= self.state << 17;
            self.state as f64 / u64::MAX as f64
        }

        fn normal(&mut self) -> f64 {
            (0..12).map(|_| self.uniform()).sum::<f64>() - 6.0
        }
    }

    fn window(n: usize, m: usize, seed: u64, mean: f64, scale: f64) -> Matrix {
        let mut rng = Normals::new(seed);
        let mut w = Matrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                w[(i, j)] = mean + scale * rng.normal();
            }
        }
        w
    }

    #[test]
    fn stationary_traffic_does_not_trigger_across_many_windows() {
        // Bounded false-positive rate: 200 independent stationary windows
        // of 256 rows must produce zero triggers at the default thresholds
        // (the mean-shift statistic concentrates at ~1/16 σ here, far from
        // the 0.5 σ threshold).
        let detector =
            DriftDetector::from_standardizer(DriftConfig::default(), &baseline(4)).unwrap();
        let mut triggers = 0;
        for round in 0..200 {
            let w = window(256, 4, 1000 + round, 0.0, 1.0);
            if detector.assess(&w, None).unwrap().drifted {
                triggers += 1;
            }
        }
        assert_eq!(triggers, 0, "stationary stream triggered {triggers}/200");
    }

    #[test]
    fn mean_shift_triggers() {
        let detector =
            DriftDetector::from_standardizer(DriftConfig::default(), &baseline(3)).unwrap();
        let mut w = window(256, 3, 7, 0.0, 1.0);
        for i in 0..w.rows() {
            w[(i, 1)] += 1.0; // one feature drifts by a full σ
        }
        let report = detector.assess(&w, None).unwrap();
        assert!(report.drifted);
        assert_eq!(report.mean_shift_feature, 1);
        assert!(report.max_mean_shift > 0.5);
    }

    #[test]
    fn variance_blowup_triggers_without_mean_shift() {
        let detector =
            DriftDetector::from_standardizer(DriftConfig::default(), &baseline(2)).unwrap();
        let w = window(512, 2, 21, 0.0, 2.0); // variance ×4, means unchanged
        let report = detector.assess(&w, None).unwrap();
        assert!(report.drifted);
        assert!(report.max_variance_ratio > 2.0);
    }

    #[test]
    fn score_distribution_shift_triggers_via_psi() {
        let mut detector =
            DriftDetector::from_standardizer(DriftConfig::default(), &baseline(2)).unwrap();
        let mut rng = Normals::new(5);
        let reference: Vec<f64> = (0..512).map(|_| 0.3 + 0.05 * rng.normal()).collect();
        detector.set_reference_scores(reference);
        let w = window(256, 2, 9, 0.0, 1.0);
        let shifted: Vec<f64> = (0..256).map(|_| 0.7 + 0.05 * rng.normal()).collect();
        let report = detector.assess(&w, Some(&shifted)).unwrap();
        assert!(report.score_psi.unwrap() > 0.25);
        assert!(report.drifted);

        let same: Vec<f64> = (0..256).map(|_| 0.3 + 0.05 * rng.normal()).collect();
        let report = detector.assess(&w, Some(&same)).unwrap();
        assert!(report.score_psi.unwrap() < 0.25);
        assert!(!report.drifted);
    }

    #[test]
    fn small_windows_are_never_judged() {
        let detector =
            DriftDetector::from_standardizer(DriftConfig::default(), &baseline(2)).unwrap();
        let w = window(16, 2, 3, 50.0, 1.0); // wildly drifted but tiny
        let report = detector.assess(&w, None).unwrap();
        assert!(!report.drifted);
        assert_eq!(report.samples, 16);
    }

    #[test]
    fn rejects_inconsistent_baselines_and_windows() {
        assert!(DriftDetector::from_standardizer(
            DriftConfig::default(),
            &StandardizerParams {
                means: vec![0.0],
                stds: vec![0.0],
            }
        )
        .is_err());
        let detector =
            DriftDetector::from_standardizer(DriftConfig::default(), &baseline(3)).unwrap();
        assert!(detector.assess(&Matrix::zeros(10, 2), None).is_err());
    }

    #[test]
    fn psi_is_near_zero_for_identical_samples_and_large_for_disjoint_ones() {
        let a: Vec<f64> = (0..1000).map(|i| (i % 100) as f64 / 100.0).collect();
        assert!(population_stability_index(&a, &a, 10).abs() < 1e-9);
        let b: Vec<f64> = a.iter().map(|v| v + 10.0).collect();
        assert!(population_stability_index(&a, &b, 10) > 1.0);
    }
}
