//! Warm-started PFR re-fit over the current window.
//!
//! The engine rebuilds the full training pipeline on window data alone —
//! no access to the original labeled training set is assumed:
//!
//! 1. **Standardize** the window and refresh the bundle's standardizer
//!    section with the window's statistics.
//! 2. **Data graph**: k-nearest-neighbour graph over the standardized
//!    window (the paper's `WX`).
//! 3. **Fairness graph**: the between-group quantile graph (Definition 3)
//!    over the protected attribute column and the *serving model's* scores
//!    — the only ranking signal available online.
//! 4. **Projection**: [`pfr_core::Pfr::fit_warm`] seeded with the serving
//!    model's projection. On a drifted-but-related window this converges in
//!    a handful of GEMM-sized iterations instead of a dense `O(m³)`
//!    decomposition, which is where the warm ≥ 2× speedup comes from; on a
//!    structurally incompatible seed it falls back to the cold solver
//!    internally.
//! 5. **Classifier distillation**: a fresh logistic head trained on the
//!    serving model's *hard decisions* (pseudo-labels) in the new
//!    representation, so candidate and serving model agree wherever the
//!    serving model was confident — exactly what the shadow gate checks.
//!
//! The output is a complete [`ModelBundle`], canonically serialized, ready
//! for the wire-level `PUSH` path.

use crate::error::RefitError;
use crate::Result;
use pfr_core::persistence::{bundle_to_string, ClassifierSection, ModelBundle, StandardizerParams};
use pfr_core::{Pfr, PfrConfig};
use pfr_graph::KnnGraphBuilder;
use pfr_linalg::stats::Standardizer;
use pfr_linalg::Matrix;
use pfr_opt::{LogisticRegression, LogisticRegressionConfig};
use pfr_serve::ServableModel;

/// Model-building parameters for the online re-fit.
#[derive(Debug, Clone)]
pub struct RefitModelConfig {
    /// Trade-off between data graph and fairness graph (paper's γ).
    pub gamma: f64,
    /// Dimensionality of the fair representation. Must match the serving
    /// model for the warm start to engage.
    pub dim: usize,
    /// Neighbours in the window's kNN data graph.
    pub knn_k: usize,
    /// Quantile buckets of the between-group fairness graph.
    pub quantiles: usize,
    /// Column index of the (binary-encoded) protected attribute inside the
    /// raw feature vector.
    pub protected_column: usize,
    /// Classifier-distillation head configuration.
    pub logistic: LogisticRegressionConfig,
}

impl Default for RefitModelConfig {
    fn default() -> Self {
        RefitModelConfig {
            gamma: 0.5,
            dim: 4,
            knn_k: 8,
            quantiles: 5,
            protected_column: 0,
            logistic: LogisticRegressionConfig::default(),
        }
    }
}

/// Summary of one completed re-fit.
#[derive(Debug, Clone)]
pub struct RefitOutcome {
    /// The candidate bundle, canonically serialized (what `PUSH` ships).
    pub bundle_text: String,
    /// Window rows the candidate was trained on.
    pub rows: usize,
    /// Fraction of pseudo-labels in the positive class.
    pub positive_fraction: f64,
}

/// Stateless re-fit engine; all state lives in the window and the serving
/// bundle passed per call.
#[derive(Debug, Clone)]
pub struct RefitEngine {
    config: RefitModelConfig,
}

impl RefitEngine {
    /// Creates an engine after validating the configuration.
    pub fn new(config: RefitModelConfig) -> Result<Self> {
        if !(0.0..=1.0).contains(&config.gamma) {
            return Err(RefitError::Config(format!(
                "gamma must lie in [0, 1], got {}",
                config.gamma
            )));
        }
        if config.dim == 0 || config.knn_k == 0 || config.quantiles == 0 {
            return Err(RefitError::Config(
                "dim, knn_k and quantiles must be positive".to_string(),
            ));
        }
        Ok(RefitEngine { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &RefitModelConfig {
        &self.config
    }

    /// Re-fits a candidate bundle on `window` (raw feature rows), warm
    /// started from `serving`.
    pub fn refit(&self, window: &Matrix, serving: &ModelBundle) -> Result<RefitOutcome> {
        let (n, m) = window.shape();
        if self.config.protected_column >= m {
            return Err(RefitError::Config(format!(
                "protected column {} out of range for {m} features",
                self.config.protected_column
            )));
        }
        if self.config.dim > m {
            return Err(RefitError::Config(format!(
                "dim {} exceeds the {m} window features",
                self.config.dim
            )));
        }
        if n < self.config.knn_k + 1 || n < 2 * self.config.quantiles {
            return Err(RefitError::Window(format!(
                "{n} rows are too few for k={} neighbours and {} quantiles",
                self.config.knn_k, self.config.quantiles
            )));
        }

        // The serving model provides the online ranking signal (fairness
        // graph scores) and the pseudo-labels for distillation.
        let teacher = ServableModel::from_bundle("refit-teacher", serving)?;
        let teacher_scores = teacher.score_batch(window)?;

        // 1. Standardize on the window's own statistics.
        let (standardizer, x) = Standardizer::fit_transform(window)?;

        // 2. Data graph over the standardized window.
        let wx = KnnGraphBuilder::new(self.config.knn_k).build(&x)?;

        // 3. Between-group quantile fairness graph from the protected
        // column and the teacher's scores.
        let groups: Vec<usize> = (0..n)
            .map(|i| (window[(i, self.config.protected_column)] > 0.5) as usize)
            .collect();
        let wf = pfr_graph::fairness::between_group_quantile_graph(
            &groups,
            &teacher_scores,
            self.config.quantiles,
        )?;

        // 4. Warm-started projection re-fit.
        let pfr = Pfr::new(PfrConfig {
            gamma: self.config.gamma,
            dim: self.config.dim,
            ..PfrConfig::default()
        });
        let model = pfr.fit_warm(&x, &wx, &wf, &serving.model)?;

        // 5. Distill the serving model's decisions into a fresh head on the
        // new representation.
        let threshold = serving.classifier.as_ref().map_or(0.5, |c| c.threshold);
        let labels: Vec<u8> = teacher_scores
            .iter()
            .map(|&s| (s >= threshold) as u8)
            .collect();
        let positives: usize = labels.iter().map(|&l| l as usize).sum();
        let positive_fraction = positives as f64 / n as f64;
        let z = model.transform(&x)?;
        let classifier = if positives == 0 || positives == n {
            // Degenerate pseudo-labels cannot train a head; keep the
            // serving classifier verbatim (it is still dimension-compatible
            // only if dims match — otherwise reject).
            let section = serving.classifier.clone().ok_or_else(|| {
                RefitError::Window("single-class window and no serving classifier".to_string())
            })?;
            if serving.model.dim() != self.config.dim {
                return Err(RefitError::Window(
                    "single-class window cannot retrain the classifier head".to_string(),
                ));
            }
            section
        } else {
            let mut head = LogisticRegression::new(self.config.logistic.clone());
            head.fit(&z, &labels)?;
            ClassifierSection {
                threshold,
                text: head.to_text()?,
            }
        };

        let candidate = ModelBundle {
            model,
            standardizer: Some(StandardizerParams {
                means: standardizer.means().to_vec(),
                stds: standardizer.stds().to_vec(),
            }),
            classifier: Some(classifier),
        };
        Ok(RefitOutcome {
            bundle_text: bundle_to_string(&candidate),
            rows: n,
            positive_fraction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfr_core::persistence::bundle_from_string;

    /// A window whose scores split both protected groups: two gaussian
    /// blobs per group along the non-protected features.
    fn toy_window(n: usize, seed: u64, shift: f64) -> Matrix {
        let mut state = seed.max(1);
        let mut uniform = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as f64 / u64::MAX as f64
        };
        let mut w = Matrix::zeros(n, 4);
        for i in 0..n {
            let group = (i % 2) as f64;
            let blob = if uniform() > 0.5 { 1.0 } else { -1.0 };
            w[(i, 0)] = group;
            for j in 1..4 {
                w[(i, j)] = shift + blob + 0.3 * (uniform() - 0.5);
            }
        }
        w
    }

    fn serving_bundle(window: &Matrix) -> ModelBundle {
        let engine = RefitEngine::new(RefitModelConfig {
            dim: 2,
            knn_k: 4,
            ..RefitModelConfig::default()
        })
        .unwrap();
        // Bootstrap: fit a cold bundle by using a synthetic teacher — a
        // trivial bundle with an identity-ish head is impractical here, so
        // build the pipeline manually.
        let (standardizer, x) = Standardizer::fit_transform(window).unwrap();
        let wx = KnnGraphBuilder::new(4).build(&x).unwrap();
        let groups: Vec<usize> = (0..window.rows())
            .map(|i| (window[(i, 0)] > 0.5) as usize)
            .collect();
        let scores: Vec<f64> = (0..window.rows()).map(|i| window[(i, 1)]).collect();
        let wf = pfr_graph::fairness::between_group_quantile_graph(&groups, &scores, 5).unwrap();
        let pfr = Pfr::new(PfrConfig {
            gamma: engine.config().gamma,
            dim: 2,
            ..PfrConfig::default()
        });
        let model = pfr.fit(&x, &wx, &wf).unwrap();
        let z = model.transform(&x).unwrap();
        let labels: Vec<u8> = (0..window.rows())
            .map(|i| (window[(i, 1)] > 0.0) as u8)
            .collect();
        let mut head = LogisticRegression::new(LogisticRegressionConfig::default());
        head.fit(&z, &labels).unwrap();
        ModelBundle {
            model,
            standardizer: Some(StandardizerParams {
                means: standardizer.means().to_vec(),
                stds: standardizer.stds().to_vec(),
            }),
            classifier: Some(ClassifierSection {
                threshold: 0.5,
                text: head.to_text().unwrap(),
            }),
        }
    }

    #[test]
    fn refit_produces_a_parseable_compatible_bundle() {
        let window = toy_window(96, 11, 0.0);
        let serving = serving_bundle(&window);
        let engine = RefitEngine::new(RefitModelConfig {
            dim: 2,
            knn_k: 4,
            ..RefitModelConfig::default()
        })
        .unwrap();
        let drifted = toy_window(96, 77, 0.4);
        let outcome = engine.refit(&drifted, &serving).unwrap();
        let candidate = bundle_from_string(&outcome.bundle_text).unwrap();
        assert_eq!(candidate.model.dim(), 2);
        assert_eq!(candidate.model.num_features(), 4);
        assert!(candidate.standardizer.is_some());
        assert!(candidate.classifier.is_some());
        assert!(outcome.positive_fraction > 0.0 && outcome.positive_fraction < 1.0);
        // The candidate must be servable end to end.
        let servable = ServableModel::from_bundle("candidate", &candidate).unwrap();
        let scores = servable.score_batch(&drifted).unwrap();
        assert!(scores
            .iter()
            .all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
    }

    #[test]
    fn rejects_undersized_windows_and_bad_config() {
        assert!(RefitEngine::new(RefitModelConfig {
            gamma: 1.5,
            ..RefitModelConfig::default()
        })
        .is_err());
        assert!(RefitEngine::new(RefitModelConfig {
            dim: 0,
            ..RefitModelConfig::default()
        })
        .is_err());
        let window = toy_window(96, 5, 0.0);
        let serving = serving_bundle(&window);
        let engine = RefitEngine::new(RefitModelConfig {
            dim: 2,
            knn_k: 4,
            ..RefitModelConfig::default()
        })
        .unwrap();
        let tiny = toy_window(6, 5, 0.0);
        assert!(engine.refit(&tiny, &serving).is_err());
        let engine_oob = RefitEngine::new(RefitModelConfig {
            dim: 2,
            knn_k: 4,
            protected_column: 9,
            ..RefitModelConfig::default()
        })
        .unwrap();
        assert!(engine_oob.refit(&window, &serving).is_err());
    }
}
