//! Shadow-scoring gate: the only path by which a candidate bundle may
//! reach production.
//!
//! The candidate is scored side-by-side with the serving model on the
//! held-back window slice — rows the candidate never trained on — and must
//! clear every check:
//!
//! * the bundle text **round-trips**: parses, materializes, and its
//!   classifier/projection dimensions are mutually consistent (a corrupted
//!   or hand-mangled candidate fails here, before any scoring);
//! * every candidate score is **finite** and a probability;
//! * **decision agreement** with the serving model at the serving
//!   threshold is at least `min_agreement`;
//! * the **mean absolute probability difference** stays below
//!   `max_mean_abs_diff` — agreement alone would accept a candidate whose
//!   probabilities wander right up to the decision boundary.
//!
//! A rejection is a normal, reported outcome (`refits_gated` on the STATS
//! line), not an error: drift that invalidates the serving model also
//! makes "agree with the serving model" the wrong bar, and operators see
//! the reason string instead of a silent swap.

use crate::error::RefitError;
use crate::Result;
use pfr_core::persistence::{bundle_from_string, ModelBundle};
use pfr_linalg::Matrix;
use pfr_serve::ServableModel;

/// Acceptance thresholds for [`ShadowGate::evaluate`].
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Minimum fraction of holdback rows on which candidate and serving
    /// decisions (at the serving threshold) agree.
    pub min_agreement: f64,
    /// Maximum mean absolute difference between candidate and serving
    /// probabilities over the holdback slice.
    pub max_mean_abs_diff: f64,
    /// Minimum holdback rows required to judge at all.
    pub min_rows: usize,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            min_agreement: 0.85,
            max_mean_abs_diff: 0.2,
            min_rows: 8,
        }
    }
}

/// Verdict of one shadow-scoring run.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Whether the candidate may ship.
    pub passed: bool,
    /// Decision agreement over the holdback slice.
    pub agreement: f64,
    /// Mean absolute probability difference over the holdback slice.
    pub mean_abs_diff: f64,
    /// Holdback rows judged.
    pub rows: usize,
    /// Human-readable rejection reason (`None` when passed).
    pub reason: Option<String>,
}

impl GateReport {
    fn reject(rows: usize, agreement: f64, mean_abs_diff: f64, reason: String) -> GateReport {
        GateReport {
            passed: false,
            agreement,
            mean_abs_diff,
            rows,
            reason: Some(reason),
        }
    }
}

/// Shadow-scoring gate with fixed thresholds.
#[derive(Debug, Clone)]
pub struct ShadowGate {
    config: GateConfig,
}

impl ShadowGate {
    /// Creates a gate after validating thresholds.
    pub fn new(config: GateConfig) -> Result<Self> {
        if !(0.0..=1.0).contains(&config.min_agreement) {
            return Err(RefitError::Config(format!(
                "min_agreement must lie in [0, 1], got {}",
                config.min_agreement
            )));
        }
        if config.max_mean_abs_diff < 0.0 {
            return Err(RefitError::Config(
                "max_mean_abs_diff must be non-negative".to_string(),
            ));
        }
        Ok(ShadowGate { config })
    }

    /// The configured thresholds.
    pub fn config(&self) -> &GateConfig {
        &self.config
    }

    /// Judges `candidate_text` against the serving bundle on the holdback
    /// slice. Structural invalidity (unparseable text, inconsistent
    /// sections, non-finite scores) rejects; it never errors, because a
    /// corrupt candidate is precisely what the gate exists to stop.
    pub fn evaluate(
        &self,
        serving: &ModelBundle,
        candidate_text: &str,
        holdback: &Matrix,
    ) -> Result<GateReport> {
        let rows = holdback.rows();
        if rows < self.config.min_rows {
            return Ok(GateReport::reject(
                rows,
                0.0,
                0.0,
                format!(
                    "holdback has {rows} rows but the gate requires {}",
                    self.config.min_rows
                ),
            ));
        }

        // Round-trip the candidate through the persistence layer and the
        // serving materialization — the same two parsers a backend will
        // run on PUSH — so anything a backend would reject dies here.
        let candidate = match bundle_from_string(candidate_text) {
            Ok(bundle) => bundle,
            Err(e) => {
                return Ok(GateReport::reject(
                    rows,
                    0.0,
                    0.0,
                    format!("candidate bundle does not parse: {e}"),
                ))
            }
        };
        let candidate_model = match ServableModel::from_bundle("shadow-candidate", &candidate) {
            Ok(model) => model,
            Err(e) => {
                return Ok(GateReport::reject(
                    rows,
                    0.0,
                    0.0,
                    format!("candidate bundle does not materialize: {e}"),
                ))
            }
        };
        let serving_model = ServableModel::from_bundle("shadow-serving", serving)?;
        if candidate_model.num_features() != serving_model.num_features() {
            return Ok(GateReport::reject(
                rows,
                0.0,
                0.0,
                format!(
                    "candidate expects {} features but serving expects {}",
                    candidate_model.num_features(),
                    serving_model.num_features()
                ),
            ));
        }

        let serving_scores = serving_model.score_batch(holdback)?;
        let candidate_scores = match candidate_model.score_batch(holdback) {
            Ok(scores) => scores,
            Err(e) => {
                return Ok(GateReport::reject(
                    rows,
                    0.0,
                    0.0,
                    format!("candidate cannot score the holdback slice: {e}"),
                ))
            }
        };
        if candidate_scores
            .iter()
            .any(|s| !s.is_finite() || !(0.0..=1.0).contains(s))
        {
            return Ok(GateReport::reject(
                rows,
                0.0,
                0.0,
                "candidate produced non-finite or out-of-range scores".to_string(),
            ));
        }

        let threshold = serving_model.threshold();
        let mut agree = 0usize;
        let mut abs_diff = 0.0;
        for (s, c) in serving_scores.iter().zip(candidate_scores.iter()) {
            if (s >= &threshold) == (c >= &threshold) {
                agree += 1;
            }
            abs_diff += (s - c).abs();
        }
        let agreement = agree as f64 / rows as f64;
        let mean_abs_diff = abs_diff / rows as f64;

        if agreement < self.config.min_agreement {
            return Ok(GateReport::reject(
                rows,
                agreement,
                mean_abs_diff,
                format!(
                    "agreement {agreement:.3} below the {:.3} floor",
                    self.config.min_agreement
                ),
            ));
        }
        if mean_abs_diff > self.config.max_mean_abs_diff {
            return Ok(GateReport::reject(
                rows,
                agreement,
                mean_abs_diff,
                format!(
                    "mean |Δp| {mean_abs_diff:.3} above the {:.3} ceiling",
                    self.config.max_mean_abs_diff
                ),
            ));
        }
        Ok(GateReport {
            passed: true,
            agreement,
            mean_abs_diff,
            rows,
            reason: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfr_core::persistence::bundle_to_string;
    use pfr_core::persistence::{ClassifierSection, StandardizerParams};
    use pfr_core::{Pfr, PfrConfig};
    use pfr_graph::{KnnGraphBuilder, SparseGraph};

    fn toy_bundle() -> (ModelBundle, Matrix) {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.1, 1.0],
            vec![0.5, 0.4, 0.0],
            vec![1.0, 0.9, 1.0],
            vec![5.0, 5.1, 0.0],
            vec![5.5, 5.4, 1.0],
            vec![6.0, 5.9, 0.0],
            vec![0.2, 0.3, 0.0],
            vec![5.8, 5.6, 1.0],
        ])
        .unwrap();
        let wx = KnnGraphBuilder::new(2).build(&x).unwrap();
        let mut wf = SparseGraph::new(8);
        wf.add_edge(0, 3, 1.0).unwrap();
        wf.add_edge(2, 5, 1.0).unwrap();
        wf.add_edge(6, 7, 1.0).unwrap();
        let model = Pfr::new(PfrConfig {
            gamma: 0.6,
            dim: 2,
            ..PfrConfig::default()
        })
        .fit(&x, &wx, &wf)
        .unwrap();
        let bundle = ModelBundle {
            model,
            standardizer: Some(StandardizerParams {
                means: vec![3.0, 3.0, 0.5],
                stds: vec![2.5, 2.5, 0.5],
            }),
            classifier: Some(ClassifierSection {
                threshold: 0.5,
                text: "pfr-logreg-v1 intercept=0.25 features=2\nweights 1.5 -0.75\n".to_string(),
            }),
        };
        (bundle, x)
    }

    #[test]
    fn identical_candidate_passes_with_full_agreement() {
        let (bundle, x) = toy_bundle();
        let gate = ShadowGate::new(GateConfig {
            min_rows: 4,
            ..GateConfig::default()
        })
        .unwrap();
        let report = gate
            .evaluate(&bundle, &bundle_to_string(&bundle), &x)
            .unwrap();
        assert!(report.passed, "reason: {:?}", report.reason);
        assert_eq!(report.agreement, 1.0);
        assert!(report.mean_abs_diff < 1e-12);
    }

    #[test]
    fn corrupted_candidate_text_is_rejected_not_an_error() {
        let (bundle, x) = toy_bundle();
        let gate = ShadowGate::new(GateConfig {
            min_rows: 4,
            ..GateConfig::default()
        })
        .unwrap();
        let mut text = bundle_to_string(&bundle);
        // Flip bytes in the middle of the projection section.
        let at = text.len() / 2;
        text.replace_range(at..at + 4, "!!@@");
        let report = gate.evaluate(&bundle, &text, &x).unwrap();
        assert!(!report.passed);
        assert!(report.reason.unwrap().contains("parse"));
    }

    #[test]
    fn dimensionally_inconsistent_candidate_is_rejected() {
        let (bundle, x) = toy_bundle();
        let gate = ShadowGate::new(GateConfig {
            min_rows: 4,
            ..GateConfig::default()
        })
        .unwrap();
        let mut broken = bundle.clone();
        // Classifier expects 3 features, projection produces 2.
        broken.classifier = Some(ClassifierSection {
            threshold: 0.5,
            text: "pfr-logreg-v1 intercept=0 features=3\nweights 1 2 3\n".to_string(),
        });
        let report = gate
            .evaluate(&bundle, &bundle_to_string(&broken), &x)
            .unwrap();
        assert!(!report.passed);
        assert!(report.reason.unwrap().contains("materialize"));
    }

    #[test]
    fn disagreeing_candidate_is_rejected() {
        let (bundle, x) = toy_bundle();
        let gate = ShadowGate::new(GateConfig {
            min_rows: 4,
            ..GateConfig::default()
        })
        .unwrap();
        let mut inverted = bundle.clone();
        // Negate the head: decisions flip on every confident row.
        inverted.classifier = Some(ClassifierSection {
            threshold: 0.5,
            text: "pfr-logreg-v1 intercept=-0.25 features=2\nweights -1.5 0.75\n".to_string(),
        });
        let report = gate
            .evaluate(&bundle, &bundle_to_string(&inverted), &x)
            .unwrap();
        assert!(!report.passed);
    }

    #[test]
    fn undersized_holdback_is_rejected() {
        let (bundle, x) = toy_bundle();
        let gate = ShadowGate::new(GateConfig::default()).unwrap();
        let tiny = x.select_rows(&[0, 1]).unwrap();
        let report = gate
            .evaluate(&bundle, &bundle_to_string(&bundle), &tiny)
            .unwrap();
        assert!(!report.passed);
        assert!(report.reason.unwrap().contains("holdback"));
    }

    #[test]
    fn bad_thresholds_are_rejected_at_construction() {
        assert!(ShadowGate::new(GateConfig {
            min_agreement: 1.5,
            ..GateConfig::default()
        })
        .is_err());
        assert!(ShadowGate::new(GateConfig {
            max_mean_abs_diff: -0.1,
            ..GateConfig::default()
        })
        .is_err());
    }
}
