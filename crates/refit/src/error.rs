//! Error type for the online-refit subsystem.

use std::fmt;

/// Anything that can go wrong while tailing, refitting, gating or swapping.
#[derive(Debug)]
pub enum RefitError {
    /// Journal tailing / checkpointing failed.
    Journal(pfr_journal::JournalError),
    /// The PFR re-fit itself failed.
    Core(pfr_core::PfrError),
    /// Graph construction over the window failed.
    Graph(pfr_graph::GraphError),
    /// Classifier distillation failed.
    Opt(pfr_opt::OptError),
    /// Dense linear algebra failed.
    Linalg(pfr_linalg::LinalgError),
    /// Materializing or scoring a bundle failed.
    Serve(pfr_serve::ServeError),
    /// Shipping the candidate through the routing tier failed.
    Router(pfr_router::RouterError),
    /// Raw socket push to a backend failed.
    Io(std::io::Error),
    /// The sliding window cannot satisfy the request (too small, feature
    /// count mismatch, empty holdback, ...).
    Window(String),
    /// Invalid worker configuration.
    Config(String),
    /// A backend answered a swap `PUSH` with an error response.
    SwapRejected(String),
}

impl fmt::Display for RefitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefitError::Journal(e) => write!(f, "journal: {e}"),
            RefitError::Core(e) => write!(f, "pfr fit: {e}"),
            RefitError::Graph(e) => write!(f, "graph: {e}"),
            RefitError::Opt(e) => write!(f, "classifier: {e}"),
            RefitError::Linalg(e) => write!(f, "linalg: {e}"),
            RefitError::Serve(e) => write!(f, "serve: {e}"),
            RefitError::Router(e) => write!(f, "router: {e}"),
            RefitError::Io(e) => write!(f, "io: {e}"),
            RefitError::Window(msg) => write!(f, "window: {msg}"),
            RefitError::Config(msg) => write!(f, "config: {msg}"),
            RefitError::SwapRejected(msg) => write!(f, "swap rejected: {msg}"),
        }
    }
}

impl std::error::Error for RefitError {}

impl From<pfr_journal::JournalError> for RefitError {
    fn from(e: pfr_journal::JournalError) -> Self {
        RefitError::Journal(e)
    }
}

impl From<pfr_core::PfrError> for RefitError {
    fn from(e: pfr_core::PfrError) -> Self {
        RefitError::Core(e)
    }
}

impl From<pfr_graph::GraphError> for RefitError {
    fn from(e: pfr_graph::GraphError) -> Self {
        RefitError::Graph(e)
    }
}

impl From<pfr_opt::OptError> for RefitError {
    fn from(e: pfr_opt::OptError) -> Self {
        RefitError::Opt(e)
    }
}

impl From<pfr_linalg::LinalgError> for RefitError {
    fn from(e: pfr_linalg::LinalgError) -> Self {
        RefitError::Linalg(e)
    }
}

impl From<pfr_serve::ServeError> for RefitError {
    fn from(e: pfr_serve::ServeError) -> Self {
        RefitError::Serve(e)
    }
}

impl From<pfr_router::RouterError> for RefitError {
    fn from(e: pfr_router::RouterError) -> Self {
        RefitError::Router(e)
    }
}

impl From<std::io::Error> for RefitError {
    fn from(e: std::io::Error) -> Self {
        RefitError::Io(e)
    }
}
