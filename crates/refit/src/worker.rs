//! The refit worker: journal tail → window → drift check → warm re-fit →
//! shadow gate → wire-level hot-swap, as one synchronous state machine
//! ([`RefitLoop`]) plus a background-thread wrapper ([`RefitWorker`]).
//!
//! Keeping the state machine synchronous makes every stage deterministic
//! and unit-testable: `pump` drains whatever the cursor has, `maybe_refit`
//! runs at most one drift-check/refit/gate/swap cycle and reports exactly
//! what happened as a [`RefitStep`]. The thread wrapper only adds polling
//! and a stop flag.
//!
//! ## Swap safety
//!
//! A swap ships through the same wire-level `PUSH` verb as any operator
//! push: the backend journals the bundle before installing it, installs
//! under a fresh generation (invalidating cached scores of the old one),
//! and in-flight requests finish on whichever model generation they
//! resolved — no request is dropped or failed by a swap. The worker then
//! observes its *own* `PUSH` coming back through the journal tail and
//! skips it by content digest, so a swap never re-triggers itself.

use crate::drift::{DriftConfig, DriftDetector, DriftReport};
use crate::engine::{RefitEngine, RefitModelConfig};
use crate::error::RefitError;
use crate::gate::{GateConfig, GateReport, ShadowGate};
use crate::window::FeatureWindow;
use crate::Result;
use pfr_core::persistence::{bundle_from_string, bundle_text_digest, ModelBundle};
use pfr_journal::{JournalCursor, Record};
use pfr_router::Router;
use pfr_serve::ServableModel;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Where a gated candidate ships.
#[derive(Debug, Clone)]
pub enum SwapTarget {
    /// Through a routing tier: every replica of the model receives the
    /// bundle under one membership snapshot ([`Router::push_text`]).
    Router(Arc<Router>),
    /// Directly to these backends over raw `PUSH` frames.
    Backends(Vec<SocketAddr>),
    /// Refit and gate but never ship — observability-only mode.
    DryRun,
}

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct RefitConfig {
    /// Journal directory to tail (the serving tier's journal).
    pub journal_dir: PathBuf,
    /// Durable cursor name; restarts resume from its checkpoint.
    pub cursor_name: String,
    /// Model whose `SCORE` frames feed the window and whose bundle gets
    /// refitted.
    pub model: String,
    /// Sliding-window capacity (training rows).
    pub window_rows: usize,
    /// Held-back slice capacity (shadow-gate rows).
    pub holdback_rows: usize,
    /// Divert every k-th accepted frame into the holdback slice.
    pub holdback_every: usize,
    /// Do not refit on fewer training rows than this.
    pub min_refit_rows: usize,
    /// Run a drift check every N folded frames.
    pub check_every_frames: u64,
    /// After a refit attempt, fold at least this many fresh frames before
    /// attempting another.
    pub cooldown_frames: u64,
    /// Persist the cursor checkpoint every N tailed frames (and whenever
    /// the tail is fully drained).
    pub checkpoint_every_frames: u64,
    /// Worker-thread sleep when the tail is drained.
    pub poll_interval: Duration,
    /// Drift-detector thresholds.
    pub drift: DriftConfig,
    /// Shadow-gate thresholds.
    pub gate: GateConfig,
    /// Re-fit model parameters.
    pub model_config: RefitModelConfig,
}

impl RefitConfig {
    /// Reasonable defaults for a journal directory and model name.
    pub fn new(journal_dir: impl Into<PathBuf>, model: impl Into<String>) -> RefitConfig {
        RefitConfig {
            journal_dir: journal_dir.into(),
            cursor_name: "refit".to_string(),
            model: model.into(),
            window_rows: 512,
            holdback_rows: 128,
            holdback_every: 5,
            min_refit_rows: 64,
            check_every_frames: 64,
            cooldown_frames: 128,
            checkpoint_every_frames: 256,
            poll_interval: Duration::from_millis(20),
            drift: DriftConfig::default(),
            gate: GateConfig::default(),
            model_config: RefitModelConfig::default(),
        }
    }
}

/// Shared refit counters; rendered onto the serving STATS line via
/// [`RefitStats::to_line`]. `refit_cursor_seq` sits next to the journal's
/// own `journal_seq`, so cursor lag is their difference; `refit_caught_up`
/// is `1` when the last pump drained the tail completely.
#[derive(Debug, Default)]
pub struct RefitStats {
    frames_seen: AtomicU64,
    frames_folded: AtomicU64,
    cursor_seq: AtomicU64,
    caught_up: AtomicBool,
    drift_checks: AtomicU64,
    drift_detected: AtomicU64,
    refits_attempted: AtomicU64,
    refits_gated: AtomicU64,
    refits_swapped: AtomicU64,
    rebases: AtomicU64,
}

macro_rules! counter {
    ($get:ident, $bump:ident, $field:ident) => {
        /// Current value of the counter.
        pub fn $get(&self) -> u64 {
            self.$field.load(Ordering::Relaxed)
        }

        fn $bump(&self) {
            self.$field.fetch_add(1, Ordering::Relaxed);
        }
    };
}

impl RefitStats {
    counter!(frames_seen, bump_frames_seen, frames_seen);
    counter!(frames_folded, bump_frames_folded, frames_folded);
    counter!(drift_checks, bump_drift_checks, drift_checks);
    counter!(drift_detected, bump_drift_detected, drift_detected);
    counter!(refits_attempted, bump_refits_attempted, refits_attempted);
    counter!(refits_gated, bump_refits_gated, refits_gated);
    counter!(refits_swapped, bump_refits_swapped, refits_swapped);
    counter!(rebases, bump_rebases, rebases);

    /// Last journal sequence number the cursor delivered.
    pub fn cursor_seq(&self) -> u64 {
        self.cursor_seq.load(Ordering::Relaxed)
    }

    /// Whether the last pump drained the journal tail completely.
    pub fn caught_up(&self) -> bool {
        self.caught_up.load(Ordering::Relaxed)
    }

    /// Registers every refit counter on `registry` as `pfr_refit_*`
    /// gauges (mirroring [`RefitStats::to_line`]'s fields), plus
    /// `pfr_refit_cursor_lag` — how many journal records the cursor
    /// trails the writer by — when a `journal_tip` reader (typically
    /// `JournalStats::last_seq` of the journal being tailed) is supplied.
    /// Call once at startup; the gauges read live values at scrape time.
    pub fn register_metrics(
        self: &Arc<Self>,
        registry: &pfr_obs::MetricsRegistry,
        journal_tip: Option<Arc<dyn Fn() -> u64 + Send + Sync>>,
    ) {
        macro_rules! gauge {
            ($name:expr, $read:expr) => {
                let stats = Arc::clone(self);
                let read: fn(&RefitStats) -> u64 = $read;
                registry.gauge($name, &[], Arc::new(move || read(&stats) as f64));
            };
        }
        gauge!("pfr_refit_cursor_seq", RefitStats::cursor_seq);
        gauge!("pfr_refit_caught_up", |s| s.caught_up() as u64);
        gauge!("pfr_refit_frames_seen_total", RefitStats::frames_seen);
        gauge!("pfr_refit_frames_folded_total", RefitStats::frames_folded);
        gauge!("pfr_refit_drift_checks_total", RefitStats::drift_checks);
        gauge!("pfr_refit_drift_detected_total", RefitStats::drift_detected);
        gauge!("pfr_refit_attempted_total", RefitStats::refits_attempted);
        gauge!("pfr_refit_gated_total", RefitStats::refits_gated);
        gauge!("pfr_refit_swapped_total", RefitStats::refits_swapped);
        gauge!("pfr_refit_rebases_total", RefitStats::rebases);
        if let Some(tip) = journal_tip {
            let stats = Arc::clone(self);
            registry.gauge(
                "pfr_refit_cursor_lag",
                &[],
                Arc::new(move || tip().saturating_sub(stats.cursor_seq()) as f64),
            );
        }
    }

    /// Space-separated `key=value` rendering for the STATS line.
    pub fn to_line(&self) -> String {
        format!(
            "refit_cursor_seq={} refit_caught_up={} refit_frames_seen={} \
             refit_frames_folded={} refit_drift_checks={} refit_drift_detected={} \
             refits_attempted={} refits_gated={} refits_swapped={} refit_rebases={}",
            self.cursor_seq(),
            self.caught_up() as u8,
            self.frames_seen(),
            self.frames_folded(),
            self.drift_checks(),
            self.drift_detected(),
            self.refits_attempted(),
            self.refits_gated(),
            self.refits_swapped(),
            self.rebases(),
        )
    }
}

/// What one [`RefitLoop::maybe_refit`] call did.
#[derive(Debug, Clone)]
pub enum RefitStep {
    /// Below the check interval or the window is still filling.
    Idle,
    /// Checked; no drift.
    Stationary(DriftReport),
    /// Drift detected but the post-refit cooldown is still running.
    Cooldown(DriftReport),
    /// Refitted but the shadow gate rejected the candidate.
    Gated {
        /// The triggering drift report.
        drift: DriftReport,
        /// Why the gate said no.
        gate: GateReport,
    },
    /// Refitted, gated and hot-swapped.
    Swapped {
        /// The triggering drift report.
        drift: DriftReport,
        /// The passing gate report.
        gate: GateReport,
        /// Backends/replicas that accepted the push (0 in dry-run mode).
        placed: usize,
        /// The candidate bundle text exactly as shipped.
        bundle_text: String,
    },
}

/// The synchronous refit state machine.
pub struct RefitLoop {
    config: RefitConfig,
    cursor: JournalCursor,
    window: FeatureWindow,
    detector: DriftDetector,
    engine: RefitEngine,
    gate: ShadowGate,
    target: SwapTarget,
    serving: ModelBundle,
    serving_model: ServableModel,
    serving_digest: u64,
    stats: Arc<RefitStats>,
    frames_since_check: u64,
    frames_since_refit: u64,
    frames_since_checkpoint: u64,
}

impl RefitLoop {
    /// Opens the journal cursor (resuming from its checkpoint when one
    /// exists) and anchors drift detection at `serving_text`'s standardizer.
    pub fn new(config: RefitConfig, serving_text: &str, target: SwapTarget) -> Result<Self> {
        if config.check_every_frames == 0 || config.checkpoint_every_frames == 0 {
            return Err(RefitError::Config(
                "check_every_frames and checkpoint_every_frames must be positive".to_string(),
            ));
        }
        let serving = bundle_from_string(serving_text)?;
        let serving_digest = bundle_text_digest(serving_text)?;
        let params = serving.standardizer.as_ref().ok_or_else(|| {
            RefitError::Config(
                "serving bundle carries no standardizer; no drift baseline available".to_string(),
            )
        })?;
        let detector = DriftDetector::from_standardizer(config.drift.clone(), params)?;
        let serving_model = ServableModel::from_bundle("refit-serving", &serving)?;
        let engine = RefitEngine::new(config.model_config.clone())?;
        let gate = ShadowGate::new(config.gate.clone())?;
        let cursor = JournalCursor::open(&config.journal_dir, &config.cursor_name, 1)?;
        let window = FeatureWindow::new(
            config.window_rows,
            config.holdback_rows,
            config.holdback_every,
        )?;
        let cooldown = config.cooldown_frames;
        Ok(RefitLoop {
            config,
            cursor,
            window,
            detector,
            engine,
            gate,
            target,
            serving,
            serving_model,
            serving_digest,
            stats: Arc::new(RefitStats::default()),
            frames_since_check: 0,
            // The first refit is not throttled — only refits after one.
            frames_since_refit: cooldown,
            frames_since_checkpoint: 0,
        })
    }

    /// Shared counters (cheap to clone, safe to read from other threads).
    pub fn stats(&self) -> Arc<RefitStats> {
        Arc::clone(&self.stats)
    }

    /// The bundle currently treated as "serving".
    pub fn serving(&self) -> &ModelBundle {
        &self.serving
    }

    /// The worker configuration.
    pub fn config(&self) -> &RefitConfig {
        &self.config
    }

    /// Persists the cursor position now.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.cursor.checkpoint()?;
        self.frames_since_checkpoint = 0;
        Ok(())
    }

    /// Drains up to `max_frames` journal frames into the window, following
    /// segment rotations and periodically persisting the cursor
    /// checkpoint. Returns the number of frames processed; `0` means the
    /// tail is fully drained.
    pub fn pump(&mut self, max_frames: usize) -> Result<usize> {
        let mut processed = 0;
        let mut drained = false;
        while processed < max_frames {
            match self.cursor.next()? {
                None => {
                    drained = true;
                    break;
                }
                Some((seq, record)) => {
                    processed += 1;
                    self.frames_since_checkpoint += 1;
                    self.stats.bump_frames_seen();
                    self.stats.cursor_seq.store(seq, Ordering::Relaxed);
                    self.fold(record)?;
                    if self.frames_since_checkpoint >= self.config.checkpoint_every_frames {
                        self.checkpoint()?;
                    }
                }
            }
        }
        self.stats.caught_up.store(drained, Ordering::Relaxed);
        if drained && self.frames_since_checkpoint > 0 {
            self.checkpoint()?;
        }
        Ok(processed)
    }

    fn fold(&mut self, record: Record) -> Result<()> {
        match record {
            Record::Score { model, features }
                if model == self.config.model && self.window.push(&features) =>
            {
                self.stats.bump_frames_folded();
                self.frames_since_check += 1;
                self.frames_since_refit = self.frames_since_refit.saturating_add(1);
            }
            Record::Push { model, bundle_text } | Record::Load { model, bundle_text }
                if model == self.config.model =>
            {
                // Someone installed a bundle for our model. If it is not
                // the one we already track (including our own swap coming
                // back through the tail), rebase on it: new baseline, new
                // warm-start seed, fresh window. Unparseable text cannot
                // have been installed by a backend either — skip it.
                if let Ok(digest) = bundle_text_digest(&bundle_text) {
                    if digest != self.serving_digest {
                        if let Ok(bundle) = bundle_from_string(&bundle_text) {
                            self.install_serving(bundle, digest)?;
                            self.stats.bump_rebases();
                        }
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Runs at most one drift-check → refit → gate → swap cycle.
    pub fn maybe_refit(&mut self) -> Result<RefitStep> {
        if self.window.len() < self.config.min_refit_rows
            || self.frames_since_check < self.config.check_every_frames
        {
            return Ok(RefitStep::Idle);
        }
        self.frames_since_check = 0;
        self.stats.bump_drift_checks();

        let window = self.window.to_matrix()?;
        let scores = self.serving_model.score_batch(&window)?;
        if !self.detector.has_reference_scores() {
            // First check after (re)baselining: this window's score
            // distribution becomes the PSI reference.
            self.detector.set_reference_scores(scores.clone());
        }
        let drift = self.detector.assess(&window, Some(&scores))?;
        if !drift.drifted {
            return Ok(RefitStep::Stationary(drift));
        }
        self.stats.bump_drift_detected();
        if self.frames_since_refit < self.config.cooldown_frames {
            return Ok(RefitStep::Cooldown(drift));
        }

        self.stats.bump_refits_attempted();
        self.frames_since_refit = 0;
        let outcome = self.engine.refit(&window, &self.serving)?;
        let holdback = self.window.holdback_matrix()?;
        let gate = self
            .gate
            .evaluate(&self.serving, &outcome.bundle_text, &holdback)?;
        if !gate.passed {
            self.stats.bump_refits_gated();
            return Ok(RefitStep::Gated { drift, gate });
        }

        let placed = self.ship(&outcome.bundle_text)?;
        self.stats.bump_refits_swapped();
        let digest = bundle_text_digest(&outcome.bundle_text)?;
        let candidate = bundle_from_string(&outcome.bundle_text)?;
        self.install_serving(candidate, digest)?;
        Ok(RefitStep::Swapped {
            drift,
            gate,
            placed,
            bundle_text: outcome.bundle_text,
        })
    }

    fn ship(&self, bundle_text: &str) -> Result<usize> {
        match &self.target {
            SwapTarget::DryRun => Ok(0),
            SwapTarget::Router(router) => Ok(router.push_text(&self.config.model, bundle_text)?),
            SwapTarget::Backends(addrs) => {
                let mut placed = 0;
                let mut last_rejection = String::new();
                for addr in addrs {
                    match push_raw(addr, &self.config.model, bundle_text) {
                        Ok(response) if response.starts_with("OK") => placed += 1,
                        Ok(response) => last_rejection = response,
                        Err(e) => last_rejection = e.to_string(),
                    }
                }
                if placed == 0 {
                    return Err(RefitError::SwapRejected(if last_rejection.is_empty() {
                        "no swap backends configured".to_string()
                    } else {
                        last_rejection
                    }));
                }
                Ok(placed)
            }
        }
    }

    fn install_serving(&mut self, bundle: ModelBundle, digest: u64) -> Result<()> {
        let params = bundle.standardizer.as_ref().ok_or_else(|| {
            RefitError::Config("installed bundle carries no standardizer".to_string())
        })?;
        self.detector = DriftDetector::from_standardizer(self.config.drift.clone(), params)?;
        self.serving_model = ServableModel::from_bundle("refit-serving", &bundle)?;
        self.serving = bundle;
        self.serving_digest = digest;
        // Pre-swap traffic must not be judged against the new baseline.
        self.window.clear();
        self.frames_since_check = 0;
        self.frames_since_refit = 0;
        Ok(())
    }
}

/// One raw wire-level `PUSH <name> <nbytes>\n<payload>` exchange.
fn push_raw(addr: &SocketAddr, model: &str, bundle_text: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut frame = format!("PUSH {model} {}\n", bundle_text.len()).into_bytes();
    frame.extend_from_slice(bundle_text.as_bytes());
    writer.write_all(&frame)?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(line.trim_end().to_string())
}

/// Background-thread wrapper around [`RefitLoop`].
pub struct RefitWorker {
    stop: Arc<AtomicBool>,
    stats: Arc<RefitStats>,
    last_error: Arc<Mutex<Option<String>>>,
    handle: Option<thread::JoinHandle<()>>,
}

impl RefitWorker {
    /// Moves the loop onto a named background thread that pumps the tail,
    /// runs the refit cycle, and sleeps `poll_interval` whenever the tail
    /// is drained. Errors are recorded (see [`RefitWorker::last_error`])
    /// and the loop keeps going — a transient journal or network failure
    /// must not kill the worker.
    pub fn spawn(mut refit_loop: RefitLoop) -> RefitWorker {
        let stop = Arc::new(AtomicBool::new(false));
        let stats = refit_loop.stats();
        let last_error: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let poll = refit_loop.config().poll_interval;
        let thread_stop = Arc::clone(&stop);
        let thread_error = Arc::clone(&last_error);
        let handle = thread::Builder::new()
            .name("pfr-refit".to_string())
            .spawn(move || {
                let record = |e: RefitError| {
                    *thread_error.lock().expect("error lock poisoned") = Some(e.to_string());
                };
                while !thread_stop.load(Ordering::Relaxed) {
                    let drained = match refit_loop.pump(256) {
                        Ok(n) => n == 0,
                        Err(e) => {
                            record(e);
                            true
                        }
                    };
                    if let Err(e) = refit_loop.maybe_refit() {
                        record(e);
                    }
                    if drained {
                        thread::sleep(poll);
                    }
                }
                let _ = refit_loop.checkpoint();
            })
            .expect("spawning the refit worker thread");
        RefitWorker {
            stop,
            stats,
            last_error,
            handle: Some(handle),
        }
    }

    /// Shared counters.
    pub fn stats(&self) -> Arc<RefitStats> {
        Arc::clone(&self.stats)
    }

    /// A stats source renderable onto a server STATS line
    /// ([`pfr_serve::Server::attach_stats_source`]).
    pub fn stats_source(&self) -> Arc<dyn Fn() -> String + Send + Sync> {
        let stats = Arc::clone(&self.stats);
        Arc::new(move || stats.to_line())
    }

    /// The last error the worker thread recorded, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().expect("error lock poisoned").clone()
    }

    /// Stops the thread, waits for it, and leaves a final checkpoint.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RefitWorker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refit_gauges_render_counters_and_cursor_lag() {
        let stats = Arc::new(RefitStats::default());
        stats.cursor_seq.store(5, Ordering::Relaxed);
        stats.caught_up.store(true, Ordering::Relaxed);
        stats.bump_refits_gated();
        let registry = pfr_obs::MetricsRegistry::new();
        stats.register_metrics(&registry, Some(Arc::new(|| 12)));
        let text = registry.render();
        assert!(text.contains("pfr_refit_cursor_seq 5"), "{text}");
        assert!(text.contains("pfr_refit_caught_up 1"), "{text}");
        assert!(text.contains("pfr_refit_gated_total 1"), "{text}");
        // Lag is the journal tip (12) minus the cursor position (5).
        assert!(text.contains("pfr_refit_cursor_lag 7"), "{text}");
    }
}
