//! Sliding feature-stream window over journaled `SCORE` frames.
//!
//! The refit worker folds every tailed feature vector into a bounded
//! window: most rows land in the *training* slice the next re-fit trains
//! on, but every `holdback_every`-th row is diverted into a *holdback*
//! slice the candidate model is shadow-scored against. The two slices are
//! disjoint by construction, so the gate never grades the candidate on
//! rows it trained on.

use crate::error::RefitError;
use crate::Result;
use pfr_linalg::Matrix;
use std::collections::VecDeque;

/// Bounded sliding window with a held-back evaluation slice.
#[derive(Debug)]
pub struct FeatureWindow {
    capacity: usize,
    holdback_capacity: usize,
    holdback_every: usize,
    num_features: Option<usize>,
    rows: VecDeque<Vec<f64>>,
    holdback: VecDeque<Vec<f64>>,
    accepted: u64,
    rejected: u64,
}

impl FeatureWindow {
    /// Creates a window keeping at most `capacity` training rows and
    /// `holdback_capacity` held-back rows, diverting every
    /// `holdback_every`-th accepted row into the holdback slice
    /// (`holdback_every == 0` disables holdback).
    pub fn new(capacity: usize, holdback_capacity: usize, holdback_every: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(RefitError::Window(
                "window capacity must be positive".to_string(),
            ));
        }
        Ok(FeatureWindow {
            capacity,
            holdback_capacity,
            holdback_every,
            num_features: None,
            rows: VecDeque::new(),
            holdback: VecDeque::new(),
            accepted: 0,
            rejected: 0,
        })
    }

    /// Folds one feature vector into the window. The first accepted row
    /// fixes the feature count; rows with a different width (or non-finite
    /// entries) are rejected and counted, never silently dropped.
    /// Returns `true` when the row was accepted.
    pub fn push(&mut self, features: &[f64]) -> bool {
        let ok = !features.is_empty()
            && features.iter().all(|v| v.is_finite())
            && self.num_features.is_none_or(|m| m == features.len());
        if !ok {
            self.rejected += 1;
            return false;
        }
        self.num_features = Some(features.len());
        self.accepted += 1;
        let to_holdback = self.holdback_every > 0
            && self.holdback_capacity > 0
            && self.accepted.is_multiple_of(self.holdback_every as u64);
        if to_holdback {
            self.holdback.push_back(features.to_vec());
            while self.holdback.len() > self.holdback_capacity {
                self.holdback.pop_front();
            }
        } else {
            self.rows.push_back(features.to_vec());
            while self.rows.len() > self.capacity {
                self.rows.pop_front();
            }
        }
        true
    }

    /// Training rows currently held.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the training slice is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Held-back rows currently held.
    pub fn holdback_len(&self) -> usize {
        self.holdback.len()
    }

    /// Total rows accepted since creation (training + holdback).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Rows rejected for width mismatch or non-finite entries.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Feature count fixed by the first accepted row.
    pub fn num_features(&self) -> Option<usize> {
        self.num_features
    }

    /// The training slice as a dense matrix (one row per vector).
    pub fn to_matrix(&self) -> Result<Matrix> {
        Self::pack(&self.rows, self.num_features, "training")
    }

    /// The held-back slice as a dense matrix.
    pub fn holdback_matrix(&self) -> Result<Matrix> {
        Self::pack(&self.holdback, self.num_features, "holdback")
    }

    /// Clears both slices (used after a successful swap so the next drift
    /// assessment starts from post-swap traffic only).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.holdback.clear();
    }

    fn pack(rows: &VecDeque<Vec<f64>>, m: Option<usize>, what: &str) -> Result<Matrix> {
        let m = m.ok_or_else(|| RefitError::Window(format!("{what} slice is empty")))?;
        if rows.is_empty() {
            return Err(RefitError::Window(format!("{what} slice is empty")));
        }
        let mut data = Vec::with_capacity(rows.len() * m);
        for row in rows {
            data.extend_from_slice(row);
        }
        Matrix::from_vec(rows.len(), m, data).map_err(RefitError::Linalg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_oldest_rows_once_full() {
        let mut w = FeatureWindow::new(3, 0, 0).unwrap();
        for i in 0..5 {
            assert!(w.push(&[i as f64, 1.0]));
        }
        assert_eq!(w.len(), 3);
        let m = w.to_matrix().unwrap();
        assert_eq!(m[(0, 0)], 2.0); // rows 0 and 1 evicted
        assert_eq!(m[(2, 0)], 4.0);
    }

    #[test]
    fn holdback_rows_never_enter_the_training_slice() {
        let mut w = FeatureWindow::new(100, 10, 4).unwrap();
        for i in 1..=20 {
            w.push(&[i as f64]);
        }
        // Every 4th accepted row (4, 8, 12, 16, 20) is held back.
        assert_eq!(w.holdback_len(), 5);
        assert_eq!(w.len(), 15);
        let train = w.to_matrix().unwrap();
        for r in 0..train.rows() {
            assert_ne!(train[(r, 0)] as i64 % 4, 0);
        }
        let hold = w.holdback_matrix().unwrap();
        for r in 0..hold.rows() {
            assert_eq!(hold[(r, 0)] as i64 % 4, 0);
        }
    }

    #[test]
    fn rejects_mismatched_widths_and_non_finite_rows() {
        let mut w = FeatureWindow::new(10, 0, 0).unwrap();
        assert!(w.push(&[1.0, 2.0]));
        assert!(!w.push(&[1.0]));
        assert!(!w.push(&[1.0, f64::NAN]));
        assert!(!w.push(&[]));
        assert_eq!(w.rejected(), 3);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn empty_slices_error_instead_of_panicking() {
        let w = FeatureWindow::new(4, 2, 2).unwrap();
        assert!(w.to_matrix().is_err());
        assert!(w.holdback_matrix().is_err());
        assert!(FeatureWindow::new(0, 0, 0).is_err());
    }
}
