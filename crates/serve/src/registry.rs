//! The model registry: named, versioned, hot-swappable models.
//!
//! Models are shared as `Arc<ServableModel>` behind a single `RwLock`-ed map.
//! Readers (the request path) take the lock only long enough to clone an
//! `Arc`; a hot swap replaces the map entry, and in-flight requests keep
//! scoring against the generation they already hold — the swap is atomic
//! from a client's point of view and never blocks on running inference.

use crate::error::ServeError;
use crate::model::ServableModel;
use crate::Result;
use pfr_core::persistence;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A concurrent map from model name to the latest loaded generation.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<ServableModel>>>,
    swaps: AtomicU64,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Registers `model` under `name`, replacing (hot-swapping) any previous
    /// generation. Returns the shared handle now being served.
    pub fn insert(&self, name: impl Into<String>, model: ServableModel) -> Arc<ServableModel> {
        let arc = Arc::new(model);
        let previous = self
            .models
            .write()
            .expect("registry lock poisoned")
            .insert(name.into(), Arc::clone(&arc));
        if previous.is_some() {
            self.swaps.fetch_add(1, Ordering::Relaxed);
        }
        arc
    }

    /// Parses a serialized bundle and registers it under `name`. The served
    /// version label is `name@generation`, so repeated loads of the same
    /// name are distinguishable in stats and cache keys.
    pub fn load_from_str(&self, name: &str, bundle_text: &str) -> Result<Arc<ServableModel>> {
        let bundle = persistence::bundle_from_string(bundle_text).map_err(ServeError::model)?;
        let mut model = ServableModel::from_bundle(name, &bundle)?;
        model.set_version(format!("{name}@{}", model.generation()));
        Ok(self.insert(name, model))
    }

    /// Reads a bundle file and registers it under `name`.
    pub fn load_from_file(&self, name: &str, path: &Path) -> Result<Arc<ServableModel>> {
        let text = std::fs::read_to_string(path)?;
        self.load_from_str(name, &text)
    }

    /// The latest generation registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<ServableModel>> {
        self.models
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Like [`ModelRegistry::get`] but with a serving-flavoured error.
    pub fn resolve(&self, name: &str) -> Result<Arc<ServableModel>> {
        self.get(name)
            .ok_or_else(|| ServeError::ModelNotFound(name.to_string()))
    }

    /// Unregisters a model; returns the handle that was being served.
    pub fn remove(&self, name: &str) -> Option<Arc<ServableModel>> {
        self.models
            .write()
            .expect("registry lock poisoned")
            .remove(name)
    }

    /// Registered model names, sorted for stable output.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .models
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry lock poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many hot swaps (re-loads of an existing name) have happened.
    pub fn hot_swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::toy_bundle;
    use std::thread;

    #[test]
    fn insert_get_remove_round_trip() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        let (bundle, _) = toy_bundle();
        registry.insert(
            "risk",
            ServableModel::from_bundle("risk@1", &bundle).unwrap(),
        );
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.names(), vec!["risk".to_string()]);
        assert!(registry.get("risk").is_some());
        assert!(registry.get("other").is_none());
        assert!(matches!(
            registry.resolve("other"),
            Err(ServeError::ModelNotFound(_))
        ));
        assert!(registry.remove("risk").is_some());
        assert!(registry.is_empty());
    }

    #[test]
    fn hot_swap_replaces_generation_without_disturbing_held_handles() {
        let registry = ModelRegistry::new();
        let (bundle, x) = toy_bundle();
        let text = persistence::bundle_to_string(&bundle);
        let first = registry.load_from_str("risk", &text).unwrap();
        let held = registry.get("risk").unwrap();
        let second = registry.load_from_str("risk", &text).unwrap();
        assert_eq!(registry.hot_swaps(), 1);
        assert_ne!(first.generation(), second.generation());
        // The held handle still scores, and identically so.
        let a = held.score_batch(&x).unwrap();
        let b = registry.get("risk").unwrap().score_batch(&x).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            registry.get("risk").unwrap().generation(),
            second.generation()
        );
    }

    #[test]
    fn version_labels_carry_name_and_generation() {
        let registry = ModelRegistry::new();
        let (bundle, _) = toy_bundle();
        let text = persistence::bundle_to_string(&bundle);
        let model = registry.load_from_str("admissions", &text).unwrap();
        let label = model.version();
        assert!(
            label.starts_with("admissions@"),
            "unexpected version label {label}"
        );
    }

    #[test]
    fn load_from_str_rejects_garbage() {
        let registry = ModelRegistry::new();
        assert!(registry.load_from_str("bad", "not a bundle").is_err());
        assert!(registry.is_empty());
    }

    #[test]
    fn concurrent_readers_and_swappers_do_not_deadlock_or_corrupt() {
        let registry = Arc::new(ModelRegistry::new());
        let (bundle, x) = toy_bundle();
        let text = persistence::bundle_to_string(&bundle);
        registry.load_from_str("risk", &text).unwrap();
        let expected = registry.get("risk").unwrap().score_batch(&x).unwrap();

        let mut handles = Vec::new();
        for _ in 0..4 {
            let registry = Arc::clone(&registry);
            let x = x.clone();
            let expected = expected.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    let model = registry.resolve("risk").unwrap();
                    assert_eq!(model.score_batch(&x).unwrap(), expected);
                }
            }));
        }
        for _ in 0..2 {
            let registry = Arc::clone(&registry);
            let text = text.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..25 {
                    registry.load_from_str("risk", &text).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(registry.hot_swaps(), 50);
    }
}
