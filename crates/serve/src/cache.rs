//! An LRU cache for scores, keyed by (model generation, exact feature bits).
//!
//! Scoring is deterministic, so a cache hit returns the *identical* f64 the
//! model would produce. Keys store the full bit pattern of the feature
//! vector (not a lossy hash), so two vectors collide only if they are
//! bit-identical — in which case the cached score is exact by construction.
//! NaN feature vectors are refused rather than cached: NaN != NaN would make
//! key equality lie.
//!
//! Recency is tracked with a monotonically increasing tick and a
//! `BTreeMap<tick, key>` index, giving `O(log n)` get/insert/evict without
//! unsafe code or intrusive lists. Model hot-swaps need no explicit
//! invalidation: a new generation changes every key, and the old entries age
//! out of the LRU order naturally.

use std::collections::{BTreeMap, HashMap};

/// Cache key: which model generation scored which exact feature vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScoreKey {
    generation: u64,
    feature_bits: Box<[u64]>,
}

impl ScoreKey {
    /// Builds a key from a model generation and a raw feature vector.
    /// Returns `None` if any feature is NaN (uncacheable: equality on the
    /// bit pattern would not imply equality of the vectors' semantics).
    pub fn new(generation: u64, features: &[f64]) -> Option<Self> {
        if features.iter().any(|f| f.is_nan()) {
            return None;
        }
        Some(ScoreKey {
            generation,
            feature_bits: features.iter().map(|f| f.to_bits()).collect(),
        })
    }
}

/// A fixed-capacity least-recently-used score cache.
#[derive(Debug)]
pub struct ScoreCache {
    capacity: usize,
    entries: HashMap<ScoreKey, (f64, u64)>,
    order: BTreeMap<u64, ScoreKey>,
    tick: u64,
}

impl ScoreCache {
    /// A cache holding at most `capacity` scores; capacity 0 disables
    /// caching (every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        ScoreCache {
            capacity,
            entries: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a score, refreshing the entry's recency on a hit.
    pub fn get(&mut self, key: &ScoreKey) -> Option<f64> {
        let tick = self.next_tick();
        match self.entries.get_mut(key) {
            Some((score, last_used)) => {
                let score = *score;
                self.order.remove(last_used);
                *last_used = tick;
                self.order.insert(tick, key.clone());
                Some(score)
            }
            None => None,
        }
    }

    /// Inserts (or refreshes) a score, evicting the least recently used
    /// entries if over capacity.
    pub fn insert(&mut self, key: ScoreKey, score: f64) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.next_tick();
        if let Some((old_score, last_used)) = self.entries.get_mut(&key) {
            *old_score = score;
            self.order.remove(last_used);
            *last_used = tick;
            self.order.insert(tick, key);
            return;
        }
        self.entries.insert(key.clone(), (score, tick));
        self.order.insert(tick, key);
        while self.entries.len() > self.capacity {
            let (_, oldest) = self
                .order
                .pop_first()
                .expect("order index and entry map stay in sync");
            self.entries.remove(&oldest);
        }
    }

    /// Drops every entry (used by tests and operational RESET paths).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(generation: u64, features: &[f64]) -> ScoreKey {
        ScoreKey::new(generation, features).unwrap()
    }

    #[test]
    fn get_after_insert_returns_the_exact_score() {
        let mut cache = ScoreCache::new(4);
        let k = key(1, &[0.25, -3.5, 1e-300]);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), 0.123456789);
        assert_eq!(cache.get(&k), Some(0.123456789));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn generation_is_part_of_the_key() {
        let mut cache = ScoreCache::new(4);
        cache.insert(key(1, &[1.0]), 0.1);
        cache.insert(key(2, &[1.0]), 0.9);
        assert_eq!(cache.get(&key(1, &[1.0])), Some(0.1));
        assert_eq!(cache.get(&key(2, &[1.0])), Some(0.9));
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache = ScoreCache::new(2);
        cache.insert(key(1, &[1.0]), 0.1);
        cache.insert(key(1, &[2.0]), 0.2);
        // Touch [1.0] so [2.0] becomes the LRU entry.
        assert!(cache.get(&key(1, &[1.0])).is_some());
        cache.insert(key(1, &[3.0]), 0.3);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1, &[2.0])).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1, &[1.0])).is_some());
        assert!(cache.get(&key(1, &[3.0])).is_some());
    }

    #[test]
    fn reinserting_refreshes_value_and_recency() {
        let mut cache = ScoreCache::new(2);
        cache.insert(key(1, &[1.0]), 0.1);
        cache.insert(key(1, &[2.0]), 0.2);
        cache.insert(key(1, &[1.0]), 0.15); // refresh, [2.0] now LRU
        cache.insert(key(1, &[3.0]), 0.3);
        assert_eq!(cache.get(&key(1, &[1.0])), Some(0.15));
        assert!(cache.get(&key(1, &[2.0])).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ScoreCache::new(0);
        cache.insert(key(1, &[1.0]), 0.5);
        assert!(cache.is_empty());
        assert!(cache.get(&key(1, &[1.0])).is_none());
    }

    #[test]
    fn nan_vectors_are_uncacheable() {
        assert!(ScoreKey::new(1, &[f64::NAN]).is_none());
        assert!(ScoreKey::new(1, &[1.0, f64::NAN, 2.0]).is_none());
        assert!(ScoreKey::new(1, &[f64::INFINITY]).is_some());
    }

    #[test]
    fn negative_zero_and_positive_zero_are_distinct_keys() {
        // Bit-exact keying: -0.0 and 0.0 differ in bits, and the scores for
        // the two vectors are identical anyway because scoring is a pure
        // function of the bits... of the *standardized* values, which can
        // differ. Distinct keys are the conservative, correct choice.
        let mut cache = ScoreCache::new(4);
        cache.insert(key(1, &[0.0]), 0.5);
        assert!(cache.get(&key(1, &[-0.0])).is_none());
    }

    #[test]
    fn clear_empties_everything() {
        let mut cache = ScoreCache::new(4);
        cache.insert(key(1, &[1.0]), 0.1);
        cache.insert(key(1, &[2.0]), 0.2);
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get(&key(1, &[1.0])).is_none());
        // Still usable after clear.
        cache.insert(key(1, &[9.0]), 0.9);
        assert_eq!(cache.get(&key(1, &[9.0])), Some(0.9));
    }
}
