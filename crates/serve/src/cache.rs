//! An LRU cache for scores, keyed by (model generation, exact feature bits),
//! with optional TTL expiry and per-model capacity limits.
//!
//! Scoring is deterministic, so a cache hit returns the *identical* f64 the
//! model would produce. Keys store the full bit pattern of the feature
//! vector (not a lossy hash), so two vectors collide only if they are
//! bit-identical — in which case the cached score is exact by construction.
//! NaN feature vectors are refused rather than cached: NaN != NaN would make
//! key equality lie.
//!
//! Recency is tracked with a monotonically increasing tick and a
//! `BTreeMap<tick, key>` index, giving `O(log n)` get/insert/evict without
//! unsafe code or intrusive lists. Model hot-swaps need no explicit
//! invalidation: a new generation changes every key, and the old entries age
//! out of the LRU order naturally.
//!
//! The default policy is the original exact-match LRU. Two optional knobs
//! tighten it ([`CachePolicy`]):
//!
//! * **TTL** — entries expire `ttl` after they were written (a hit does not
//!   extend the deadline); an expired entry reads as a miss and is removed
//!   on contact. Correctness never needs this (generations already
//!   invalidate hot-swapped models), but a bounded lifetime caps how long a
//!   score for since-evicted upstream data keeps being served.
//! * **Per-model capacity** — at most `per_model` entries per model
//!   generation, evicting that generation's LRU entry first. This stops one
//!   hot model from evicting every other model's working set out of the
//!   shared cache. Finding a generation's LRU entry walks the global
//!   recency index (`O(n)` worst case); the walk only happens on inserts
//!   that overflow a per-model budget, which batching makes rare.

use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

/// Cache key: which model generation scored which exact feature vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScoreKey {
    generation: u64,
    feature_bits: Box<[u64]>,
}

impl ScoreKey {
    /// Builds a key from a model generation and a raw feature vector.
    /// Returns `None` if any feature is NaN (uncacheable: equality on the
    /// bit pattern would not imply equality of the vectors' semantics).
    pub fn new(generation: u64, features: &[f64]) -> Option<Self> {
        if features.iter().any(|f| f.is_nan()) {
            return None;
        }
        Some(ScoreKey {
            generation,
            feature_bits: features.iter().map(|f| f.to_bits()).collect(),
        })
    }

    /// The model generation this key belongs to.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Eviction policy of a [`ScoreCache`].
#[derive(Debug, Clone)]
pub struct CachePolicy {
    /// Maximum total entries (0 disables caching entirely).
    pub capacity: usize,
    /// Entries expire this long after insertion (`None` = never).
    pub ttl: Option<Duration>,
    /// Maximum entries per model generation (`None` = no per-model bound;
    /// `Some(0)` is clamped to 1 — to disable caching entirely, set
    /// `capacity` to 0, which is the only switch that means "cache
    /// nothing").
    pub per_model: Option<usize>,
}

impl CachePolicy {
    /// The default policy at a given capacity: plain exact-match LRU, no
    /// TTL, no per-model bound.
    pub fn lru(capacity: usize) -> Self {
        CachePolicy {
            capacity,
            ttl: None,
            per_model: None,
        }
    }
}

/// One cached score with its recency tick and expiry deadline.
#[derive(Debug, Clone, Copy)]
struct Entry {
    score: f64,
    last_used: u64,
    expires_at: Option<Instant>,
}

/// A fixed-capacity least-recently-used score cache with optional TTL and
/// per-model limits.
#[derive(Debug)]
pub struct ScoreCache {
    policy: CachePolicy,
    entries: HashMap<ScoreKey, Entry>,
    order: BTreeMap<u64, ScoreKey>,
    per_generation: HashMap<u64, usize>,
    tick: u64,
}

impl ScoreCache {
    /// A plain LRU cache holding at most `capacity` scores; capacity 0
    /// disables caching (every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(CachePolicy::lru(capacity))
    }

    /// A cache with an explicit eviction policy.
    pub fn with_policy(policy: CachePolicy) -> Self {
        ScoreCache {
            policy,
            entries: HashMap::new(),
            order: BTreeMap::new(),
            per_generation: HashMap::new(),
            tick: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.policy.capacity
    }

    /// The active eviction policy.
    pub fn policy(&self) -> &CachePolicy {
        &self.policy
    }

    /// Current number of **live** entries: expired-but-untouched entries
    /// are purged before counting, so capacity accounting and the `STATS`
    /// `cache_entries=` gauge never report corpses.
    pub fn len(&mut self) -> usize {
        self.purge_expired();
        self.entries.len()
    }

    /// Whether the cache holds no live entries.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Removes every entry whose TTL deadline has passed. O(n) over the
    /// cache, so it runs lazily: from `len` (rare — STATS requests) and
    /// from inserts that overflow capacity (where evicting a corpse first
    /// keeps live entries from being displaced by dead ones).
    fn purge_expired(&mut self) {
        if self.policy.ttl.is_none() {
            return;
        }
        let now = Instant::now();
        let dead: Vec<(u64, ScoreKey)> = self
            .entries
            .iter()
            .filter(|(_, entry)| entry.expires_at.is_some_and(|deadline| now >= deadline))
            .map(|(key, entry)| (entry.last_used, key.clone()))
            .collect();
        for (tick, key) in dead {
            self.order.remove(&tick);
            self.entries.remove(&key);
            Self::decrement(&mut self.per_generation, key.generation());
        }
    }

    /// Looks up a score, refreshing the entry's recency on a hit. An entry
    /// past its TTL deadline reads as a miss and is dropped.
    pub fn get(&mut self, key: &ScoreKey) -> Option<f64> {
        let tick = self.next_tick();
        let entry = self.entries.get_mut(key)?;
        if entry
            .expires_at
            .is_some_and(|deadline| Instant::now() >= deadline)
        {
            let last_used = entry.last_used;
            self.order.remove(&last_used);
            self.entries.remove(key);
            Self::decrement(&mut self.per_generation, key.generation());
            return None;
        }
        let score = entry.score;
        self.order.remove(&entry.last_used);
        entry.last_used = tick;
        self.order.insert(tick, key.clone());
        Some(score)
    }

    /// Inserts (or refreshes) a score, evicting the least recently used
    /// entries if the insert overflows the per-model or total capacity.
    pub fn insert(&mut self, key: ScoreKey, score: f64) {
        if self.policy.capacity == 0 {
            return;
        }
        let tick = self.next_tick();
        let expires_at = self.policy.ttl.map(|ttl| Instant::now() + ttl);
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.score = score;
            entry.expires_at = expires_at;
            self.order.remove(&entry.last_used);
            entry.last_used = tick;
            self.order.insert(tick, key);
            return;
        }
        let generation = key.generation();
        self.entries.insert(
            key.clone(),
            Entry {
                score,
                last_used: tick,
                expires_at,
            },
        );
        self.order.insert(tick, key);
        *self.per_generation.entry(generation).or_insert(0) += 1;
        if let Some(per_model) = self.policy.per_model {
            while self.per_generation.get(&generation).copied().unwrap_or(0) > per_model.max(1) {
                self.evict_lru_of(generation);
            }
        }
        if self.entries.len() > self.policy.capacity {
            // Over capacity: drop corpses first so expired entries never
            // push live ones out.
            self.purge_expired();
        }
        while self.entries.len() > self.policy.capacity {
            let (_, oldest) = self
                .order
                .pop_first()
                .expect("order index and entry map stay in sync");
            self.entries.remove(&oldest);
            Self::decrement(&mut self.per_generation, oldest.generation());
        }
    }

    /// Warms the cache by replaying a recorded request log: a
    /// line-delimited file of `SCORE <name> <v1> ... <vm>` lines (exactly
    /// what a client sends over the wire, so a capture of production
    /// traffic replays unmodified). Each distinct vector is scored once via
    /// `score`, which resolves the model name to its current generation and
    /// computes the score — or returns `None` to skip the line (model not
    /// loaded, wrong arity). Non-`SCORE` lines, malformed vectors and NaN
    /// vectors are skipped, not errors: a warm-up must tolerate a log
    /// written under a different model set.
    ///
    /// Returns `(replayed, skipped)`: how many lines landed a score in the
    /// cache (a duplicate of an already-cached vector counts as replayed —
    /// the line replayed fine) and how many non-empty lines could not be
    /// used. A truncated or partially binary log — the normal state of a
    /// capture cut off mid-write — degrades to skipped lines, never to an
    /// error: the file is read leniently (invalid UTF-8 is replaced, the
    /// torn final line simply fails to parse) and only a missing/unreadable
    /// file is an `Err`. Scoring is deterministic, so warmed entries are
    /// bitwise identical to what the live request path would have cached —
    /// a warmed server answers its first real request of a logged vector
    /// from the cache, at cache-hit latency.
    pub fn warm_from_log(
        &mut self,
        path: &std::path::Path,
        mut score: impl FnMut(&str, &[f64]) -> Option<(u64, f64)>,
    ) -> std::io::Result<(usize, usize)> {
        let bytes = std::fs::read(path)?;
        let text = String::from_utf8_lossy(&bytes);
        let mut replayed = 0;
        let mut skipped = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let entry = parse_score_line(line).and_then(|(name, features)| {
                let (generation, value) = score(name, &features)?;
                let key = ScoreKey::new(generation, &features)?;
                Some((key, value))
            });
            match entry {
                Some((key, value)) => {
                    if self.get(&key).is_none() {
                        self.insert(key, value);
                    }
                    replayed += 1;
                }
                None => skipped += 1,
            }
        }
        Ok((replayed, skipped))
    }

    /// Drops every entry (used by tests and operational RESET paths).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.per_generation.clear();
    }

    /// Evicts the least recently used entry of one generation.
    fn evict_lru_of(&mut self, generation: u64) {
        let victim = self
            .order
            .iter()
            .find(|(_, key)| key.generation() == generation)
            .map(|(tick, key)| (*tick, key.clone()));
        if let Some((tick, key)) = victim {
            self.order.remove(&tick);
            self.entries.remove(&key);
            Self::decrement(&mut self.per_generation, generation);
        }
    }

    fn decrement(per_generation: &mut HashMap<u64, usize>, generation: u64) {
        if let Some(count) = per_generation.get_mut(&generation) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                per_generation.remove(&generation);
            }
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Parses one recorded `SCORE <name> <v1> ... <vm>` line; `None` for any
/// other verb, a missing name, an empty vector or an unparseable number
/// (which is what the torn final line of a truncated capture looks like).
fn parse_score_line(line: &str) -> Option<(&str, Vec<f64>)> {
    let mut parts = line.split_whitespace();
    if !parts.next()?.eq_ignore_ascii_case("SCORE") {
        return None;
    }
    let name = parts.next()?;
    let features: Vec<f64> = parts.map(|v| v.parse().ok()).collect::<Option<_>>()?;
    if features.is_empty() {
        None
    } else {
        Some((name, features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(generation: u64, features: &[f64]) -> ScoreKey {
        ScoreKey::new(generation, features).unwrap()
    }

    #[test]
    fn get_after_insert_returns_the_exact_score() {
        let mut cache = ScoreCache::new(4);
        let k = key(1, &[0.25, -3.5, 1e-300]);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), 0.123456789);
        assert_eq!(cache.get(&k), Some(0.123456789));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn generation_is_part_of_the_key() {
        let mut cache = ScoreCache::new(4);
        cache.insert(key(1, &[1.0]), 0.1);
        cache.insert(key(2, &[1.0]), 0.9);
        assert_eq!(cache.get(&key(1, &[1.0])), Some(0.1));
        assert_eq!(cache.get(&key(2, &[1.0])), Some(0.9));
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache = ScoreCache::new(2);
        cache.insert(key(1, &[1.0]), 0.1);
        cache.insert(key(1, &[2.0]), 0.2);
        // Touch [1.0] so [2.0] becomes the LRU entry.
        assert!(cache.get(&key(1, &[1.0])).is_some());
        cache.insert(key(1, &[3.0]), 0.3);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1, &[2.0])).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1, &[1.0])).is_some());
        assert!(cache.get(&key(1, &[3.0])).is_some());
    }

    #[test]
    fn reinserting_refreshes_value_and_recency() {
        let mut cache = ScoreCache::new(2);
        cache.insert(key(1, &[1.0]), 0.1);
        cache.insert(key(1, &[2.0]), 0.2);
        cache.insert(key(1, &[1.0]), 0.15); // refresh, [2.0] now LRU
        cache.insert(key(1, &[3.0]), 0.3);
        assert_eq!(cache.get(&key(1, &[1.0])), Some(0.15));
        assert!(cache.get(&key(1, &[2.0])).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ScoreCache::new(0);
        cache.insert(key(1, &[1.0]), 0.5);
        assert!(cache.is_empty());
        assert!(cache.get(&key(1, &[1.0])).is_none());
    }

    #[test]
    fn nan_vectors_are_uncacheable() {
        assert!(ScoreKey::new(1, &[f64::NAN]).is_none());
        assert!(ScoreKey::new(1, &[1.0, f64::NAN, 2.0]).is_none());
        assert!(ScoreKey::new(1, &[f64::INFINITY]).is_some());
    }

    #[test]
    fn negative_zero_and_positive_zero_are_distinct_keys() {
        // Bit-exact keying: -0.0 and 0.0 differ in bits, and the scores for
        // the two vectors are identical anyway because scoring is a pure
        // function of the bits... of the *standardized* values, which can
        // differ. Distinct keys are the conservative, correct choice.
        let mut cache = ScoreCache::new(4);
        cache.insert(key(1, &[0.0]), 0.5);
        assert!(cache.get(&key(1, &[-0.0])).is_none());
    }

    #[test]
    fn warm_from_log_replays_score_lines_and_skips_garbage() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pfr_cache_warm_test_{}.log", std::process::id()));
        std::fs::write(
            &path,
            "SCORE risk 1 2 3\n\
             score risk 1 2 3\n\
             SCORE other 5 6\n\
             SCORE risk 4 banana\n\
             SCORE risk NaN 1 2\n\
             HEALTH\n\
             SCORE risk\n\
             SCORE risk 7 8 9\n",
        )
        .unwrap();
        let mut cache = ScoreCache::new(16);
        // "risk" resolves at generation 3 and scores sum/10; "other" is not
        // loaded, mirroring a log recorded under a different model set.
        let (replayed, skipped) = cache
            .warm_from_log(&path, |name, features| {
                (name == "risk").then(|| (3, features.iter().sum::<f64>() / 10.0))
            })
            .unwrap();
        // Three lines replay ([1,2,3], its lowercase duplicate — which
        // deduplicates in the cache but still replayed — and [7,8,9]); the
        // unloaded model, malformed vector, NaN vector, non-SCORE verb and
        // empty vector are all skipped.
        assert_eq!(replayed, 3);
        assert_eq!(skipped, 5);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(3, &[1.0, 2.0, 3.0])), Some(0.6));
        assert_eq!(cache.get(&key(3, &[7.0, 8.0, 9.0])), Some(2.4));
        assert!(cache.get(&key(3, &[5.0, 6.0])).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn warm_from_log_survives_a_truncated_log() {
        // A capture cut off mid-write: the final line stops mid-number and
        // the torn tail even contains invalid UTF-8 — exactly what a log
        // torn at the block boundary looks like. Warm-up must replay every
        // complete line and skip the debris, not abort.
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "pfr_cache_warm_truncated_{}.log",
            std::process::id()
        ));
        let mut log: Vec<u8> = b"SCORE risk 1 2 3\nSCORE risk 4 5 6\n".to_vec();
        log.extend_from_slice(b"SCORE risk 7 8");
        log.extend_from_slice(&[0xff, 0xfe, 0x00]); // torn binary tail
        std::fs::write(&path, &log).unwrap();
        let mut cache = ScoreCache::new(16);
        // The scorer enforces the model's arity (3 features), as the real
        // registry closure does: the torn 2-feature line cannot replay.
        let (replayed, skipped) = cache
            .warm_from_log(&path, |name, features| {
                (name == "risk" && features.len() == 3).then(|| (1, features.iter().sum::<f64>()))
            })
            .unwrap();
        assert_eq!(replayed, 2);
        assert_eq!(skipped, 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1, &[1.0, 2.0, 3.0])), Some(6.0));
        assert_eq!(cache.get(&key(1, &[4.0, 5.0, 6.0])), Some(15.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn warm_from_log_reports_missing_files() {
        let mut cache = ScoreCache::new(4);
        assert!(cache
            .warm_from_log(std::path::Path::new("/definitely/not/there"), |_, _| None)
            .is_err());
    }

    #[test]
    fn clear_empties_everything() {
        let mut cache = ScoreCache::new(4);
        cache.insert(key(1, &[1.0]), 0.1);
        cache.insert(key(1, &[2.0]), 0.2);
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get(&key(1, &[1.0])).is_none());
        // Still usable after clear.
        cache.insert(key(1, &[9.0]), 0.9);
        assert_eq!(cache.get(&key(1, &[9.0])), Some(0.9));
    }

    #[test]
    fn ttl_expires_entries_without_extending_on_hits() {
        let mut cache = ScoreCache::with_policy(CachePolicy {
            capacity: 8,
            ttl: Some(Duration::from_millis(30)),
            per_model: None,
        });
        cache.insert(key(1, &[1.0]), 0.1);
        // Fresh entry hits, and hitting does not extend the deadline.
        assert_eq!(cache.get(&key(1, &[1.0])), Some(0.1));
        std::thread::sleep(Duration::from_millis(45));
        assert!(cache.get(&key(1, &[1.0])).is_none(), "entry outlived TTL");
        assert!(cache.is_empty(), "expired entry removed on contact");
        // Re-inserting resets the deadline.
        cache.insert(key(1, &[1.0]), 0.2);
        assert_eq!(cache.get(&key(1, &[1.0])), Some(0.2));
    }

    #[test]
    fn len_purges_expired_entries_lazily() {
        let mut cache = ScoreCache::with_policy(CachePolicy {
            capacity: 8,
            ttl: Some(Duration::from_millis(30)),
            per_model: None,
        });
        cache.insert(key(1, &[1.0]), 0.1);
        cache.insert(key(1, &[2.0]), 0.2);
        assert_eq!(cache.len(), 2);
        std::thread::sleep(Duration::from_millis(45));
        // Nothing touched the entries via `get`; `len` must still not
        // count the corpses.
        assert_eq!(cache.len(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn expired_entries_do_not_displace_live_ones_at_capacity() {
        let mut cache = ScoreCache::with_policy(CachePolicy {
            capacity: 2,
            ttl: Some(Duration::from_millis(30)),
            per_model: None,
        });
        cache.insert(key(1, &[1.0]), 0.1);
        cache.insert(key(1, &[2.0]), 0.2);
        std::thread::sleep(Duration::from_millis(45));
        // The overflowing insert purges the two corpses instead of
        // evicting anything live.
        cache.insert(key(1, &[3.0]), 0.3);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(1, &[3.0])), Some(0.3));
    }

    #[test]
    fn per_model_capacity_limits_one_generation_without_starving_others() {
        let mut cache = ScoreCache::with_policy(CachePolicy {
            capacity: 100,
            ttl: None,
            per_model: Some(2),
        });
        // A hot model floods the cache ...
        for i in 0..10 {
            cache.insert(key(1, &[i as f64]), i as f64);
        }
        // ... but holds at most 2 entries, its most recent ones.
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1, &[8.0])).is_some());
        assert!(cache.get(&key(1, &[9.0])).is_some());
        assert!(cache.get(&key(1, &[0.0])).is_none());
        // A second model's entries are untouched by the first one's churn.
        cache.insert(key(2, &[1.0]), 0.5);
        cache.insert(key(1, &[10.0]), 10.0);
        cache.insert(key(1, &[11.0]), 11.0);
        assert_eq!(cache.get(&key(2, &[1.0])), Some(0.5));
    }

    #[test]
    fn per_model_and_global_capacity_compose() {
        let mut cache = ScoreCache::with_policy(CachePolicy {
            capacity: 3,
            ttl: None,
            per_model: Some(2),
        });
        cache.insert(key(1, &[1.0]), 0.1);
        cache.insert(key(1, &[2.0]), 0.2);
        cache.insert(key(2, &[1.0]), 0.3);
        // Generation 1 is at its per-model cap; inserting a third entry for
        // it evicts generation 1's own LRU entry, not generation 2's.
        cache.insert(key(1, &[3.0]), 0.4);
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&key(1, &[1.0])).is_none());
        assert_eq!(cache.get(&key(2, &[1.0])), Some(0.3));
        // Global capacity still evicts across generations as usual.
        cache.insert(key(3, &[1.0]), 0.5);
        assert_eq!(cache.len(), 3);
    }
}
