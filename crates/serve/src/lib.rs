//! # pfr-serve
//!
//! A concurrent model-serving subsystem for the PFR reproduction — the
//! "decision service" half of the paper's deployment story (Section 1.2):
//! a PFR projection and its downstream classifier are trained offline on
//! judgment-enriched data, persisted as a bundle, and shipped to a service
//! that scores regular attribute vectors at request time.
//!
//! Std-only and dependency-free, the subsystem is built from five pieces:
//!
//! * [`ModelRegistry`] — named, versioned, hot-swappable models behind an
//!   `RwLock`; in-flight requests keep the generation they resolved.
//! * [`WorkerPool`] — a fixed pool of worker threads over an
//!   `std::sync::mpsc` channel of boxed jobs.
//! * [`MicroBatcher`] — coalesces up to `B` concurrent single-vector
//!   `SCORE` requests into one matrix, so standardization, the `B×m · m×d`
//!   projection and classification run as one batched pass through
//!   `pfr_linalg` instead of `B` scalar passes.
//! * [`ScoreCache`] — a fixed-capacity LRU keyed by (model generation,
//!   exact feature bits); deterministic scoring makes hits exact, and
//!   hot swaps invalidate implicitly via the generation. Optional TTL
//!   expiry and per-model capacity bounds via [`CachePolicy`].
//! * [`Server`] — a line-delimited TCP protocol (`LOAD` / `SCORE` /
//!   `TRANSFORM` / `STATS` / `HEALTH` / `EPOCH` / `QUIT`) with per-verb
//!   latency and hit-rate counters ([`ServerStats`]), one thread per
//!   connection, and a graceful shutdown that closes and joins every
//!   connection. `HEALTH` and `EPOCH` exist for the `pfr-router` tier:
//!   liveness/queue-depth probes and cross-process model-content digests.
//!
//! Durability is optional: configure [`ServerConfig::journal`] and every
//! accepted `SCORE`/`TRANSFORM`/`LOAD`/`PUSH` is appended to a `pfr-journal`
//! write-ahead log before it executes; after a crash,
//! [`Server::recover_from_journal`] replays the log to rebuild the registry
//! and re-warm the score cache to the exact pre-crash state.
//!
//! ## Quick start
//!
//! ```no_run
//! use pfr_serve::{Server, ServerConfig};
//!
//! let server = Server::spawn(ServerConfig::default()).unwrap();
//! server
//!     .registry()
//!     .load_from_file("admissions", std::path::Path::new("model.bundle"))
//!     .unwrap();
//! println!("serving on {}", server.addr());
//! // ... clients connect and send `SCORE admissions 0.3 1.2 ...` lines ...
//! server.shutdown();
//! ```
//!
//! See `DESIGN.md` in this crate for the batching and caching architecture
//! and `examples/serve_demo.rs` at the workspace root for a full
//! train → persist → serve → query round trip.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod batcher;
pub mod cache;
pub mod error;
pub mod model;
pub mod pool;
pub mod protocol;
pub(crate) mod reactor_front;
pub mod registry;
pub mod server;
pub mod stats;

pub use batcher::{BatcherConfig, MicroBatcher};
pub use cache::{CachePolicy, ScoreCache, ScoreKey};
pub use error::ServeError;
pub use model::ServableModel;
pub use pool::WorkerPool;
pub use protocol::Request;
pub use registry::ModelRegistry;
pub use server::{Frontend, RecoveryReport, Server, ServerConfig};
pub use stats::{InflightGuard, ServerStats, VerbStats};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
