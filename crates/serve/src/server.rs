//! The TCP serving front end: accept loop, per-connection protocol threads,
//! and the request paths that tie registry, cache, batcher and pool together.
//!
//! ```text
//!            ┌────────────┐   SCORE    ┌─────────────┐      ┌────────────┐
//! client ──► │ conn thread│ ──miss───► │ MicroBatcher│ ───► │ WorkerPool │
//!            │ (protocol) │ ◄──reply── │  (coalesce) │      │  (GEMM)    │
//!            └─────┬──────┘            └─────────────┘      └────────────┘
//!                  │ hit                       ▲
//!                  ▼                           │
//!            ┌────────────┐              ┌───────────┐
//!            │ ScoreCache │              │ Registry  │ (LOAD hot-swap)
//!            └────────────┘              └───────────┘
//! ```
//!
//! The cache sits in front of the batcher: a hit answers on the connection
//! thread without touching the pool; a miss pays one batched scoring pass
//! and populates the cache for every identical future request against the
//! same model generation.

use crate::batcher::{BatcherConfig, MicroBatcher};
use crate::cache::{CachePolicy, ScoreCache, ScoreKey};
use crate::error::ServeError;
use crate::protocol::{self, Request};
use crate::registry::ModelRegistry;
use crate::stats::ServerStats;
use crate::Result;
use pfr_journal::{Journal, JournalConfig, Record};
use pfr_obs::{ActiveSpan, MetricsRegistry, Sampler, SpanRing, TraceStore};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which connection-handling architecture the front end runs.
///
/// Both speak the identical protocol and produce bitwise-identical
/// responses — the end-to-end tests run under both and diff them — but
/// they scale differently: `Threaded` pays one OS thread (stack, kernel
/// task, scheduler slot) per *connected* client, `Reactor` pays `threads`
/// event-loop threads total and a few hundred bytes of state per client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frontend {
    /// A pool of `threads` epoll reactor threads multiplexing every
    /// connection (`crates/net`); accepted connections distribute across
    /// the pool via the shared listener, and idle clients cost buffer
    /// space, not threads. `threads` is clamped to at least 1.
    Reactor {
        /// Number of reactor event-loop threads sharing the listener.
        threads: usize,
    },
    /// One blocking thread per accepted connection — the original front
    /// end, kept selectable as the differential-testing baseline.
    Threaded,
}

impl Default for Frontend {
    fn default() -> Self {
        Frontend::Reactor { threads: 1 }
    }
}

impl Frontend {
    /// A reactor pool of `threads` event loops (clamped to at least 1).
    pub fn reactor(threads: usize) -> Frontend {
        Frontend::Reactor {
            threads: threads.max(1),
        }
    }
}

/// Configuration of a serving instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Connection-handling architecture (see [`Frontend`]).
    pub frontend: Frontend,
    /// Worker threads executing scoring/transform jobs.
    pub workers: usize,
    /// Micro-batching parameters.
    pub batcher: BatcherConfig,
    /// LRU score-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Score-cache entries expire this long after insertion (`None` =
    /// never; see [`CachePolicy::ttl`]).
    pub cache_ttl: Option<Duration>,
    /// Per-model-generation score-cache bound (`None` = none; see
    /// [`CachePolicy::per_model`]).
    pub cache_per_model: Option<usize>,
    /// Directory the network-facing `LOAD` verb may read bundles from.
    /// `None` allows any path — acceptable on the default loopback bind,
    /// but a server exposed beyond localhost should restrict `LOAD` (the
    /// verb otherwise lets any client probe arbitrary filesystem paths).
    /// In-process loading via [`Server::registry`] is never restricted.
    pub bundle_dir: Option<std::path::PathBuf>,
    /// Drop connections idle longer than this (`None` = never). Only the
    /// reactor front end enforces it — with thread-per-connection an idle
    /// client already holds the thread, which is the resource the timeout
    /// would protect.
    pub idle_timeout: Option<Duration>,
    /// Write-ahead journal configuration (`None` = no journaling). When
    /// set, every accepted `SCORE`/`TRANSFORM`/`LOAD`/`PUSH` is appended to
    /// the journal *before* it executes (bundle text inlined for `LOAD` and
    /// `PUSH`, so replay needs no filesystem), and
    /// [`Server::recover_from_journal`] can rebuild the registry and
    /// re-warm the score cache to the exact pre-crash state. A request the
    /// journal cannot record fails with an `ERR` — durability is part of
    /// accepting it. Note that models installed in-process via
    /// [`Server::registry`] bypass the wire handlers and are **not**
    /// journaled; use `LOAD`/`PUSH` for installs that must survive a crash.
    pub journal: Option<JournalConfig>,
    /// Most simultaneously connected clients the reactor front end serves
    /// (`None` = unlimited). A connection accepted past the limit is
    /// **shed**: answered with one [`protocol::BUSY`] line and closed, and
    /// counted under `sheds=` on the `STATS` line. Load-shedding protects
    /// tail latency for the connections already admitted; the routing tier
    /// treats `BUSY` as "walk on to another replica". The threaded front
    /// end ignores the limit (each connection already costs a thread,
    /// which is its own natural limiter).
    pub max_connections: Option<usize>,
    /// Trace one in every `trace_sample_every` otherwise-untraced requests
    /// (0 disables server-initiated sampling). Requests arriving with a
    /// `T=<id>` wire token are always traced regardless — the upstream
    /// tier already decided they matter.
    pub trace_sample_every: u64,
    /// Traced requests slower than this get their span breakdown appended
    /// to the journal as a slow-trace record (`None` disables the slow
    /// log). Only traced requests are eligible, so the sampling rate
    /// bounds the logging cost.
    pub slow_trace_threshold: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            frontend: Frontend::default(),
            workers: 4,
            batcher: BatcherConfig::default(),
            cache_capacity: 4096,
            cache_ttl: None,
            cache_per_model: None,
            bundle_dir: None,
            idle_timeout: None,
            journal: None,
            max_connections: None,
            trace_sample_every: 0,
            slow_trace_threshold: None,
        }
    }
}

/// Builder-style constructors so call sites read as intent instead of
/// positional struct literals: `ServerConfig::new().with_frontend(
/// Frontend::reactor(4)).with_max_connections(Some(10_000))`.
impl ServerConfig {
    /// The default configuration (same as [`ServerConfig::default`]).
    pub fn new() -> ServerConfig {
        ServerConfig::default()
    }

    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> ServerConfig {
        self.addr = addr.into();
        self
    }

    /// Selects the connection-handling architecture.
    pub fn with_frontend(mut self, frontend: Frontend) -> ServerConfig {
        self.frontend = frontend;
        self
    }

    /// Sets the scoring worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> ServerConfig {
        self.workers = workers;
        self
    }

    /// Sets the micro-batching parameters.
    pub fn with_batcher(mut self, batcher: BatcherConfig) -> ServerConfig {
        self.batcher = batcher;
        self
    }

    /// Sets the score-cache capacity (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> ServerConfig {
        self.cache_capacity = capacity;
        self
    }

    /// Restricts the wire-facing `LOAD` verb to bundles under `dir`.
    pub fn with_bundle_dir(mut self, dir: Option<std::path::PathBuf>) -> ServerConfig {
        self.bundle_dir = dir;
        self
    }

    /// Sets the reactor front end's idle-connection timeout.
    pub fn with_idle_timeout(mut self, timeout: Option<Duration>) -> ServerConfig {
        self.idle_timeout = timeout;
        self
    }

    /// Enables write-ahead journaling.
    pub fn with_journal(mut self, journal: Option<JournalConfig>) -> ServerConfig {
        self.journal = journal;
        self
    }

    /// Sets the reactor front end's connection limit (see
    /// [`ServerConfig::max_connections`]).
    pub fn with_max_connections(mut self, limit: Option<usize>) -> ServerConfig {
        self.max_connections = limit;
        self
    }

    /// Traces one in every `every` untraced requests (0 disables
    /// server-initiated sampling; wire-token traces are always recorded).
    pub fn with_trace_sampling(mut self, every: u64) -> ServerConfig {
        self.trace_sample_every = every;
        self
    }

    /// Journals the span breakdown of traced requests slower than
    /// `threshold` (see [`ServerConfig::slow_trace_threshold`]).
    pub fn with_slow_trace_threshold(mut self, threshold: Option<Duration>) -> ServerConfig {
        self.slow_trace_threshold = threshold;
        self
    }
}

/// How often the accept loop re-checks the shutdown flag while no
/// connection is pending. Bounds both shutdown latency and the worst-case
/// extra accept latency of the non-blocking loop.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Finished spans each front-end ring retains for `TRACE` lookups. Spans
/// exist only for sampled requests, so the memory cost is bounded and
/// small (a few hundred bytes per span).
pub(crate) const SPAN_RING_CAPACITY: usize = 256;

/// Live client connections: their streams (so shutdown can unblock the
/// reads) and their thread handles (so shutdown can join instead of leak).
#[derive(Debug, Default)]
struct ConnectionTable {
    next_id: AtomicU64,
    streams: Mutex<HashMap<u64, TcpStream>>,
    threads: Mutex<Vec<(u64, JoinHandle<()>)>>,
}

impl ConnectionTable {
    /// Registers a connection; returns its id for deregistration.
    fn register(&self, stream: TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.streams
            .lock()
            .expect("connection table lock poisoned")
            .insert(id, stream);
        id
    }

    /// Removes a finished connection's stream (called by its own thread).
    fn deregister(&self, id: u64) {
        self.streams
            .lock()
            .expect("connection table lock poisoned")
            .remove(&id);
    }

    /// Records a connection thread's handle and drops already-finished
    /// handles (dropping a finished thread's handle just detaches it), so
    /// the table stays bounded by the number of *live* connections, not the
    /// number ever accepted.
    fn track(&self, id: u64, handle: JoinHandle<()>) {
        let mut threads = self.threads.lock().expect("connection table lock poisoned");
        threads.retain(|(_, h)| !h.is_finished());
        threads.push((id, handle));
    }

    /// Half-closes every live connection so blocked `read_line`s return,
    /// then joins every connection thread.
    fn close_and_join(&self) {
        for stream in self
            .streams
            .lock()
            .expect("connection table lock poisoned")
            .values()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handles: Vec<_> = {
            let mut threads = self.threads.lock().expect("connection table lock poisoned");
            threads.drain(..).collect()
        };
        for (_, handle) in handles {
            let _ = handle.join();
        }
    }
}

/// Everything the request paths share (both front ends).
pub(crate) struct ServeContext {
    pub(crate) registry: ModelRegistry,
    pub(crate) cache: Mutex<ScoreCache>,
    pub(crate) batcher: MicroBatcher,
    pub(crate) pool: Arc<crate::pool::WorkerPool>,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) bundle_dir: Option<std::path::PathBuf>,
    pub(crate) journal: Option<Arc<Journal>>,
    /// What the last [`Server::recover_from_journal`] rebuilt; rendered on
    /// the `STATS` line so replay truncation/skips are visible at runtime.
    recovery: Mutex<Option<RecoveryReport>>,
    /// Extra `key=value` stats sources attached by co-located subsystems
    /// (e.g. an in-process refit worker riding the `STATS` line).
    extra_stats: Mutex<Vec<Arc<dyn Fn() -> String + Send + Sync>>>,
    connections: ConnectionTable,
    /// Every counter/gauge/histogram this process exposes via `METRICS`.
    pub(crate) metrics: Arc<MetricsRegistry>,
    /// Span rings the `TRACE` verb reads back (one per front-end thread
    /// group; the threaded front end shares [`ServeContext::span_ring`]).
    pub(crate) traces: Arc<TraceStore>,
    /// The threaded front end's shared span ring.
    pub(crate) span_ring: Arc<SpanRing>,
    /// Decides which untraced requests get a server-minted span.
    pub(crate) sampler: Sampler,
    /// Slow-request log threshold (see
    /// [`ServerConfig::slow_trace_threshold`]).
    pub(crate) slow_threshold: Option<Duration>,
    /// The replicated placement catalog this backend stores for the
    /// router tier (`CATALOG`/`SYNC` verbs). The server never interprets
    /// it — it orders, stores and serves the value so that a restarted
    /// router can bootstrap its control-plane state from any backend.
    pub(crate) catalog: Mutex<Option<pfr_control::Catalog>>,
}

impl ServeContext {
    /// The `STATS` payload: the atomic counters plus the live cache-entry
    /// gauge (expired entries are purged before counting, so the gauge
    /// reflects what the cache actually holds) and, when journaling is on,
    /// the journal's own counters (seq, segments, bytes, fsync lag), the
    /// last recovery's replay accounting, and any attached extra sources.
    pub(crate) fn stats_line(&self) -> String {
        let entries = self.cache.lock().expect("cache lock poisoned").len();
        let mut line = format!("{} cache_entries={entries}", self.stats.to_line());
        if let Some(journal) = &self.journal {
            line.push(' ');
            line.push_str(&journal.stats().to_line());
        }
        if let Some(report) = *self.recovery.lock().expect("recovery lock poisoned") {
            line.push(' ');
            line.push_str(&report.to_line());
        }
        for source in self
            .extra_stats
            .lock()
            .expect("extra stats lock poisoned")
            .iter()
        {
            let extra = source();
            if !extra.is_empty() {
                line.push(' ');
                line.push_str(&extra);
            }
        }
        line
    }

    /// Appends a journal record if journaling is configured. The record is
    /// built lazily so the non-journaling hot path pays nothing. An append
    /// failure fails the request: a server that promised durability must
    /// not serve what it could not record.
    pub(crate) fn journal_append(&self, record: impl FnOnce() -> Record) -> Result<()> {
        if let Some(journal) = &self.journal {
            journal
                .append(&record())
                .map_err(|e| ServeError::Journal(e.to_string()))?;
        }
        Ok(())
    }

    /// Starts a span when this request should be traced: always when it
    /// arrived with a wire token (`wire_trace`), otherwise when the
    /// sampler fires. Untraced requests pay one relaxed atomic add in the
    /// sampler and nothing else.
    pub(crate) fn begin_span(
        &self,
        wire_trace: Option<u64>,
        name: &'static str,
    ) -> Option<ActiveSpan> {
        match wire_trace {
            Some(id) => Some(ActiveSpan::new(id, name)),
            None if self.sampler.fire() => Some(ActiveSpan::new(pfr_obs::mint_trace_id(), name)),
            None => None,
        }
    }

    /// Closes a span into `ring` and, when the request breached the slow
    /// threshold, writes its breakdown through the journal as a
    /// slow-trace record (best effort: a full disk must not fail a
    /// request that already succeeded).
    pub(crate) fn finish_span(&self, span: ActiveSpan, ring: &SpanRing) {
        let trace_id = span.trace_id();
        let total_ns = span.finish(ring);
        let Some(threshold) = self.slow_threshold else {
            return;
        };
        if total_ns < u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX) {
            return;
        }
        self.stats.record_slow_request();
        if let Some(journal) = &self.journal {
            if let Some(record) = ring.find(trace_id).into_iter().next_back() {
                let _ = journal.append(&Record::SlowTrace {
                    trace_id,
                    total_ns,
                    text: record.render(0),
                });
            }
        }
    }

    /// The `METRICS` payload: the full exposition, escaped onto one line.
    pub(crate) fn metrics_payload(&self) -> String {
        pfr_obs::escape_multiline(&self.metrics.render())
    }

    /// The `TRACE <id>` payload: every recorded span under `id`, escaped
    /// onto one line. Unknown ids are an error — either the id was never
    /// sampled here or its spans have been evicted.
    pub(crate) fn trace_payload(&self, id: u64) -> Result<String> {
        let spans = self.traces.find(id);
        if spans.is_empty() {
            return Err(ServeError::Protocol(format!("no recorded trace {id:016x}")));
        }
        let mut text = String::new();
        for span in &spans {
            text.push_str(&span.render(0));
        }
        Ok(pfr_obs::escape_multiline(&text))
    }
}

/// What [`Server::recover_from_journal`] rebuilt from the journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Total checksum-valid frames replayed.
    pub frames: u64,
    /// `LOAD`/`PUSH` frames whose inlined bundle was reinstalled.
    pub installs: usize,
    /// `SCORE` frames replayed against a loaded model (cached or not).
    pub scores: usize,
    /// Distinct cache entries inserted by replay — a vector scored twice
    /// pre-crash warms once.
    pub warmed: usize,
    /// `TRANSFORM` frames acknowledged (pure reads; nothing to rebuild).
    pub transforms: usize,
    /// Frames that could not be applied — typically requests against a
    /// model whose install frame fell to segment retention.
    pub skipped: usize,
    /// Highest sequence number replayed (0 when the journal is empty).
    pub last_seq: u64,
    /// Bytes past the last valid frame ignored during replay. Normally 0:
    /// opening the journal already truncated any torn tail.
    pub truncated_bytes: u64,
}

impl RecoveryReport {
    /// Renders the report as `key=value` pairs for the `STATS` line, so the
    /// otherwise-invisible replay accounting (notably `skipped` frames and
    /// `truncated_bytes`) is observable at runtime.
    pub fn to_line(&self) -> String {
        format!(
            "recovered_frames={} recovered_installs={} recovered_scores={} \
             recovered_warmed={} recovered_skipped={} recovered_last_seq={} \
             recovered_truncated_bytes={}",
            self.frames,
            self.installs,
            self.scores,
            self.warmed,
            self.skipped,
            self.last_seq,
            self.truncated_bytes,
        )
    }
}

/// The running front end's handles — whichever architecture was selected.
enum Front {
    Threaded {
        accept_thread: Option<JoinHandle<()>>,
    },
    Reactor {
        threads: Vec<JoinHandle<()>>,
        wakers: Vec<Arc<pfr_net::Waker>>,
    },
}

/// A running server: address, shared state handles, and shutdown control.
pub struct Server {
    addr: SocketAddr,
    context: Arc<ServeContext>,
    shutdown: Arc<AtomicBool>,
    front: Front,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds, spawns the selected front end and returns the running server.
    pub fn spawn(config: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // A non-blocking listener lets the threaded accept loop poll the
        // shutdown flag (and is mandatory for the reactor, which must never
        // block in accept).
        listener.set_nonblocking(true)?;
        let stats = Arc::new(ServerStats::new());
        let pool = Arc::new(crate::pool::WorkerPool::new(config.workers));
        let batcher = MicroBatcher::new(
            config.batcher.clone(),
            Arc::clone(&pool),
            Arc::clone(&stats),
        );
        let journal = match &config.journal {
            Some(journal_config) => Some(Arc::new(
                Journal::open(journal_config.clone())
                    .map_err(|e| ServeError::Journal(e.to_string()))?,
            )),
            None => None,
        };
        let metrics = Arc::new(MetricsRegistry::new());
        stats.register_metrics(&metrics);
        if let Some(journal) = &journal {
            journal.register_metrics(&metrics);
        }
        let traces = Arc::new(TraceStore::new());
        let span_ring = traces.new_ring(SPAN_RING_CAPACITY);
        {
            let traces = Arc::clone(&traces);
            metrics.gauge(
                "pfr_trace_slowest_ns",
                &[],
                Arc::new(move || traces.slowest().map(|s| s.total_ns as f64).unwrap_or(0.0)),
            );
        }
        let context = Arc::new(ServeContext {
            registry: ModelRegistry::new(),
            cache: Mutex::new(ScoreCache::with_policy(CachePolicy {
                capacity: config.cache_capacity,
                ttl: config.cache_ttl,
                per_model: config.cache_per_model,
            })),
            batcher,
            pool,
            stats,
            bundle_dir: config.bundle_dir.clone(),
            journal,
            recovery: Mutex::new(None),
            extra_stats: Mutex::new(Vec::new()),
            connections: ConnectionTable::default(),
            metrics,
            traces,
            span_ring,
            sampler: Sampler::new(config.trace_sample_every),
            slow_threshold: config.slow_trace_threshold,
            catalog: Mutex::new(None),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let front = match config.frontend {
            Frontend::Threaded => {
                let context = Arc::clone(&context);
                let shutdown = Arc::clone(&shutdown);
                let accept_thread = std::thread::Builder::new()
                    .name("pfr-serve-accept".to_string())
                    .spawn(move || accept_loop(listener, &context, &shutdown))
                    .expect("spawning the accept thread never fails on this platform");
                Front::Threaded {
                    accept_thread: Some(accept_thread),
                }
            }
            Frontend::Reactor { threads } => {
                let (threads, wakers) = crate::reactor_front::spawn_pool(
                    listener,
                    Arc::clone(&context),
                    Arc::clone(&shutdown),
                    config.idle_timeout,
                    threads.max(1),
                    config.max_connections,
                )?;
                Front::Reactor { threads, wakers }
            }
        };
        Ok(Server {
            addr,
            context,
            shutdown,
            front,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's model registry — loading a model here is equivalent to a
    /// `LOAD` request, which lets a process pre-load models before exposing
    /// the port to clients.
    pub fn registry(&self) -> &ModelRegistry {
        &self.context.registry
    }

    /// Live serving statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.context.stats
    }

    /// The metrics registry backing the `METRICS` verb. Co-located
    /// subsystems (an in-process refit worker, say) register their own
    /// gauges here to ride the same exposition.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.context.metrics
    }

    /// The recorded trace spans backing the `TRACE` verb.
    pub fn traces(&self) -> &TraceStore {
        &self.context.traces
    }

    /// Warms the score cache from an externally recorded request log
    /// (line-delimited `SCORE <name> ...` lines — a wire capture replays
    /// unmodified). Call after loading models and before exposing the
    /// address. Returns `(replayed, skipped)` line counts; truncated or
    /// partially binary logs degrade to skipped lines, never errors. See
    /// [`ScoreCache::warm_from_log`].
    ///
    /// A server running with a journal does not need this: journal replay
    /// ([`Server::recover_from_journal`]) warms the cache from the
    /// server's *own* durable request record instead of an external
    /// capture.
    pub fn warm_from_log(&self, path: &Path) -> Result<(usize, usize)> {
        let registry = &self.context.registry;
        let mut cache = self.context.cache.lock().expect("cache lock poisoned");
        let counts = cache.warm_from_log(path, |name, features| {
            let model = registry.get(name)?;
            let score = model.score_one(features).ok()?;
            Some((model.generation(), score))
        })?;
        Ok(counts)
    }

    /// The write-ahead journal, if one is configured.
    pub fn journal(&self) -> Option<&Journal> {
        self.context.journal.as_deref()
    }

    /// Replays the configured journal to rebuild this server's state to the
    /// exact pre-crash point: `LOAD`/`PUSH` frames reinstall their inlined
    /// bundles into the registry, and `SCORE` frames re-score and re-insert
    /// into the cache (in journal order, so even the LRU recency order
    /// matches what the crashed server held). Scoring is deterministic, so
    /// the warmed entries are bitwise identical to both the pre-crash
    /// responses and offline predictions.
    ///
    /// Call right after [`Server::spawn`], before exposing the address.
    /// Replay applies state directly — nothing is re-journaled — and a
    /// frame that cannot be applied (a `SCORE` for a model whose install
    /// was dropped by segment retention, say) is counted as skipped rather
    /// than aborting the recovery.
    pub fn recover_from_journal(&self) -> Result<RecoveryReport> {
        let journal = self
            .context
            .journal
            .as_ref()
            .ok_or_else(|| ServeError::Journal("no journal configured".to_string()))?;
        let registry = &self.context.registry;
        let mut report = RecoveryReport::default();
        let summary = journal
            .replay(|_seq, record| match record {
                Record::Load { model, bundle_text } | Record::Push { model, bundle_text } => {
                    match registry.load_from_str(&model, &bundle_text) {
                        Ok(_) => report.installs += 1,
                        Err(_) => report.skipped += 1,
                    }
                }
                Record::Score { model, features } => {
                    let warmed = (|| {
                        let servable = registry.get(&model)?;
                        let key = ScoreKey::new(servable.generation(), &features)?;
                        let mut cache = self.context.cache.lock().expect("cache lock poisoned");
                        if cache.get(&key).is_none() {
                            let score = servable.score_one(&features).ok()?;
                            cache.insert(key, score);
                            Some(true)
                        } else {
                            Some(false)
                        }
                    })();
                    match warmed {
                        Some(true) => {
                            report.scores += 1;
                            report.warmed += 1;
                        }
                        Some(false) => report.scores += 1,
                        None => report.skipped += 1,
                    }
                }
                Record::Transform { model, .. } => {
                    // Transforms are pure reads with no cached state to
                    // rebuild; they count toward the replay total only.
                    if registry.get(&model).is_some() {
                        report.transforms += 1;
                    } else {
                        report.skipped += 1;
                    }
                }
                Record::SlowTrace { .. } => {
                    // Slow-trace records are diagnostics riding the same
                    // durable stream; there is no state to rebuild.
                }
            })
            .map_err(|e| ServeError::Journal(e.to_string()))?;
        report.frames = summary.frames;
        report.last_seq = summary.last_seq;
        report.truncated_bytes = summary.truncated_bytes;
        *self
            .context
            .recovery
            .lock()
            .expect("recovery lock poisoned") = Some(report);
        Ok(report)
    }

    /// The version of the replicated placement catalog this backend
    /// currently stores (`None` until a router has `SYNC`ed one) — the
    /// in-process view of what the `CATALOG` verb reports.
    pub fn catalog_version(&self) -> Option<pfr_control::Version> {
        self.context
            .catalog
            .lock()
            .expect("catalog lock poisoned")
            .as_ref()
            .map(|c| c.version())
    }

    /// The report of the last [`Server::recover_from_journal`], if one ran.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        *self
            .context
            .recovery
            .lock()
            .expect("recovery lock poisoned")
    }

    /// Attaches an extra stats source whose `key=value` output is appended
    /// to every `STATS` response — how co-located subsystems (the refit
    /// worker) ride the serving tier's telemetry line.
    pub fn attach_stats_source(&self, source: Arc<dyn Fn() -> String + Send + Sync>) {
        self.context
            .extra_stats
            .lock()
            .expect("extra stats lock poisoned")
            .push(source);
    }

    /// Gracefully shuts the server down: stops accepting, closes every
    /// established connection (in-flight requests finish; blocked reads are
    /// unblocked by the socket close) and joins the accept and connection
    /// threads. No thread or socket outlives this call.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        match &mut self.front {
            Front::Threaded { accept_thread } => {
                if let Some(t) = accept_thread.take() {
                    let _ = t.join();
                }
                self.context.connections.close_and_join();
            }
            Front::Reactor { threads, wakers } => {
                // Every reactor notices the flag on its wake, closes the
                // connections it owns and exits.
                for waker in wakers.iter() {
                    let _ = waker.wake();
                }
                for t in threads.drain(..) {
                    let _ = t.join();
                }
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accepts connections until the shutdown flag flips, polling every
/// [`ACCEPT_POLL`] while idle; each accepted stream gets a registered,
/// joinable connection thread.
fn accept_loop(listener: TcpListener, context: &Arc<ServeContext>, shutdown: &Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(_) => {
                // Persistent accept errors (EMFILE under fd exhaustion)
                // return without consuming the pending connection; retrying
                // immediately would busy-spin a core.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        // Accepted sockets must block: the connection thread parks in
        // read_line between requests. (Linux does not inherit O_NONBLOCK
        // across accept, but other platforms may.)
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        // The protocol is one short line each way per request; Nagle +
        // delayed ACK would serialize that into ~40ms round trips.
        let _ = stream.set_nodelay(true);
        let Ok(tracked) = stream.try_clone() else {
            continue;
        };
        context.stats.record_connection();
        let id = context.connections.register(tracked);
        let thread_context = Arc::clone(context);
        let thread_shutdown = Arc::clone(shutdown);
        let spawned = std::thread::Builder::new()
            .name("pfr-serve-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &thread_context, &thread_shutdown);
                thread_context.connections.deregister(id);
            });
        match spawned {
            Ok(handle) => context.connections.track(id, handle),
            Err(_) => context.connections.deregister(id),
        }
    }
}

/// Reads request lines until EOF/QUIT/shutdown, writing one response line
/// each.
fn handle_connection(stream: TcpStream, context: &ServeContext, shutdown: &AtomicBool) {
    let Ok(peer_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client closed (or shutdown closed us)
            Ok(_) => {}
        }
        // A line that raced the shutdown close is dropped rather than
        // served: the socket is already shut in both directions, so the
        // response could not reach the client anyway.
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        if line.trim().is_empty() {
            continue;
        }
        let parsed = protocol::parse_request(&line);
        // PUSH is the one verb the line-oriented `respond` cannot execute:
        // its counted payload must be read off this connection's stream
        // before the next request line.
        let (response, quit) = match parsed {
            Ok(Request::Push {
                name,
                nbytes,
                trace,
            }) => {
                let start = Instant::now();
                let _inflight = context.stats.track_inflight();
                let mut span = context.begin_span(trace, "serve/PUSH");
                let mut payload = vec![0u8; nbytes];
                if reader.read_exact(&mut payload).is_err() {
                    // A truncated payload leaves the stream unframeable;
                    // close rather than misparse payload bytes as lines.
                    return;
                }
                if let Some(s) = span.as_mut() {
                    s.event("payload-read");
                }
                let outcome = handle_push(context, &name, &payload, span.as_mut());
                context.stats.load.record(start.elapsed(), outcome.is_ok());
                if let Some(span) = span {
                    context.finish_span(span, &context.span_ring);
                }
                let mut response = match outcome {
                    Ok(payload) => protocol::ok_response(&payload),
                    Err(e) => protocol::err_response(&e),
                };
                if let Some(id) = trace {
                    response.push(' ');
                    response.push_str(&pfr_obs::trace_token(id));
                }
                (response, false)
            }
            // SYNC carries a counted payload too: read it off the stream
            // here for the same framing reason as PUSH.
            Ok(Request::Sync { nbytes }) => {
                let start = Instant::now();
                let _inflight = context.stats.track_inflight();
                let mut payload = vec![0u8; nbytes];
                if reader.read_exact(&mut payload).is_err() {
                    return;
                }
                let outcome = handle_sync(context, &payload);
                context
                    .stats
                    .catalog
                    .record(start.elapsed(), outcome.is_ok());
                let response = match outcome {
                    Ok(payload) => protocol::ok_response(&payload),
                    Err(e) => protocol::err_response(&e),
                };
                (response, false)
            }
            parsed => respond(parsed, context, &context.span_ring),
        };
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
            || quit
        {
            return;
        }
    }
}

/// Executes one parsed request; returns the response and whether to close.
/// `PUSH` never reaches here — the connection loop intercepts it to read
/// the counted payload off the stream. Finished spans land in `ring` (the
/// calling front-end thread group's ring).
fn respond(parsed: Result<Request>, context: &ServeContext, ring: &SpanRing) -> (String, bool) {
    match parsed {
        Ok(Request::Quit) => (protocol::ok_response("bye"), true),
        Ok(request) => {
            let start = Instant::now();
            let _inflight = context.stats.track_inflight();
            // The wire token is echoed on the response; a server-sampled
            // span is recorded locally but never changes response bytes.
            let wire_trace = match &request {
                Request::Score { trace, .. } | Request::Transform { trace, .. } => *trace,
                _ => None,
            };
            let mut span = match &request {
                Request::Score { .. } => context.begin_span(wire_trace, "serve/SCORE"),
                Request::Transform { .. } => context.begin_span(wire_trace, "serve/TRANSFORM"),
                _ => None,
            };
            let (verb_stats, outcome) = match request {
                Request::Load { name, path } => (
                    &context.stats.load,
                    handle_load(context, &name, Path::new(&path)),
                ),
                Request::Score { name, features, .. } => (
                    &context.stats.score,
                    handle_score(context, &name, features, span.as_mut()),
                ),
                Request::Transform { name, features, .. } => (
                    &context.stats.transform,
                    handle_transform(context, &name, features, span.as_mut()),
                ),
                Request::Stats => (&context.stats.stats, Ok(context.stats_line())),
                Request::Health => (&context.stats.health, Ok(handle_health(context))),
                Request::Epoch { name } => (&context.stats.epoch, handle_epoch(context, &name)),
                Request::Metrics => (&context.stats.stats, Ok(context.metrics_payload())),
                Request::Trace { id } => (&context.stats.stats, context.trace_payload(id)),
                Request::Catalog { full } => {
                    (&context.stats.catalog, Ok(handle_catalog(context, full)))
                }
                Request::Quit => unreachable!("handled above"),
                Request::Push { .. } | Request::Sync { .. } => {
                    unreachable!("intercepted by the connection loop")
                }
            };
            verb_stats.record(start.elapsed(), outcome.is_ok());
            if let Some(span) = span {
                context.finish_span(span, ring);
            }
            let mut response = match outcome {
                Ok(payload) => protocol::ok_response(&payload),
                Err(e) => protocol::err_response(&e),
            };
            if let Some(id) = wire_trace {
                response.push(' ');
                response.push_str(&pfr_obs::trace_token(id));
            }
            (response, false)
        }
        Err(e) => {
            context.stats.record_parse_error();
            (protocol::err_response(&e), false)
        }
    }
}

/// `HEALTH`: liveness plus the signals a routing tier keys decisions on —
/// how many models are loaded, how often they have been swapped, and the
/// instantaneous queue depth. The `queue=` figure includes this HEALTH
/// request itself, so an idle server reports `queue=1`.
pub(crate) fn handle_health(context: &ServeContext) -> String {
    format!(
        "up models={} swaps={} queue={}",
        context.registry.len(),
        context.registry.hot_swaps(),
        context.stats.queue_depth(),
    )
}

/// `EPOCH <name>`: the model's process-local generation and its
/// cross-process-comparable content digest.
pub(crate) fn handle_epoch(context: &ServeContext, name: &str) -> Result<String> {
    let model = context.registry.resolve(name)?;
    Ok(format!(
        "{name} generation={} digest={}",
        model.generation(),
        pfr_core::persistence::digest_hex(model.digest()),
    ))
}

pub(crate) fn handle_load(context: &ServeContext, name: &str, path: &Path) -> Result<String> {
    if let Some(dir) = &context.bundle_dir {
        // Canonicalize both sides so `..` segments and symlinks cannot
        // escape the configured bundle directory.
        let canonical = path
            .canonicalize()
            .map_err(|_| ServeError::Model(format!("no bundle at '{}'", path.display())))?;
        let dir = dir
            .canonicalize()
            .map_err(|_| ServeError::Model("bundle directory is unavailable".to_string()))?;
        if !canonical.starts_with(&dir) {
            return Err(ServeError::Model(format!(
                "'{}' is outside the served bundle directory",
                path.display()
            )));
        }
    }
    let model = if context.journal.is_some() {
        // Journaling inlines the bundle text so replay needs no filesystem:
        // read and validate first (garbage never lands in the journal),
        // append the frame, then install from the already-read text.
        let text = std::fs::read_to_string(path)?;
        pfr_core::persistence::bundle_from_string(&text).map_err(ServeError::model)?;
        context.journal_append(|| Record::Load {
            model: name.to_string(),
            bundle_text: text.clone(),
        })?;
        context.registry.load_from_str(name, &text)?
    } else {
        context.registry.load_from_file(name, path)?
    };
    Ok(loaded_payload(&model))
}

/// `PUSH <name> <nbytes>` + payload: registers the bundle text shipped
/// over the wire — `LOAD` without the shared-filesystem assumption, so a
/// router can place replicas on backends that cannot read its disks. The
/// `bundle_dir` restriction does not apply: no server-side path is read.
pub(crate) fn handle_push(
    context: &ServeContext,
    name: &str,
    payload: &[u8],
    mut span: Option<&mut ActiveSpan>,
) -> Result<String> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ServeError::Protocol("PUSH payload is not valid utf-8".to_string()))?;
    if context.journal.is_some() {
        // Validate before journaling so a garbage payload never occupies a
        // frame; the install below re-parses, but pushes are rare and
        // bundles are small.
        pfr_core::persistence::bundle_from_string(text).map_err(ServeError::model)?;
        context.journal_append(|| Record::Push {
            model: name.to_string(),
            bundle_text: text.to_string(),
        })?;
        if let Some(s) = span.as_deref_mut() {
            s.event("journal-append");
        }
    }
    let model = context.registry.load_from_str(name, text)?;
    if let Some(s) = span {
        s.event("install");
    }
    Ok(loaded_payload(&model))
}

/// `CATALOG [FULL]`: reports the stored placement catalog's version
/// summary (digest-first anti-entropy probes this), or — with `FULL` —
/// hands over the whole catalog text escaped onto one line so a peer
/// router can bootstrap from it. A backend that has never been `SYNC`ed
/// answers `none`.
pub(crate) fn handle_catalog(context: &ServeContext, full: bool) -> String {
    let guard = context.catalog.lock().expect("catalog lock poisoned");
    match guard.as_ref() {
        None => "none".to_string(),
        Some(catalog) if full => pfr_control::escape(&catalog.to_text()),
        Some(catalog) => catalog.version().summary(),
    }
}

/// `SYNC <nbytes>` + payload: offers a catalog to this backend. The
/// offered value replaces the stored one only when it supersedes it under
/// the [`pfr_control::Version`] total order — highest version wins, so
/// concurrent routers pushing stale catalogs can never roll the store
/// back. The response reports the post-merge holder state and whether the
/// offer was applied.
pub(crate) fn handle_sync(context: &ServeContext, payload: &[u8]) -> Result<String> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ServeError::Protocol("SYNC payload is not valid utf-8".to_string()))?;
    let offered =
        pfr_control::Catalog::from_text(text).map_err(|e| ServeError::Protocol(e.to_string()))?;
    let mut guard = context.catalog.lock().expect("catalog lock poisoned");
    let applied = match guard.as_ref() {
        Some(held) if !offered.supersedes(held) => false,
        _ => {
            *guard = Some(offered);
            true
        }
    };
    let version = guard
        .as_ref()
        .expect("catalog present after merge")
        .version();
    Ok(format!(
        "{} applied={}",
        version.summary(),
        u8::from(applied)
    ))
}

/// The shared `LOAD`/`PUSH` success payload.
fn loaded_payload(model: &crate::model::ServableModel) -> String {
    format!(
        "loaded {} features={} dim={}",
        model.version(),
        model.num_features(),
        model.dim()
    )
}

fn handle_score(
    context: &ServeContext,
    name: &str,
    features: Vec<f64>,
    mut span: Option<&mut ActiveSpan>,
) -> Result<String> {
    let model = context.registry.resolve(name)?;
    if let Some(s) = span.as_deref_mut() {
        s.event("resolve");
    }
    // Journaled before execution — cache hits included — so replay
    // reproduces the exact request order (and thus the LRU state).
    context.journal_append(|| Record::Score {
        model: name.to_string(),
        features: features.clone(),
    })?;
    if context.journal.is_some() {
        if let Some(s) = span.as_deref_mut() {
            s.event("journal-append");
        }
    }
    let key = ScoreKey::new(model.generation(), &features);
    if let Some(key) = &key {
        let cached = context.cache.lock().expect("cache lock poisoned").get(key);
        if let Some(score) = cached {
            context.stats.record_cache_hit();
            if let Some(s) = span.as_deref_mut() {
                s.event("cache-hit");
            }
            return Ok(score_payload(score, model.threshold()));
        }
    }
    context.stats.record_cache_miss();
    if let Some(s) = span.as_deref_mut() {
        s.event("cache-miss");
    }
    let threshold = model.threshold();
    let score = context.batcher.score(model, features)?;
    if let Some(s) = span.as_deref_mut() {
        // Queue wait, batch assembly and the GEMM itself all sit between
        // the previous event and this one.
        s.event("batch-scored");
    }
    if let Some(key) = key {
        context
            .cache
            .lock()
            .expect("cache lock poisoned")
            .insert(key, score);
        if let Some(s) = span {
            s.event("cache-insert");
        }
    }
    Ok(score_payload(score, threshold))
}

pub(crate) fn score_payload(score: f64, threshold: f64) -> String {
    format!("{score} {}", u8::from(score >= threshold))
}

fn handle_transform(
    context: &ServeContext,
    name: &str,
    features: Vec<f64>,
    mut span: Option<&mut ActiveSpan>,
) -> Result<String> {
    let model = context.registry.resolve(name)?;
    if let Some(s) = span.as_deref_mut() {
        s.event("resolve");
    }
    context.journal_append(|| Record::Transform {
        model: name.to_string(),
        features: features.clone(),
    })?;
    // Transforms are not micro-batched (they are an offline/debugging verb);
    // they still run on the pool so connection threads never do linear
    // algebra.
    let receiver = context.pool.submit(move || -> Result<Vec<f64>> {
        let x =
            pfr_linalg::Matrix::from_vec(1, features.len(), features).map_err(ServeError::model)?;
        let z = model.transform_batch(&x)?;
        Ok(z.row(0).to_vec())
    })?;
    let z = receiver.recv().map_err(|_| ServeError::Shutdown)??;
    if let Some(s) = span {
        s.event("pool-exec");
    }
    Ok(protocol::format_numbers(&z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::toy_bundle;
    use pfr_core::persistence;

    fn start_with_model() -> (Server, String, pfr_linalg::Matrix) {
        let (bundle, x) = toy_bundle();
        let server = Server::spawn(ServerConfig::default()).unwrap();
        let text = persistence::bundle_to_string(&bundle);
        server.registry().load_from_str("risk", &text).unwrap();
        (server, text, x)
    }

    fn request(addr: SocketAddr, lines: &[String]) -> Vec<String> {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut out = Vec::new();
        for line in lines {
            writeln!(writer, "{line}").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            out.push(response.trim_end().to_string());
        }
        out
    }

    #[test]
    fn score_over_tcp_matches_offline_inference_bitwise() {
        let (server, _, x) = start_with_model();
        let model = server.registry().get("risk").unwrap();
        let expected = model.score_batch(&x).unwrap();
        let lines: Vec<String> = (0..x.rows())
            .map(|i| format!("SCORE risk {}", protocol::format_numbers(x.row(i))))
            .collect();
        let responses = request(server.addr(), &lines);
        for (i, response) in responses.iter().enumerate() {
            let mut parts = response.split_whitespace();
            assert_eq!(parts.next(), Some("OK"), "response {response}");
            let score: f64 = parts.next().unwrap().parse().unwrap();
            assert_eq!(score.to_bits(), expected[i].to_bits(), "row {i}");
            let label: u8 = parts.next().unwrap().parse().unwrap();
            assert_eq!(label, u8::from(expected[i] >= model.threshold()));
        }
        server.shutdown();
    }

    #[test]
    fn repeated_scores_hit_the_cache() {
        let (server, _, x) = start_with_model();
        let line = format!("SCORE risk {}", protocol::format_numbers(x.row(0)));
        let responses = request(server.addr(), &[line.clone(), line.clone(), line]);
        assert_eq!(responses[0], responses[1]);
        assert_eq!(responses[1], responses[2]);
        assert!(server.stats().cache_hits() >= 2);
        assert_eq!(server.stats().cache_misses(), 1);
        server.shutdown();
    }

    #[test]
    fn load_verb_loads_from_disk_and_reports_the_version() {
        let (bundle, _) = toy_bundle();
        let dir = std::env::temp_dir();
        let path = dir.join("pfr_serve_load_test.bundle");
        persistence::save_bundle(&bundle, &path).unwrap();
        let server = Server::spawn(ServerConfig::default()).unwrap();
        let responses = request(server.addr(), &[format!("LOAD risk {}", path.display())]);
        assert!(
            responses[0].starts_with("OK loaded risk@"),
            "{}",
            responses[0]
        );
        assert!(responses[0].contains("features=3"));
        assert!(responses[0].contains("dim=2"));
        assert!(server.registry().get("risk").is_some());
        let _ = std::fs::remove_file(&path);
        server.shutdown();
    }

    /// Writes a `PUSH` frame (header + counted payload) and reads the one
    /// response line.
    fn push_request(addr: SocketAddr, name: &str, text: &str) -> String {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write!(writer, "PUSH {name} {}\n{text}", text.len()).unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    }

    #[test]
    fn push_loads_a_bundle_over_the_wire_on_both_front_ends() {
        let (bundle, x) = toy_bundle();
        let text = persistence::bundle_to_string(&bundle);
        for frontend in [
            Frontend::Threaded,
            Frontend::reactor(1),
            Frontend::reactor(4),
        ] {
            let server = Server::spawn(ServerConfig {
                frontend,
                // A bundle_dir that PUSH must ignore: no path is read.
                bundle_dir: Some(std::path::PathBuf::from("/definitely/not/there")),
                ..ServerConfig::default()
            })
            .unwrap();
            let response = push_request(server.addr(), "risk", &text);
            assert!(
                response.starts_with("OK loaded risk@"),
                "{frontend:?}: {response}"
            );
            assert!(response.contains("features=3"), "{response}");
            // The pushed model serves scores identical to in-process loading.
            let model = server.registry().get("risk").unwrap();
            let expected = model.score_batch(&x).unwrap();
            let line = format!("SCORE risk {}", protocol::format_numbers(x.row(0)));
            let responses = request(server.addr(), &[line]);
            let score: f64 = responses[0]
                .split_whitespace()
                .nth(1)
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(score.to_bits(), expected[0].to_bits(), "{frontend:?}");
            // Garbage payloads are rejected without killing the connection's
            // framing: the next request on a fresh connection still works.
            let bad = push_request(server.addr(), "junk", "not a bundle at all\n");
            assert!(bad.starts_with("ERR"), "{bad}");
            assert!(server.registry().get("junk").is_none());
            server.shutdown();
        }
    }

    #[test]
    fn push_then_more_requests_on_the_same_connection_stay_framed() {
        let (bundle, x) = toy_bundle();
        let text = persistence::bundle_to_string(&bundle);
        for frontend in [
            Frontend::Threaded,
            Frontend::reactor(1),
            Frontend::reactor(4),
        ] {
            let server = Server::spawn(ServerConfig {
                frontend,
                ..ServerConfig::default()
            })
            .unwrap();
            // Pre-load so the pipelined PUSH below is a hot swap: the
            // reactor executes PUSH asynchronously (like LOAD), so a
            // same-burst SCORE may run before the push lands — it must
            // still resolve a model. What this test pins down is the
            // *framing*: payload bytes followed immediately by more
            // request lines in one write must not desync the parser.
            server.registry().load_from_str("risk", &text).unwrap();
            let stream = TcpStream::connect(server.addr()).unwrap();
            stream.set_nodelay(true).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            // One write: PUSH frame immediately followed by pipelined
            // SCORE/HEALTH lines — payload bytes must not desync framing.
            let mut burst = format!("PUSH risk {}\n{text}", text.len());
            burst.push_str(&format!(
                "SCORE risk {}\nHEALTH\n",
                protocol::format_numbers(x.row(0))
            ));
            writer.write_all(burst.as_bytes()).unwrap();
            writer.flush().unwrap();
            let mut responses = Vec::new();
            for _ in 0..3 {
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                responses.push(response.trim_end().to_string());
            }
            assert!(responses[0].starts_with("OK loaded"), "{responses:?}");
            assert!(responses[1].starts_with("OK "), "{responses:?}");
            assert!(responses[2].starts_with("OK up"), "{responses:?}");
            server.shutdown();
        }
    }

    #[test]
    fn stats_reports_the_live_cache_entry_gauge() {
        let (server, _, x) = start_with_model();
        let line = format!("SCORE risk {}", protocol::format_numbers(x.row(0)));
        let responses = request(server.addr(), &[line, "STATS".to_string()]);
        assert!(responses[1].contains("cache_entries=1"), "{}", responses[1]);
        server.shutdown();
    }

    #[test]
    fn transform_stats_and_errors_speak_the_protocol() {
        let (server, _, x) = start_with_model();
        let responses = request(
            server.addr(),
            &[
                format!("TRANSFORM risk {}", protocol::format_numbers(x.row(0))),
                "STATS".to_string(),
                "SCORE missing 1 2 3".to_string(),
                "SCORE risk 1".to_string(),
                "GIBBERISH".to_string(),
            ],
        );
        // TRANSFORM returns dim() numbers.
        let z: Vec<f64> = responses[0]
            .strip_prefix("OK ")
            .unwrap()
            .split_whitespace()
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(z.len(), 2);
        let model = server.registry().get("risk").unwrap();
        let expected = model
            .transform_batch(&pfr_linalg::Matrix::from_vec(1, 3, x.row(0).to_vec()).unwrap())
            .unwrap();
        for (a, b) in z.iter().zip(expected.row(0)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(responses[1].starts_with("OK "));
        assert!(responses[1].contains("score_requests="));
        assert!(responses[2].starts_with("ERR no model named"));
        assert!(responses[3].starts_with("ERR"), "{}", responses[3]);
        assert!(responses[4].starts_with("ERR") && responses[4].contains("unknown verb"));
        server.shutdown();
    }

    #[test]
    fn load_respects_the_configured_bundle_directory() {
        let (bundle, _) = toy_bundle();
        let dir = std::env::temp_dir().join("pfr_serve_bundle_dir_test");
        std::fs::create_dir_all(&dir).unwrap();
        let inside = dir.join("ok.bundle");
        persistence::save_bundle(&bundle, &inside).unwrap();
        let outside = std::env::temp_dir().join("pfr_serve_outside.bundle");
        persistence::save_bundle(&bundle, &outside).unwrap();

        let server = Server::spawn(ServerConfig {
            bundle_dir: Some(dir.clone()),
            ..ServerConfig::default()
        })
        .unwrap();
        let responses = request(
            server.addr(),
            &[
                format!("LOAD good {}", inside.display()),
                format!("LOAD evil {}", outside.display()),
                format!("LOAD sneaky {}/../pfr_serve_outside.bundle", dir.display()),
                "LOAD ghost /definitely/not/there".to_string(),
            ],
        );
        assert!(
            responses[0].starts_with("OK loaded good@"),
            "{}",
            responses[0]
        );
        assert!(
            responses[1].starts_with("ERR") && responses[1].contains("outside"),
            "{}",
            responses[1]
        );
        assert!(
            responses[2].starts_with("ERR") && responses[2].contains("outside"),
            "{}",
            responses[2]
        );
        // Nonexistent paths are reported without leaking io details.
        assert!(
            responses[3].starts_with("ERR") && responses[3].contains("no bundle at"),
            "{}",
            responses[3]
        );
        assert!(server.registry().get("evil").is_none());
        assert!(server.registry().get("sneaky").is_none());
        server.shutdown();
        let _ = std::fs::remove_file(&inside);
        let _ = std::fs::remove_file(&outside);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn quit_closes_the_connection_politely() {
        let (server, _, _) = start_with_model();
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writeln!(writer, "QUIT").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert_eq!(response.trim_end(), "OK bye");
        // Server closed its end: the next read returns EOF.
        response.clear();
        assert_eq!(reader.read_line(&mut response).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_the_accept_loop() {
        let server = Server::spawn(ServerConfig::default()).unwrap();
        let addr = server.addr();
        server.shutdown();
        // After shutdown the listener is gone; connecting either fails or
        // yields a connection nobody serves.
        if let Ok(stream) = TcpStream::connect(addr) {
            let mut reader = BufReader::new(stream);
            let mut buf = String::new();
            // Either EOF immediately or an error; never a served response.
            let _ = reader.read_line(&mut buf);
            assert!(!buf.starts_with("OK"));
        }
    }

    #[test]
    fn health_and_epoch_speak_the_protocol() {
        let (server, text, _) = start_with_model();
        let responses = request(
            server.addr(),
            &[
                "HEALTH".to_string(),
                "EPOCH risk".to_string(),
                "EPOCH missing".to_string(),
            ],
        );
        assert!(
            responses[0].starts_with("OK up models=1 swaps=0 queue="),
            "{}",
            responses[0]
        );
        let model = server.registry().get("risk").unwrap();
        assert_eq!(
            responses[1],
            format!(
                "OK risk generation={} digest={}",
                model.generation(),
                pfr_core::persistence::digest_hex(model.digest())
            )
        );
        assert!(
            responses[2].starts_with("ERR no model named"),
            "{}",
            responses[2]
        );
        // A hot swap changes the generation but not the digest (same
        // content), and HEALTH reports the swap.
        server.registry().load_from_str("risk", &text).unwrap();
        let swapped = server.registry().get("risk").unwrap();
        assert_ne!(swapped.generation(), model.generation());
        assert_eq!(swapped.digest(), model.digest());
        let responses = request(server.addr(), &["HEALTH".to_string()]);
        assert!(responses[0].contains("swaps=1"), "{}", responses[0]);
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_established_connections_and_joins_their_threads() {
        let (server, _, _) = start_with_model();
        // Park two idle connections in read_line.
        let idle: Vec<TcpStream> = (0..2)
            .map(|_| TcpStream::connect(server.addr()).unwrap())
            .collect();
        // Give the accept loop time to register both.
        std::thread::sleep(std::time::Duration::from_millis(50));
        server.shutdown();
        // shutdown() returned, which means it joined the connection threads
        // — only possible because it closed their sockets. The clients see
        // EOF rather than a hang.
        for stream in idle {
            let mut reader = BufReader::new(stream);
            let mut buf = String::new();
            let n = reader.read_line(&mut buf).unwrap_or(0);
            assert_eq!(n, 0, "expected EOF after shutdown, got '{buf}'");
        }
    }

    #[test]
    fn threaded_and_reactor_front_ends_serve_bitwise_identically() {
        let (bundle, x) = toy_bundle();
        let text = persistence::bundle_to_string(&bundle);
        let mut responses = Vec::new();
        for frontend in [
            Frontend::Threaded,
            Frontend::reactor(1),
            Frontend::reactor(4),
        ] {
            let server = Server::spawn(ServerConfig {
                frontend,
                ..ServerConfig::default()
            })
            .unwrap();
            server.registry().load_from_str("risk", &text).unwrap();
            let lines: Vec<String> = (0..x.rows())
                .map(|i| format!("SCORE risk {}", protocol::format_numbers(x.row(i))))
                .collect();
            responses.push(request(server.addr(), &lines));
            server.shutdown();
        }
        assert_eq!(
            responses[0], responses[1],
            "the two front ends must be byte-for-byte interchangeable"
        );
    }

    #[test]
    fn warm_from_log_preloads_the_cache_for_first_requests() {
        let (server, _, x) = start_with_model();
        let log_path =
            std::env::temp_dir().join(format!("pfr_serve_warm_log_{}.log", std::process::id()));
        let mut log = String::new();
        for i in 0..x.rows() {
            log.push_str(&format!(
                "SCORE risk {}\n",
                protocol::format_numbers(x.row(i))
            ));
        }
        log.push_str("SCORE ghost 1 2 3\n"); // unloaded model: skipped
        std::fs::write(&log_path, log).unwrap();
        let (replayed, skipped) = server.warm_from_log(&log_path).unwrap();
        assert_eq!(replayed, x.rows());
        assert_eq!(skipped, 1, "the ghost-model line is skipped");
        // Every first real request of a logged vector hits the cache.
        let lines: Vec<String> = (0..x.rows())
            .map(|i| format!("SCORE risk {}", protocol::format_numbers(x.row(i))))
            .collect();
        let responses = request(server.addr(), &lines);
        let model = server.registry().get("risk").unwrap();
        let expected = model.score_batch(&x).unwrap();
        for (i, response) in responses.iter().enumerate() {
            let score: f64 = response.split_whitespace().nth(1).unwrap().parse().unwrap();
            assert_eq!(score.to_bits(), expected[i].to_bits(), "row {i}");
        }
        assert_eq!(server.stats().cache_misses(), 0, "warmed requests must hit");
        assert_eq!(server.stats().cache_hits(), x.rows() as u64);
        let _ = std::fs::remove_file(&log_path);
        server.shutdown();
    }

    /// Writes a `SYNC` frame (header + counted catalog payload) and reads
    /// the one response line.
    fn sync_request(addr: SocketAddr, text: &str) -> String {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write!(writer, "SYNC {}\n{text}", text.len()).unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    }

    #[test]
    fn catalog_and_sync_replicate_the_control_plane_on_both_front_ends() {
        let (bundle, _) = toy_bundle();
        let text = persistence::bundle_to_string(&bundle);
        let mut catalog = pfr_control::Catalog::new(9);
        catalog.add_member(9, 0, "127.0.0.1:9000".to_string());
        catalog.upsert_placement(9, "risk", &text).unwrap();
        let mut transcripts = Vec::new();
        for frontend in [
            Frontend::Threaded,
            Frontend::reactor(1),
            Frontend::reactor(4),
        ] {
            let server = Server::spawn(ServerConfig {
                frontend,
                ..ServerConfig::default()
            })
            .unwrap();
            // A fresh backend stores nothing.
            let mut responses = request(
                server.addr(),
                &["CATALOG".to_string(), "CATALOG FULL".to_string()],
            );
            assert_eq!(responses[0], "OK none", "{frontend:?}");
            assert_eq!(responses[1], "OK none", "{frontend:?}");
            assert!(server.catalog_version().is_none());
            // Offer the catalog: applied, and the response reports the
            // post-merge holder state.
            responses.push(sync_request(server.addr(), &catalog.to_text()));
            assert_eq!(
                responses[2],
                format!("OK {} applied=1", catalog.version().summary()),
                "{frontend:?}"
            );
            assert_eq!(server.catalog_version(), Some(catalog.version()));
            // The digest probe and the full pull reflect the stored value;
            // the pulled text round-trips to an identical catalog.
            responses.extend(request(
                server.addr(),
                &["CATALOG".to_string(), "CATALOG FULL".to_string()],
            ));
            assert_eq!(
                responses[3],
                format!("OK {}", catalog.version().summary()),
                "{frontend:?}"
            );
            let pulled = responses[4].strip_prefix("OK ").unwrap();
            let adopted = pfr_control::Catalog::from_text(&pfr_control::unescape(pulled)).unwrap();
            assert_eq!(adopted, catalog);
            // A stale offer is refused (applied=0) and the store keeps the
            // newer value; garbage payloads are rejected outright.
            let stale = pfr_control::Catalog::new(3);
            responses.push(sync_request(server.addr(), &stale.to_text()));
            assert_eq!(
                responses[5],
                format!("OK {} applied=0", catalog.version().summary()),
                "{frontend:?}"
            );
            responses.push(sync_request(server.addr(), "not a catalog\n"));
            assert!(responses[6].starts_with("ERR"), "{}", responses[6]);
            assert_eq!(server.catalog_version(), Some(catalog.version()));
            assert_eq!(server.stats().catalog.requests(), 7, "{frontend:?}");
            assert_eq!(server.stats().catalog.errors(), 1, "{frontend:?}");
            transcripts.push(responses);
            server.shutdown();
        }
        assert_eq!(
            transcripts[0], transcripts[1],
            "the front ends must replicate the catalog byte-for-byte identically"
        );
        assert_eq!(transcripts[1], transcripts[2]);
    }

    #[test]
    fn hot_swap_over_the_wire_keeps_serving() {
        let (server, text, x) = start_with_model();
        let before = server.registry().get("risk").unwrap().generation();
        server.registry().load_from_str("risk", &text).unwrap();
        let after = server.registry().get("risk").unwrap().generation();
        assert_ne!(before, after);
        let line = format!("SCORE risk {}", protocol::format_numbers(x.row(0)));
        let responses = request(server.addr(), &[line]);
        assert!(responses[0].starts_with("OK "));
        server.shutdown();
    }
}
