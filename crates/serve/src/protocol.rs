//! The line-delimited text protocol spoken over TCP.
//!
//! One request per line, one response line per request:
//!
//! ```text
//! LOAD <name> <path>            -> OK loaded <name>@<gen> features=<m> dim=<d>
//! PUSH <name> <nbytes>          -> OK loaded <name>@<gen> features=<m> dim=<d>
//!   (the header line is followed by exactly <nbytes> bytes of bundle
//!    text — newlines inside the payload are data, not framing)
//! SCORE <name> v1 v2 ... vm     -> OK <probability> <hard-label>
//! TRANSFORM <name> v1 ... vm    -> OK z1 z2 ... zd
//! STATS                         -> OK key=value key=value ...
//! HEALTH                        -> OK up models=<n> swaps=<s> queue=<q>
//! EPOCH <name>                  -> OK <name> generation=<g> digest=<hex>
//! METRICS                       -> OK <escaped Prometheus-style text>
//! TRACE <id>                    -> OK <escaped span-tree text>
//! CATALOG                       -> OK epoch=<e> writer=<w> digest=<hex>
//!                                  (or OK none when no catalog is held)
//! CATALOG FULL                  -> OK <escaped catalog text> (or OK none)
//! SYNC <nbytes>                 -> OK epoch=<e> writer=<w> digest=<hex> applied=<0|1>
//!   (like PUSH, the header is followed by exactly <nbytes> bytes of
//!    catalog text; the server merges it by version order)
//! QUIT                          -> OK bye (server closes the connection)
//! anything else                 -> ERR <message>
//! ```
//!
//! `SCORE`, `TRANSFORM` and `PUSH` accept an optional trailing `T=<16-hex>`
//! trace token ([`pfr_obs::wire`]): the request joins that trace, its span
//! is recorded server-side, and the token is echoed as the trailing token
//! of the response line. Requests without a token get byte-identical
//! responses to the pre-tracing protocol — tracing is strictly additive.
//!
//! `METRICS` and `TRACE` payloads are logically multi-line text but travel
//! escaped onto one line (`pfr_obs::wire::escape_multiline`), keeping the
//! one-response-line-per-request framing every tier pipelines on.
//!
//! `PUSH` is `LOAD` without the shared-filesystem assumption: the client
//! (typically the routing tier placing a replica) ships the serialized
//! [`ModelBundle`](pfr_core::persistence::ModelBundle) text over the wire
//! as a counted payload instead of naming a path the server must be able
//! to read. `PUSH` requests are counted under the `load` stats verb.
//!
//! `CATALOG` and `SYNC` make every backend a **replication point for the
//! router tier's placement catalog** (`pfr-control`): a router publishes
//! its catalog with `SYNC` (a counted payload, merged here by the
//! catalog's `(epoch, writer, digest)` total order), polls peers'
//! versions digest-first with `CATALOG`, and fetches the full text with
//! `CATALOG FULL` only when the summary differs. Backends never interpret
//! the roster or placements — they store, order and serve the value, so a
//! restarted router can bootstrap its whole control-plane state from any
//! backend it can reach.
//!
//! `HEALTH` and `EPOCH` exist for the routing tier (`pfr-router`): `HEALTH`
//! is the liveness probe its circuit breakers feed on (`queue=` is the
//! number of requests currently in flight, a cheap load signal), and
//! `EPOCH`'s digest lets the router verify that every replica of a shard
//! serves bit-identical model content before treating their scores as
//! interchangeable — process-local generation counters cannot be compared
//! across backends.
//!
//! Numbers are rendered with Rust's shortest-round-trip `{}` formatting, so
//! an `f64` survives the text protocol bit-exactly — the end-to-end tests
//! rely on scores being *bitwise* equal to offline inference.

use crate::error::ServeError;
use crate::Result;

/// Prefix of the `ERR` message a server sends when the requested model is
/// not in its registry. This is a **wire contract**: the routing tier
/// distinguishes "this backend is not a replica of that model" (keep
/// walking the ring) from every other `ERR` (deterministic request
/// failure, do not fail over) by exactly this prefix.
pub const MODEL_NOT_FOUND_PREFIX: &str = "no model named";

/// The single line a server writes before closing a connection it **shed**
/// at accept time (connection limit reached). Like
/// [`MODEL_NOT_FOUND_PREFIX`] this is a **wire contract**: the routing tier
/// treats a `BUSY` response as "this replica is overloaded, walk on to the
/// next one" rather than a request failure — shedding degrades capacity,
/// never correctness.
pub const BUSY: &str = "BUSY";

/// Largest accepted `PUSH` payload. Bundle text for realistic models runs
/// kilobytes to low megabytes; the cap keeps a malicious header line from
/// committing the server to buffering gigabytes.
pub const MAX_PUSH_BYTES: usize = 64 << 20;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Load (or hot-swap) the bundle file at `path` under `name`.
    Load {
        /// Registry name to serve the model under.
        name: String,
        /// Filesystem path of the serialized bundle.
        path: String,
    },
    /// Load (or hot-swap) a bundle whose text follows the header line as a
    /// counted payload of `nbytes` bytes — wire-level model distribution
    /// with no shared filesystem.
    Push {
        /// Registry name to serve the model under.
        name: String,
        /// Exact payload length announced by the header line.
        nbytes: usize,
        /// Trace id from an optional trailing `T=<hex>` token.
        trace: Option<u64>,
    },
    /// Score one raw attribute vector with the named model.
    Score {
        /// Registry name of the model.
        name: String,
        /// The raw attribute vector.
        features: Vec<f64>,
        /// Trace id from an optional trailing `T=<hex>` token.
        trace: Option<u64>,
    },
    /// Embed one raw attribute vector with the named model.
    Transform {
        /// Registry name of the model.
        name: String,
        /// The raw attribute vector.
        features: Vec<f64>,
        /// Trace id from an optional trailing `T=<hex>` token.
        trace: Option<u64>,
    },
    /// Report serving statistics.
    Stats,
    /// Liveness probe: model count, hot-swap count and in-flight queue depth.
    Health,
    /// Report the named model's generation and content digest.
    Epoch {
        /// Registry name of the model.
        name: String,
    },
    /// Report the full metrics exposition (escaped multi-line payload).
    Metrics,
    /// Report the recorded span tree for a sampled trace id.
    Trace {
        /// The trace id to look up.
        id: u64,
    },
    /// Report the held placement catalog: its version summary, or with
    /// `full` the entire escaped catalog text.
    Catalog {
        /// Whether the full catalog text was requested (`CATALOG FULL`).
        full: bool,
    },
    /// Merge a pushed placement catalog (counted payload of `nbytes`
    /// bytes follows the header line) by version order.
    Sync {
        /// Exact payload length announced by the header line.
        nbytes: usize,
    },
    /// Close the connection.
    Quit,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request> {
    let mut parts = Vec::new();
    let mut words = line.split_whitespace();
    let verb = words
        .next()
        .ok_or_else(|| ServeError::Protocol("empty request line".to_string()))?
        .to_ascii_uppercase();
    parts.extend(words);
    // An optional trailing trace token joins the request to an existing
    // trace on SCORE / TRANSFORM / PUSH; it is framing, not an argument.
    let mut trace = None;
    if matches!(verb.as_str(), "SCORE" | "TRANSFORM" | "PUSH") {
        if let Some(last) = parts.last() {
            if let Some(id) = pfr_obs::parse_trace_token(last) {
                trace = Some(id);
                parts.pop();
            }
        }
    }
    match verb.as_str() {
        "LOAD" => {
            if parts.len() != 2 {
                return Err(ServeError::Protocol(
                    "usage: LOAD <name> <path>".to_string(),
                ));
            }
            Ok(Request::Load {
                name: parts[0].to_string(),
                path: parts[1].to_string(),
            })
        }
        "PUSH" => {
            if parts.len() != 2 {
                return Err(ServeError::Protocol(
                    "usage: PUSH <name> <nbytes>".to_string(),
                ));
            }
            let nbytes = parts[1].parse::<usize>().map_err(|_| {
                ServeError::Protocol(format!("'{}' is not a payload length", parts[1]))
            })?;
            if nbytes == 0 || nbytes > MAX_PUSH_BYTES {
                return Err(ServeError::Protocol(format!(
                    "payload length {nbytes} is outside 1..={MAX_PUSH_BYTES}"
                )));
            }
            Ok(Request::Push {
                name: parts[0].to_string(),
                nbytes,
                trace,
            })
        }
        "SCORE" | "TRANSFORM" => {
            if parts.len() < 2 {
                return Err(ServeError::Protocol(format!(
                    "usage: {verb} <name> <v1> ... <vm>"
                )));
            }
            let name = parts[0].to_string();
            let features = parts[1..]
                .iter()
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|_| ServeError::Protocol(format!("'{v}' is not a number")))
                })
                .collect::<Result<Vec<f64>>>()?;
            if verb == "SCORE" {
                Ok(Request::Score {
                    name,
                    features,
                    trace,
                })
            } else {
                Ok(Request::Transform {
                    name,
                    features,
                    trace,
                })
            }
        }
        "STATS" => {
            if !parts.is_empty() {
                return Err(ServeError::Protocol("STATS takes no arguments".to_string()));
            }
            Ok(Request::Stats)
        }
        "HEALTH" => {
            if !parts.is_empty() {
                return Err(ServeError::Protocol(
                    "HEALTH takes no arguments".to_string(),
                ));
            }
            Ok(Request::Health)
        }
        "EPOCH" => {
            if parts.len() != 1 {
                return Err(ServeError::Protocol("usage: EPOCH <name>".to_string()));
            }
            Ok(Request::Epoch {
                name: parts[0].to_string(),
            })
        }
        "METRICS" => {
            if !parts.is_empty() {
                return Err(ServeError::Protocol(
                    "METRICS takes no arguments".to_string(),
                ));
            }
            Ok(Request::Metrics)
        }
        "TRACE" => {
            if parts.len() != 1 {
                return Err(ServeError::Protocol("usage: TRACE <hex-id>".to_string()));
            }
            let id = u64::from_str_radix(parts[0], 16)
                .ok()
                .filter(|&id| id != 0)
                .ok_or_else(|| ServeError::Protocol(format!("'{}' is not a trace id", parts[0])))?;
            Ok(Request::Trace { id })
        }
        "CATALOG" => match parts.as_slice() {
            [] => Ok(Request::Catalog { full: false }),
            [arg] if arg.eq_ignore_ascii_case("FULL") => Ok(Request::Catalog { full: true }),
            _ => Err(ServeError::Protocol("usage: CATALOG [FULL]".to_string())),
        },
        "SYNC" => {
            if parts.len() != 1 {
                return Err(ServeError::Protocol("usage: SYNC <nbytes>".to_string()));
            }
            let nbytes = parts[0].parse::<usize>().map_err(|_| {
                ServeError::Protocol(format!("'{}' is not a payload length", parts[0]))
            })?;
            if nbytes == 0 || nbytes > MAX_PUSH_BYTES {
                return Err(ServeError::Protocol(format!(
                    "payload length {nbytes} is outside 1..={MAX_PUSH_BYTES}"
                )));
            }
            Ok(Request::Sync { nbytes })
        }
        "QUIT" => Ok(Request::Quit),
        other => Err(ServeError::Protocol(format!("unknown verb '{other}'"))),
    }
}

/// Renders a successful response payload.
pub fn ok_response(payload: &str) -> String {
    if payload.is_empty() {
        "OK".to_string()
    } else {
        format!("OK {payload}")
    }
}

/// Renders an error response.
pub fn err_response(err: &ServeError) -> String {
    // Keep responses single-line whatever the error contains.
    let msg = err.to_string().replace('\n', " ");
    format!("ERR {msg}")
}

/// Renders a vector of numbers with shortest-round-trip formatting.
pub fn format_numbers(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse_request("LOAD risk /tmp/m.bundle").unwrap(),
            Request::Load {
                name: "risk".to_string(),
                path: "/tmp/m.bundle".to_string()
            }
        );
        assert_eq!(
            parse_request("PUSH risk 4096").unwrap(),
            Request::Push {
                name: "risk".to_string(),
                nbytes: 4096,
                trace: None
            }
        );
        assert_eq!(
            parse_request("SCORE risk 1 -2.5 3e-4").unwrap(),
            Request::Score {
                name: "risk".to_string(),
                features: vec![1.0, -2.5, 3e-4],
                trace: None
            }
        );
        assert_eq!(
            parse_request("TRANSFORM risk 0.5").unwrap(),
            Request::Transform {
                name: "risk".to_string(),
                features: vec![0.5],
                trace: None
            }
        );
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("HEALTH").unwrap(), Request::Health);
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(
            parse_request("TRACE 00000000000000ff").unwrap(),
            Request::Trace { id: 0xff }
        );
        assert_eq!(
            parse_request("EPOCH risk").unwrap(),
            Request::Epoch {
                name: "risk".to_string()
            }
        );
        assert_eq!(
            parse_request("CATALOG").unwrap(),
            Request::Catalog { full: false }
        );
        assert_eq!(
            parse_request("CATALOG FULL").unwrap(),
            Request::Catalog { full: true }
        );
        assert_eq!(
            parse_request("SYNC 128").unwrap(),
            Request::Sync { nbytes: 128 }
        );
        assert_eq!(parse_request("QUIT").unwrap(), Request::Quit);
        // Verbs are case-insensitive, arguments are not.
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("health").unwrap(), Request::Health);
        assert_eq!(
            parse_request("catalog full").unwrap(),
            Request::Catalog { full: true }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "   ",
            "LOAD",
            "LOAD onlyname",
            "LOAD a b c",
            "PUSH",
            "PUSH onlyname",
            "PUSH a b c",
            "PUSH a notanumber",
            "PUSH a -1",
            "PUSH a 0",
            "PUSH a 99999999999999999999",
            "SCORE",
            "SCORE risk",
            "SCORE risk notanumber",
            "STATS extra",
            "HEALTH now",
            "EPOCH",
            "EPOCH a b",
            "METRICS now",
            "TRACE",
            "TRACE nothex",
            "TRACE 0",
            "TRACE a b",
            "CATALOG extra words",
            "CATALOG PARTIAL",
            "SYNC",
            "SYNC notanumber",
            "SYNC 0",
            "SYNC -1",
            "SYNC 1 2",
            "FROB risk 1 2",
        ] {
            assert!(parse_request(bad).is_err(), "'{bad}' should be rejected");
        }
    }

    #[test]
    fn trailing_trace_tokens_are_extracted_not_parsed_as_features() {
        assert_eq!(
            parse_request("SCORE risk 1 2 T=00000000000000aa").unwrap(),
            Request::Score {
                name: "risk".to_string(),
                features: vec![1.0, 2.0],
                trace: Some(0xaa)
            }
        );
        assert_eq!(
            parse_request("PUSH risk 16 T=00000000000000aa").unwrap(),
            Request::Push {
                name: "risk".to_string(),
                nbytes: 16,
                trace: Some(0xaa)
            }
        );
        // A malformed token is not silently dropped — it fails the f64
        // parse exactly as any junk argument does.
        assert!(parse_request("SCORE risk 1 T=nothex").is_err());
        // A token anywhere but last is an argument, so it is rejected too.
        assert!(parse_request("SCORE risk T=00000000000000aa 1").is_err());
    }

    #[test]
    fn float_round_trip_through_the_wire_format_is_bit_exact() {
        let values = [
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            -1e308,
            6.02214076e23,
        ];
        let line = format_numbers(&values);
        let parsed = match parse_request(&format!("SCORE m {line}")).unwrap() {
            Request::Score { features, .. } => features,
            _ => unreachable!(),
        };
        for (a, b) in values.iter().zip(parsed.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn responses_are_single_line() {
        assert_eq!(ok_response(""), "OK");
        assert_eq!(ok_response("0.5 1"), "OK 0.5 1");
        let err = ServeError::Model("multi\nline".to_string());
        assert!(!err_response(&err).contains('\n'));
        assert!(err_response(&err).starts_with("ERR "));
    }
}
