//! Error type shared by the serving subsystem.

use std::fmt;

/// Errors produced by the serving subsystem.
#[derive(Debug)]
pub enum ServeError {
    /// A model could not be loaded, parsed or applied.
    Model(String),
    /// A socket or file operation failed.
    Io(std::io::Error),
    /// A protocol line could not be parsed.
    Protocol(String),
    /// The requested model name is not in the registry.
    ModelNotFound(String),
    /// The worker pool or batcher has shut down and can take no more work.
    Shutdown,
    /// The write-ahead journal rejected or could not durably record a
    /// request — the request fails rather than silently losing its frame.
    Journal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Model(msg) => write!(f, "model error: {msg}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::ModelNotFound(name) => write!(
                f,
                "{} '{name}' is loaded",
                crate::protocol::MODEL_NOT_FOUND_PREFIX
            ),
            ServeError::Shutdown => write!(f, "serving subsystem is shut down"),
            ServeError::Journal(msg) => write!(f, "journal error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl ServeError {
    /// Wraps any displayable error as a model error.
    pub fn model(e: impl fmt::Display) -> Self {
        ServeError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_every_variant() {
        let io: ServeError = std::io::Error::other("boom").into();
        for (err, needle) in [
            (ServeError::Model("bad".into()), "model error"),
            (io, "boom"),
            (ServeError::Protocol("eh".into()), "protocol error"),
            (ServeError::ModelNotFound("m".into()), "no model named"),
            (ServeError::Shutdown, "shut down"),
            (ServeError::Journal("disk full".into()), "journal error"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn io_errors_expose_a_source() {
        use std::error::Error;
        let err: ServeError = std::io::Error::other("x").into();
        assert!(err.source().is_some());
        assert!(ServeError::Shutdown.source().is_none());
    }
}
