//! A loaded, immutable, ready-to-score model: the serving-side counterpart
//! of a persisted [`ModelBundle`].
//!
//! A [`ServableModel`] owns the standardizer statistics, the PFR projection
//! and the downstream classifier, and exposes *batch* entry points only: a
//! batch of `B` raw attribute vectors goes through standardization, the
//! `B x m · m x d` projection and the classifier as three dense passes. The
//! projection runs on `pfr_linalg`'s blocked multi-threaded GEMM kernel
//! (`pfr_linalg::gemm`), whose row results are bitwise independent of the
//! batch height and of the worker thread count — which is why batching can
//! be bit-exact at all. The micro-batcher (`crate::batcher`) exists to feed
//! this interface.

use crate::error::ServeError;
use crate::Result;
use pfr_core::persistence::ModelBundle;
use pfr_core::PfrModel;
use pfr_linalg::stats::Standardizer;
use pfr_linalg::Matrix;
use pfr_opt::LogisticRegression;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global source of unique model generation numbers. Score-cache keys embed
/// the generation, so hot-swapping a model under the same name implicitly
/// invalidates every cached score of the old generation.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// An immutable, fully materialized model ready to score attribute vectors.
#[derive(Debug)]
pub struct ServableModel {
    version: String,
    generation: u64,
    digest: u64,
    standardizer: Option<Standardizer>,
    model: PfrModel,
    classifier: Option<LogisticRegression>,
    threshold: f64,
}

impl ServableModel {
    /// Materializes a persisted bundle under a human-readable version label.
    ///
    /// The standardizer and classifier sections are optional in the bundle
    /// format; scoring requires the classifier, transforming does not.
    pub fn from_bundle(version: impl Into<String>, bundle: &ModelBundle) -> Result<Self> {
        let standardizer = match &bundle.standardizer {
            Some(s) => Some(
                Standardizer::from_parts(s.means.clone(), s.stds.clone())
                    .map_err(ServeError::model)?,
            ),
            None => None,
        };
        let (classifier, threshold) = match &bundle.classifier {
            Some(c) => (
                Some(LogisticRegression::from_text(&c.text).map_err(ServeError::model)?),
                c.threshold,
            ),
            None => (None, 0.5),
        };
        if let Some(clf) = &classifier {
            let clf_features = clf
                .weights()
                .expect("from_text always produces a fitted classifier")
                .len();
            if clf_features != bundle.model.dim() {
                return Err(ServeError::Model(format!(
                    "classifier expects {clf_features} features but the projection produces {}",
                    bundle.model.dim()
                )));
            }
        }
        Ok(ServableModel {
            version: version.into(),
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
            digest: pfr_core::persistence::bundle_digest(bundle),
            standardizer,
            model: bundle.model.clone(),
            classifier,
            threshold,
        })
    }

    /// The version label this model was registered under.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Rewrites the version label (used by the registry, which only knows
    /// the final `name@generation` label after construction).
    pub(crate) fn set_version(&mut self, version: String) {
        self.version = version;
    }

    /// The process-unique generation number (cache-key component).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The content digest of the bundle this model was materialized from
    /// ([`pfr_core::persistence::bundle_digest`]). Unlike the generation,
    /// the digest is comparable *across* processes: two backends serving
    /// bit-identical model content report the same digest, which is how a
    /// routing tier verifies replica consistency.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Number of raw input features a request vector must carry.
    pub fn num_features(&self) -> usize {
        self.model.num_features()
    }

    /// Dimensionality of the fair representation.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// The decision threshold shipped with the bundle.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether this model can produce scores (has a classifier).
    pub fn can_score(&self) -> bool {
        self.classifier.is_some()
    }

    /// Embeds a batch of raw attribute vectors (one per row) into the fair
    /// representation: standardize, then project in one dense pass.
    pub fn transform_batch(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.num_features() {
            return Err(ServeError::Model(format!(
                "request vectors have {} features but the model expects {}",
                x.cols(),
                self.num_features()
            )));
        }
        let standardized;
        let input = match &self.standardizer {
            Some(s) => {
                standardized = s.transform(x).map_err(ServeError::model)?;
                &standardized
            }
            None => x,
        };
        self.model.transform(input).map_err(ServeError::model)
    }

    /// Scores a batch of raw attribute vectors: probability of the positive
    /// class per row, via one standardize + project + classify pass.
    pub fn score_batch(&self, x: &Matrix) -> Result<Vec<f64>> {
        let classifier = self.classifier.as_ref().ok_or_else(|| {
            ServeError::Model(format!(
                "model '{}' carries no classifier and cannot score",
                self.version
            ))
        })?;
        let z = self.transform_batch(x)?;
        classifier.predict_proba(&z).map_err(ServeError::model)
    }

    /// Scores a single raw attribute vector.
    pub fn score_one(&self, features: &[f64]) -> Result<f64> {
        let x =
            Matrix::from_vec(1, features.len(), features.to_vec()).map_err(ServeError::model)?;
        Ok(self.score_batch(&x)?[0])
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use pfr_core::persistence::{ClassifierSection, StandardizerParams};
    use pfr_core::{Pfr, PfrConfig};
    use pfr_graph::{KnnGraphBuilder, SparseGraph};

    pub(crate) fn toy_bundle() -> (ModelBundle, Matrix) {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.1, 1.0],
            vec![0.5, 0.4, 0.0],
            vec![1.0, 0.9, 1.0],
            vec![5.0, 5.1, 0.0],
            vec![5.5, 5.4, 1.0],
            vec![6.0, 5.9, 0.0],
        ])
        .unwrap();
        let wx = KnnGraphBuilder::new(2).build(&x).unwrap();
        let mut wf = SparseGraph::new(6);
        wf.add_edge(0, 3, 1.0).unwrap();
        wf.add_edge(2, 5, 1.0).unwrap();
        let model = Pfr::new(PfrConfig {
            gamma: 0.6,
            dim: 2,
            ..PfrConfig::default()
        })
        .fit(&x, &wx, &wf)
        .unwrap();
        let bundle = ModelBundle {
            model,
            standardizer: Some(StandardizerParams {
                means: vec![3.0, 3.0, 0.5],
                stds: vec![2.5, 2.5, 0.5],
            }),
            classifier: Some(ClassifierSection {
                threshold: 0.5,
                text: "pfr-logreg-v1 intercept=0.25 features=2\nweights 1.5 -0.75\n".to_string(),
            }),
        };
        (bundle, x)
    }

    #[test]
    fn batch_scores_match_single_vector_scores_bitwise() {
        let (bundle, x) = toy_bundle();
        let model = ServableModel::from_bundle("toy@1", &bundle).unwrap();
        let batch = model.score_batch(&x).unwrap();
        for (i, batched) in batch.iter().enumerate() {
            let single = model.score_one(x.row(i)).unwrap();
            assert_eq!(single.to_bits(), batched.to_bits(), "row {i}");
        }
    }

    #[test]
    fn transform_batch_matches_offline_standardize_then_project() {
        let (bundle, x) = toy_bundle();
        let servable = ServableModel::from_bundle("toy@1", &bundle).unwrap();
        let z = servable.transform_batch(&x).unwrap();
        let std = bundle.standardizer.as_ref().unwrap();
        let offline_standardizer =
            Standardizer::from_parts(std.means.clone(), std.stds.clone()).unwrap();
        let expected = bundle
            .model
            .transform(&offline_standardizer.transform(&x).unwrap())
            .unwrap();
        assert!(z.sub(&expected).unwrap().max_abs() == 0.0);
        assert_eq!(z.shape(), (x.rows(), servable.dim()));
    }

    #[test]
    fn rejects_wrong_feature_count_and_missing_classifier() {
        let (mut bundle, _) = toy_bundle();
        let model = ServableModel::from_bundle("toy@1", &bundle).unwrap();
        assert!(model.score_one(&[1.0, 2.0]).is_err());
        bundle.classifier = None;
        let projector = ServableModel::from_bundle("toy@2", &bundle).unwrap();
        assert!(!projector.can_score());
        assert!(projector.score_one(&[1.0, 2.0, 3.0]).is_err());
        assert!(projector.transform_batch(&Matrix::zeros(2, 3)).is_ok());
    }

    #[test]
    fn rejects_classifier_projection_dimension_mismatch() {
        let (mut bundle, _) = toy_bundle();
        bundle.classifier = Some(ClassifierSection {
            threshold: 0.5,
            text: "pfr-logreg-v1 intercept=0 features=3\nweights 1 2 3\n".to_string(),
        });
        assert!(ServableModel::from_bundle("toy@bad", &bundle).is_err());
    }

    #[test]
    fn generations_are_unique_and_monotonic() {
        let (bundle, _) = toy_bundle();
        let a = ServableModel::from_bundle("toy@1", &bundle).unwrap();
        let b = ServableModel::from_bundle("toy@2", &bundle).unwrap();
        assert!(b.generation() > a.generation());
    }

    #[test]
    fn digest_tracks_content_not_generation() {
        let (bundle, _) = toy_bundle();
        let a = ServableModel::from_bundle("toy@1", &bundle).unwrap();
        let b = ServableModel::from_bundle("toy@2", &bundle).unwrap();
        // Two materializations of the same content share a digest even
        // though their generations differ.
        assert_eq!(a.digest(), b.digest());
        let mut other = bundle.clone();
        other.classifier.as_mut().unwrap().threshold = 0.9;
        let c = ServableModel::from_bundle("toy@3", &other).unwrap();
        assert_ne!(c.digest(), a.digest());
    }
}
