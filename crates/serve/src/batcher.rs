//! Request micro-batching: coalesce up to `B` single-vector score requests
//! into one matrix so standardize + project + classify run as a single
//! batched GEMM pass through `pfr_linalg`'s blocked kernel
//! (`pfr_linalg::gemm`), which keeps per-row results bitwise identical no
//! matter how many requests share the batch.
//!
//! The design is a collector thread in front of the worker pool:
//!
//! ```text
//! conn threads ──submit()──► queue ──collector──► WorkerPool ──► replies
//!                                   (drains ≤ B,
//!                                    groups by model,
//!                                    builds one Matrix)
//! ```
//!
//! The collector blocks on the first request, then greedily drains whatever
//! else is already queued (up to `max_batch − 1` more, waiting at most
//! `linger` for stragglers), groups the drained requests by model
//! generation, and submits one scoring job per group. Under load the queue
//! is never empty, batches approach `max_batch`, and per-request overhead
//! (job dispatch, allocation, cache bookkeeping) amortizes across the
//! batch; at low traffic the linger bound keeps added latency negligible.

use crate::error::ServeError;
use crate::model::ServableModel;
use crate::pool::WorkerPool;
use crate::stats::ServerStats;
use crate::Result;
use pfr_linalg::Matrix;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Where a completed score lands. The blocking (thread-per-connection)
/// path waits on a channel; the reactor path cannot block, so its sink
/// records a completion for the event loop and rings its waker.
pub(crate) enum ScoreSink {
    /// Reply over an mpsc channel a connection thread is blocked on.
    Channel(Sender<Result<f64>>),
    /// Reply into the reactor's completion queue.
    Net(crate::reactor_front::NetSink),
}

impl ScoreSink {
    fn send(self, result: Result<f64>) {
        match self {
            ScoreSink::Channel(tx) => {
                // A dropped receiver just means the caller stopped waiting.
                let _ = tx.send(result);
            }
            ScoreSink::Net(sink) => sink.send_score(result),
        }
    }
}

/// One queued score request: which model, which vector, where to reply.
struct ScoreRequest {
    model: Arc<ServableModel>,
    features: Vec<f64>,
    reply: ScoreSink,
}

/// Configuration of a [`MicroBatcher`].
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Maximum number of requests coalesced into one scoring pass.
    pub max_batch: usize,
    /// How long the collector waits for stragglers once it holds at least
    /// one request. Zero disables waiting (batch = whatever is queued).
    pub linger: Duration,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 64,
            linger: Duration::from_micros(200),
        }
    }
}

/// Coalesces concurrent single-vector requests into batched scoring passes.
#[derive(Debug)]
pub struct MicroBatcher {
    sender: Option<Sender<ScoreRequest>>,
    collector: Option<JoinHandle<()>>,
}

impl MicroBatcher {
    /// Starts the collector thread in front of `pool`.
    pub fn new(config: BatcherConfig, pool: Arc<WorkerPool>, stats: Arc<ServerStats>) -> Self {
        let (sender, receiver) = mpsc::channel::<ScoreRequest>();
        let collector = std::thread::Builder::new()
            .name("pfr-serve-batcher".to_string())
            .spawn(move || collect_loop(config, receiver, pool, stats))
            .expect("spawning the collector thread never fails on this platform");
        MicroBatcher {
            sender: Some(sender),
            collector: Some(collector),
        }
    }

    /// Enqueues one score request; the returned receiver yields the score
    /// (or the scoring error) once its batch has run.
    pub fn submit(
        &self,
        model: Arc<ServableModel>,
        features: Vec<f64>,
    ) -> Result<Receiver<Result<f64>>> {
        let (reply, rx) = mpsc::channel();
        self.submit_sink(model, features, ScoreSink::Channel(reply))?;
        Ok(rx)
    }

    /// Enqueues one score request with an explicit reply sink (the reactor
    /// front end's non-blocking entry point).
    pub(crate) fn submit_sink(
        &self,
        model: Arc<ServableModel>,
        features: Vec<f64>,
        reply: ScoreSink,
    ) -> Result<()> {
        self.sender
            .as_ref()
            .ok_or(ServeError::Shutdown)?
            .send(ScoreRequest {
                model,
                features,
                reply,
            })
            .map_err(|_| ServeError::Shutdown)
    }

    /// Convenience wrapper: submit and block for the score.
    pub fn score(&self, model: Arc<ServableModel>, features: Vec<f64>) -> Result<f64> {
        self.submit(model, features)?
            .recv()
            .map_err(|_| ServeError::Shutdown)?
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        drop(self.sender.take());
        if let Some(collector) = self.collector.take() {
            let _ = collector.join();
        }
    }
}

fn collect_loop(
    config: BatcherConfig,
    receiver: Receiver<ScoreRequest>,
    pool: Arc<WorkerPool>,
    stats: Arc<ServerStats>,
) {
    let max_batch = config.max_batch.max(1);
    loop {
        // Block for the first request of the next batch.
        let first = match receiver.recv() {
            Ok(req) => req,
            Err(_) => return, // batcher dropped: shut down
        };
        let mut pending = vec![first];
        // Greedily drain stragglers, waiting at most `linger` once.
        let deadline = std::time::Instant::now() + config.linger;
        while pending.len() < max_batch {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match receiver.recv_timeout(remaining) {
                Ok(req) => pending.push(req),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        dispatch_batches(pending, &pool, &stats);
    }
}

/// Groups drained requests by model generation and submits one scoring job
/// per group.
fn dispatch_batches(pending: Vec<ScoreRequest>, pool: &Arc<WorkerPool>, stats: &Arc<ServerStats>) {
    let mut groups: Vec<(u64, Vec<ScoreRequest>)> = Vec::new();
    for req in pending {
        let generation = req.model.generation();
        match groups.iter_mut().find(|(g, _)| *g == generation) {
            Some((_, group)) => group.push(req),
            None => groups.push((generation, vec![req])),
        }
    }
    for (_, group) in groups {
        let stats = Arc::clone(stats);
        let submitted = pool.execute(move || run_batch(group, &stats));
        if submitted.is_err() {
            // Pool shut down while requests were in flight; nothing to do —
            // reply senders drop and every waiting client sees Shutdown.
            return;
        }
    }
}

/// Scores one coalesced group with a single batched pass and fans the
/// results back out to the per-request reply channels.
fn run_batch(group: Vec<ScoreRequest>, stats: &ServerStats) {
    let model = Arc::clone(&group[0].model);
    let cols = model.num_features();
    // Mis-sized vectors cannot share the matrix; fail them individually and
    // score the rest.
    let (bad, group): (Vec<_>, Vec<_>) = group.into_iter().partition(|r| r.features.len() != cols);
    for r in bad {
        let width = r.features.len();
        r.reply.send(Err(ServeError::Model(format!(
            "request vector has {width} features but the model expects {cols}"
        ))));
    }
    if group.is_empty() {
        return;
    }
    stats.record_batch(group.len());
    let rows = group.len();
    let mut data = Vec::with_capacity(rows * cols);
    for r in &group {
        data.extend_from_slice(&r.features);
    }
    let batch = match Matrix::from_vec(rows, cols, data) {
        Ok(m) => m,
        Err(e) => {
            for r in group {
                r.reply.send(Err(ServeError::model(&e)));
            }
            return;
        }
    };
    match model.score_batch(&batch) {
        Ok(scores) => {
            for (r, score) in group.into_iter().zip(scores) {
                r.reply.send(Ok(score));
            }
        }
        Err(e) => {
            let msg = e.to_string();
            for r in group {
                r.reply.send(Err(ServeError::Model(msg.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::toy_bundle;
    use crate::model::ServableModel;

    fn setup(
        max_batch: usize,
        linger: Duration,
    ) -> (MicroBatcher, Arc<ServableModel>, Matrix, Arc<ServerStats>) {
        let (bundle, x) = toy_bundle();
        let model = Arc::new(ServableModel::from_bundle("toy@1", &bundle).unwrap());
        let pool = Arc::new(WorkerPool::new(2));
        let stats = Arc::new(ServerStats::new());
        let batcher = MicroBatcher::new(
            BatcherConfig { max_batch, linger },
            pool,
            Arc::clone(&stats),
        );
        (batcher, model, x, stats)
    }

    #[test]
    fn batched_scores_equal_direct_batch_scores() {
        let (batcher, model, x, _) = setup(8, Duration::from_millis(2));
        let expected = model.score_batch(&x).unwrap();
        let receivers: Vec<_> = (0..x.rows())
            .map(|i| {
                batcher
                    .submit(Arc::clone(&model), x.row(i).to_vec())
                    .unwrap()
            })
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let got = rx.recv().unwrap().unwrap();
            assert_eq!(got.to_bits(), expected[i].to_bits(), "row {i}");
        }
    }

    #[test]
    fn coalesces_concurrent_requests_into_larger_batches() {
        let (batcher, model, x, stats) = setup(64, Duration::from_millis(20));
        let batcher = Arc::new(batcher);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let batcher = Arc::clone(&batcher);
                let model = Arc::clone(&model);
                let x = x.clone();
                std::thread::spawn(move || {
                    for i in 0..x.rows() {
                        let _ = batcher
                            .score(Arc::clone(&model), x.row((i + t) % x.rows()).to_vec())
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(stats.batches() >= 1);
        assert!(
            stats.max_batch() >= 2,
            "expected at least one coalesced batch, max was {}",
            stats.max_batch()
        );
    }

    #[test]
    fn mixed_width_requests_fail_individually_without_killing_the_batch() {
        let (batcher, model, x, _) = setup(8, Duration::from_millis(10));
        let good = batcher
            .submit(Arc::clone(&model), x.row(0).to_vec())
            .unwrap();
        let bad = batcher.submit(Arc::clone(&model), vec![1.0, 2.0]).unwrap();
        assert!(bad.recv().unwrap().is_err());
        let score = good.recv().unwrap().unwrap();
        let expected = model.score_one(x.row(0)).unwrap();
        assert_eq!(score.to_bits(), expected.to_bits());
    }

    #[test]
    fn groups_by_model_generation_within_one_drain() {
        let (batcher, model_a, x, stats) = setup(16, Duration::from_millis(20));
        let (bundle, _) = toy_bundle();
        let model_b = Arc::new(ServableModel::from_bundle("toy@2", &bundle).unwrap());
        let rx_a = batcher
            .submit(Arc::clone(&model_a), x.row(0).to_vec())
            .unwrap();
        let rx_b = batcher
            .submit(Arc::clone(&model_b), x.row(1).to_vec())
            .unwrap();
        let a = rx_a.recv().unwrap().unwrap();
        let b = rx_b.recv().unwrap().unwrap();
        assert_eq!(a.to_bits(), model_a.score_one(x.row(0)).unwrap().to_bits());
        assert_eq!(b.to_bits(), model_b.score_one(x.row(1)).unwrap().to_bits());
        assert!(stats.batches() >= 2, "one batch per model generation");
    }

    #[test]
    fn zero_linger_still_serves_requests() {
        let (batcher, model, x, _) = setup(4, Duration::ZERO);
        for i in 0..x.rows() {
            let got = batcher
                .score(Arc::clone(&model), x.row(i).to_vec())
                .unwrap();
            let expected = model.score_one(x.row(i)).unwrap();
            assert_eq!(got.to_bits(), expected.to_bits());
        }
    }
}
