//! A fixed-size worker thread pool over a `std::sync::mpsc` channel.
//!
//! The standard library's mpsc receiver is single-consumer, so the receiving
//! end is shared behind a `Mutex` and each worker loops on
//! `lock → recv → run`. That is the classic "channel of boxed jobs" design
//! (crossbeam's multi-consumer channel would drop the mutex, but the lock is
//! held only for the dequeue itself, which is nanoseconds next to a scoring
//! pass). Dropping the pool closes the channel and joins every worker, so
//! tests and servers shut down deterministically.

use crate::error::ServeError;
use crate::Result;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of `n` worker threads executing submitted closures.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `size` workers (at least one).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("pfr-serve-worker-{i}"))
                    .spawn(move || loop {
                        let job = match receiver.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        match job {
                            Ok(job) => {
                                // A panicking job must not kill the worker:
                                // the pool would silently shrink and, after
                                // `size` panics, stop serving entirely.
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => break, // channel closed: shut down
                        }
                    })
                    .expect("spawning a worker thread never fails on this platform")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submits a fire-and-forget job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> Result<()> {
        self.sender
            .as_ref()
            .ok_or(ServeError::Shutdown)?
            .send(Box::new(job))
            .map_err(|_| ServeError::Shutdown)
    }

    /// Submits a job and returns a receiver for its result. The job runs on
    /// a worker; the caller blocks (or polls) on the returned channel.
    pub fn submit<T, F>(&self, job: F) -> Result<Receiver<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        self.execute(move || {
            // A dropped receiver just means the caller stopped waiting.
            let _ = tx.send(job());
        })?;
        Ok(rx)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel wakes every worker with RecvError.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_jobs_on_multiple_threads() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.size(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let receivers: Vec<_> = (0..100)
            .map(|i| {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i * 2
                })
                .unwrap()
            })
            .collect();
        let results: Vec<usize> = receivers.into_iter().map(|rx| rx.recv().unwrap()).collect();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, i * 2);
        }
    }

    #[test]
    fn zero_size_is_clamped_to_one_worker() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
        assert_eq!(pool.submit(|| 7).unwrap().recv().unwrap(), 7);
    }

    #[test]
    fn drop_joins_workers_after_draining_submitted_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
            // Drop happens here: channel closes, workers drain what they
            // already received and exit.
        }
        // Every job either ran or was dropped with the queue; no hang either
        // way. (mpsc delivers all sent messages before RecvError, so all 50
        // ran.)
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn panicking_jobs_do_not_shrink_the_pool() {
        let pool = WorkerPool::new(2);
        // More panicking jobs than workers: without catch_unwind this would
        // kill every worker and the pool would stop serving.
        for _ in 0..6 {
            let _ = pool.execute(|| panic!("job panic"));
        }
        let ok = pool.submit(|| 41 + 1).unwrap();
        assert_eq!(ok.recv().unwrap(), 42);
    }
}
