//! Lock-free serving statistics: per-verb request counters and full
//! latency *distributions*, cache hit rates and batch-shape telemetry.
//!
//! Each verb owns a [`LatencyHisto`] — a log-linear histogram recorded
//! with relaxed atomics only, so the hot path stays lock-free while
//! `STATS` and `METRICS` can report exact p50/p99/p999 instead of the
//! mean that used to hide every bimodal batch/fsync/shed effect. Errors
//! are broken down by kind (parse vs exec vs shed) rather than one
//! undifferentiated counter.

use pfr_obs::{LatencyHisto, MetricsRegistry, Snapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One verb's counters: request count, exec-error count, and the full
/// latency distribution.
#[derive(Debug, Default)]
pub struct VerbStats {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Arc<LatencyHisto>,
}

impl VerbStats {
    /// Records one completed request and its wall-clock latency. Lock-free.
    pub fn record(&self, latency: Duration, ok: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        // `record_duration` saturates at u64::MAX nanoseconds instead of
        // silently truncating the u128 — a >584-year latency is a bug, but
        // it should show up as a huge outlier, not wrap to a tiny one.
        self.latency.record_duration(latency);
    }

    /// Number of requests seen.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Number of requests that returned an exec error.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Mean latency in nanoseconds (0 when no requests were seen).
    pub fn mean_latency_nanos(&self) -> u64 {
        self.latency
            .sum()
            .checked_div(self.latency.count())
            .unwrap_or(0)
    }

    /// The live latency histogram (shareable with a metrics registry).
    pub fn latency(&self) -> &Arc<LatencyHisto> {
        &self.latency
    }

    /// A point-in-time copy of the latency distribution.
    pub fn latency_snapshot(&self) -> Snapshot {
        self.latency.snapshot()
    }
}

/// Aggregate statistics for a serving instance.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// `LOAD` verb counters.
    pub load: VerbStats,
    /// `SCORE` verb counters.
    pub score: VerbStats,
    /// `TRANSFORM` verb counters.
    pub transform: VerbStats,
    /// `STATS` verb counters.
    pub stats: VerbStats,
    /// `HEALTH` verb counters (router probes land here, not under
    /// `stats`, so probe traffic cannot distort the `STATS` figures).
    pub health: VerbStats,
    /// `EPOCH` verb counters.
    pub epoch: VerbStats,
    /// `CATALOG`/`SYNC` verb counters — the control-plane replication
    /// traffic, kept out of the data-path verbs so anti-entropy chatter
    /// cannot distort scoring figures.
    pub catalog: VerbStats,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    connections: AtomicU64,
    sheds: AtomicU64,
    inflight: AtomicU64,
    parse_errors: AtomicU64,
    slow_requests: AtomicU64,
}

impl ServerStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Records a score served straight from the cache.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a score that had to be computed.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed micro-batch of `size` coalesced requests.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }

    /// Records an accepted client connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed at accept time (closed with a `BUSY` line
    /// because the connection limit was reached).
    pub fn record_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request line that failed to parse — the "parse" bucket of
    /// the error-kind breakdown (exec errors live on their verb, sheds on
    /// the shed counter).
    pub fn record_parse_error(&self) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a traced request that breached the slow-trace threshold.
    pub fn record_slow_request(&self) {
        self.slow_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Traced requests that breached the slow-trace threshold.
    pub fn slow_requests(&self) -> u64 {
        self.slow_requests.load(Ordering::Relaxed)
    }

    /// Marks one request as entering the serving path. Returns a guard that
    /// decrements the gauge when dropped, so early returns and panics cannot
    /// leak queue depth.
    pub fn track_inflight(&self) -> InflightGuard<'_> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { stats: self }
    }

    /// Raises the in-flight gauge without a guard — the reactor front end
    /// tracks a request from parse to asynchronous completion, which no
    /// borrow-scoped guard can span. Every `inflight_enter` must be paired
    /// with exactly one [`ServerStats::inflight_exit`].
    pub(crate) fn inflight_enter(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the in-flight gauge (see [`ServerStats::inflight_enter`]).
    pub(crate) fn inflight_exit(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently being parsed, queued or scored — the `queue=`
    /// load signal a `HEALTH` probe reports to the routing tier.
    pub fn queue_depth(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Number of micro-batches executed.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Largest micro-batch executed.
    pub fn max_batch(&self) -> u64 {
        self.max_batch.load(Ordering::Relaxed)
    }

    /// Accepted connections.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Connections shed at accept time under overload.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Request lines rejected by the parser.
    pub fn parse_errors(&self) -> u64 {
        self.parse_errors.load(Ordering::Relaxed)
    }

    /// Exec errors summed across verbs — the "exec" bucket of the
    /// error-kind breakdown.
    pub fn exec_errors(&self) -> u64 {
        self.per_verb().iter().map(|(_, verb)| verb.errors()).sum()
    }

    fn per_verb(&self) -> [(&'static str, &VerbStats); 7] {
        [
            ("load", &self.load),
            ("score", &self.score),
            ("transform", &self.transform),
            ("stats", &self.stats),
            ("health", &self.health),
            ("epoch", &self.epoch),
            ("catalog", &self.catalog),
        ]
    }

    /// Registers every counter, gauge and per-verb latency histogram on
    /// `registry` under the `pfr_serve_*` namespace. `self` must be the
    /// `Arc` the server shares — the gauges capture it.
    pub fn register_metrics(self: &Arc<Self>, registry: &MetricsRegistry) {
        macro_rules! gauge {
            ($name:expr, $labels:expr, $read:expr) => {{
                let stats = Arc::clone(self);
                registry.gauge($name, $labels, Arc::new(move || ($read)(&stats) as f64));
            }};
        }
        for (name, verb) in self.per_verb() {
            let requests = {
                let stats = Arc::clone(self);
                let pick = pick_verb(name);
                Arc::new(move || pick(&stats).requests() as f64)
                    as Arc<dyn Fn() -> f64 + Send + Sync>
            };
            registry.gauge("pfr_serve_requests_total", &[("verb", name)], requests);
            let errors = {
                let stats = Arc::clone(self);
                let pick = pick_verb(name);
                Arc::new(move || pick(&stats).errors() as f64) as Arc<dyn Fn() -> f64 + Send + Sync>
            };
            registry.gauge("pfr_serve_verb_errors_total", &[("verb", name)], errors);
            registry.histogram(
                "pfr_serve_latency_ns",
                &[("verb", name)],
                Arc::clone(verb.latency()),
            );
        }
        gauge!(
            "pfr_serve_errors_total",
            &[("kind", "parse")],
            |s: &ServerStats| s.parse_errors()
        );
        gauge!(
            "pfr_serve_errors_total",
            &[("kind", "exec")],
            |s: &ServerStats| s.exec_errors()
        );
        gauge!(
            "pfr_serve_errors_total",
            &[("kind", "shed")],
            |s: &ServerStats| s.sheds()
        );
        gauge!("pfr_serve_cache_hits_total", &[], |s: &ServerStats| s
            .cache_hits());
        gauge!("pfr_serve_cache_misses_total", &[], |s: &ServerStats| s
            .cache_misses());
        gauge!("pfr_serve_batches_total", &[], |s: &ServerStats| s
            .batches());
        gauge!("pfr_serve_max_batch", &[], |s: &ServerStats| s.max_batch());
        gauge!("pfr_serve_connections_total", &[], |s: &ServerStats| s
            .connections());
        gauge!("pfr_serve_sheds_total", &[], |s: &ServerStats| s.sheds());
        gauge!("pfr_serve_inflight", &[], |s: &ServerStats| s.queue_depth());
        gauge!("pfr_serve_slow_requests_total", &[], |s: &ServerStats| s
            .slow_requests());
    }

    /// Renders the whole snapshot as a single `key=value` line — the payload
    /// of a `STATS` response. Includes score-path tail latencies from the
    /// histogram next to the legacy means.
    pub fn to_line(&self) -> String {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        let mean_batch = batched.checked_div(batches).unwrap_or(0);
        let score = self.score.latency_snapshot();
        format!(
            "connections={} sheds={} errors_parse={} errors_exec={} errors_shed={} \
             load_requests={} load_errors={} load_mean_ns={} \
             score_requests={} score_errors={} score_mean_ns={} \
             score_p50_ns={} score_p99_ns={} score_p999_ns={} \
             transform_requests={} transform_errors={} transform_mean_ns={} \
             stats_requests={} health_requests={} epoch_requests={} \
             catalog_requests={} \
             cache_hits={} cache_misses={} \
             batches={} mean_batch={} max_batch={}",
            self.connections(),
            self.sheds(),
            self.parse_errors(),
            self.exec_errors(),
            self.sheds(),
            self.load.requests(),
            self.load.errors(),
            self.load.mean_latency_nanos(),
            self.score.requests(),
            self.score.errors(),
            self.score.mean_latency_nanos(),
            score.p50(),
            score.p99(),
            score.p999(),
            self.transform.requests(),
            self.transform.errors(),
            self.transform.mean_latency_nanos(),
            self.stats.requests(),
            self.health.requests(),
            self.epoch.requests(),
            self.catalog.requests(),
            self.cache_hits(),
            self.cache_misses(),
            batches,
            mean_batch,
            self.max_batch(),
        )
    }
}

/// Maps a verb name back to its `VerbStats` field — lets the registry
/// closures stay `'static` while borrowing through the shared `Arc`.
fn pick_verb(name: &str) -> fn(&ServerStats) -> &VerbStats {
    match name {
        "load" => |s| &s.load,
        "score" => |s| &s.score,
        "transform" => |s| &s.transform,
        "stats" => |s| &s.stats,
        "health" => |s| &s.health,
        "epoch" => |s| &s.epoch,
        "catalog" => |s| &s.catalog,
        other => unreachable!("unknown verb '{other}'"),
    }
}

/// RAII guard for the in-flight request gauge (see
/// [`ServerStats::track_inflight`]).
#[derive(Debug)]
pub struct InflightGuard<'a> {
    stats: &'a ServerStats,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.stats.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_gauge_rises_and_falls_with_guards() {
        let s = ServerStats::new();
        assert_eq!(s.queue_depth(), 0);
        let a = s.track_inflight();
        let b = s.track_inflight();
        assert_eq!(s.queue_depth(), 2);
        drop(a);
        assert_eq!(s.queue_depth(), 1);
        drop(b);
        assert_eq!(s.queue_depth(), 0);
    }

    #[test]
    fn verb_stats_accumulate_and_average() {
        let v = VerbStats::default();
        assert_eq!(v.mean_latency_nanos(), 0);
        v.record(Duration::from_nanos(100), true);
        v.record(Duration::from_nanos(300), false);
        assert_eq!(v.requests(), 2);
        assert_eq!(v.errors(), 1);
        assert_eq!(v.mean_latency_nanos(), 200);
    }

    #[test]
    fn verb_latency_distribution_reports_tails() {
        let v = VerbStats::default();
        for _ in 0..99 {
            v.record(Duration::from_nanos(1_000), true);
        }
        v.record(Duration::from_micros(100), true);
        let snap = v.latency_snapshot();
        assert_eq!(snap.count, 100);
        // p50 sits at the common case, p999 catches the outlier the old
        // mean-only accumulation averaged away.
        assert!(snap.p50() < 2_000, "p50 {}", snap.p50());
        assert!(snap.p999() >= 100_000, "p999 {}", snap.p999());
    }

    #[test]
    fn error_kinds_are_broken_down() {
        let s = ServerStats::new();
        s.record_parse_error();
        s.record_parse_error();
        s.score.record(Duration::from_nanos(10), false);
        s.record_shed();
        assert_eq!(s.parse_errors(), 2);
        assert_eq!(s.exec_errors(), 1);
        assert_eq!(s.sheds(), 1);
        let line = s.to_line();
        assert!(line.contains("errors_parse=2"));
        assert!(line.contains("errors_exec=1"));
        assert!(line.contains("errors_shed=1"));
    }

    #[test]
    fn batch_telemetry_tracks_mean_and_max() {
        let s = ServerStats::new();
        s.record_batch(1);
        s.record_batch(7);
        s.record_batch(4);
        assert_eq!(s.batches(), 3);
        assert_eq!(s.max_batch(), 7);
        let line = s.to_line();
        assert!(line.contains("batches=3"));
        assert!(line.contains("mean_batch=4"));
        assert!(line.contains("max_batch=7"));
    }

    #[test]
    fn stats_line_is_single_line_key_value() {
        let s = ServerStats::new();
        s.record_cache_hit();
        s.record_cache_miss();
        s.record_connection();
        s.score.record(Duration::from_micros(5), true);
        let line = s.to_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("cache_hits=1"));
        assert!(line.contains("cache_misses=1"));
        assert!(line.contains("connections=1"));
        assert!(line.contains("score_requests=1"));
        assert!(line.contains("score_p99_ns="));
        for pair in line.split_whitespace() {
            assert!(pair.contains('='), "malformed pair '{pair}'");
        }
    }

    #[test]
    fn registered_metrics_render_per_verb_histograms() {
        let s = Arc::new(ServerStats::new());
        s.score.record(Duration::from_micros(3), true);
        s.record_cache_hit();
        let registry = MetricsRegistry::new();
        s.register_metrics(&registry);
        let text = registry.render();
        assert!(text.contains("pfr_serve_requests_total{verb=\"score\"} 1\n"));
        assert!(text.contains("pfr_serve_latency_ns_count{verb=\"score\"} 1\n"));
        assert!(text.contains("pfr_serve_latency_ns_p999{verb=\"score\"}"));
        assert!(text.contains("pfr_serve_errors_total{kind=\"parse\"} 0\n"));
        assert!(text.contains("pfr_serve_cache_hits_total 1\n"));
    }

    #[test]
    fn counters_are_safe_under_concurrency() {
        use std::sync::Arc;
        let s = Arc::new(ServerStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_cache_hit();
                        s.score.record(Duration::from_nanos(10), true);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.cache_hits(), 4000);
        assert_eq!(s.score.requests(), 4000);
        assert_eq!(s.score.latency_snapshot().count, 4000);
    }
}
