//! Lock-free serving statistics: per-verb request/latency counters, cache
//! hit rates and batch-shape telemetry, all `AtomicU64`.
//!
//! Latencies are accumulated as (total nanoseconds, count) pairs per verb so
//! the mean is derivable without histograms; that keeps the hot path at two
//! relaxed atomic adds. A `STATS` response renders a snapshot as one
//! `key=value` line.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One verb's counters: how many requests, how many errors, total time.
#[derive(Debug, Default)]
pub struct VerbStats {
    requests: AtomicU64,
    errors: AtomicU64,
    total_nanos: AtomicU64,
}

impl VerbStats {
    /// Records one completed request and its wall-clock latency.
    pub fn record(&self, latency: Duration, ok: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Number of requests seen.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Number of requests that returned an error.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Mean latency in nanoseconds (0 when no requests were seen).
    pub fn mean_latency_nanos(&self) -> u64 {
        self.total_nanos
            .load(Ordering::Relaxed)
            .checked_div(self.requests())
            .unwrap_or(0)
    }
}

/// Aggregate statistics for a serving instance.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// `LOAD` verb counters.
    pub load: VerbStats,
    /// `SCORE` verb counters.
    pub score: VerbStats,
    /// `TRANSFORM` verb counters.
    pub transform: VerbStats,
    /// `STATS` verb counters.
    pub stats: VerbStats,
    /// `HEALTH` verb counters (router probes land here, not under
    /// `stats`, so probe traffic cannot distort the `STATS` figures).
    pub health: VerbStats,
    /// `EPOCH` verb counters.
    pub epoch: VerbStats,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    connections: AtomicU64,
    sheds: AtomicU64,
    inflight: AtomicU64,
}

impl ServerStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Records a score served straight from the cache.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a score that had to be computed.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed micro-batch of `size` coalesced requests.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }

    /// Records an accepted client connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed at accept time (closed with a `BUSY` line
    /// because the connection limit was reached).
    pub fn record_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one request as entering the serving path. Returns a guard that
    /// decrements the gauge when dropped, so early returns and panics cannot
    /// leak queue depth.
    pub fn track_inflight(&self) -> InflightGuard<'_> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { stats: self }
    }

    /// Raises the in-flight gauge without a guard — the reactor front end
    /// tracks a request from parse to asynchronous completion, which no
    /// borrow-scoped guard can span. Every `inflight_enter` must be paired
    /// with exactly one [`ServerStats::inflight_exit`].
    pub(crate) fn inflight_enter(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the in-flight gauge (see [`ServerStats::inflight_enter`]).
    pub(crate) fn inflight_exit(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently being parsed, queued or scored — the `queue=`
    /// load signal a `HEALTH` probe reports to the routing tier.
    pub fn queue_depth(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Number of micro-batches executed.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Largest micro-batch executed.
    pub fn max_batch(&self) -> u64 {
        self.max_batch.load(Ordering::Relaxed)
    }

    /// Accepted connections.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Connections shed at accept time under overload.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Renders the whole snapshot as a single `key=value` line — the payload
    /// of a `STATS` response.
    pub fn to_line(&self) -> String {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        let mean_batch = batched.checked_div(batches).unwrap_or(0);
        format!(
            "connections={} sheds={} load_requests={} load_errors={} load_mean_ns={} \
             score_requests={} score_errors={} score_mean_ns={} \
             transform_requests={} transform_errors={} transform_mean_ns={} \
             stats_requests={} health_requests={} epoch_requests={} \
             cache_hits={} cache_misses={} \
             batches={} mean_batch={} max_batch={}",
            self.connections(),
            self.sheds(),
            self.load.requests(),
            self.load.errors(),
            self.load.mean_latency_nanos(),
            self.score.requests(),
            self.score.errors(),
            self.score.mean_latency_nanos(),
            self.transform.requests(),
            self.transform.errors(),
            self.transform.mean_latency_nanos(),
            self.stats.requests(),
            self.health.requests(),
            self.epoch.requests(),
            self.cache_hits(),
            self.cache_misses(),
            batches,
            mean_batch,
            self.max_batch(),
        )
    }
}

/// RAII guard for the in-flight request gauge (see
/// [`ServerStats::track_inflight`]).
#[derive(Debug)]
pub struct InflightGuard<'a> {
    stats: &'a ServerStats,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.stats.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_gauge_rises_and_falls_with_guards() {
        let s = ServerStats::new();
        assert_eq!(s.queue_depth(), 0);
        let a = s.track_inflight();
        let b = s.track_inflight();
        assert_eq!(s.queue_depth(), 2);
        drop(a);
        assert_eq!(s.queue_depth(), 1);
        drop(b);
        assert_eq!(s.queue_depth(), 0);
    }

    #[test]
    fn verb_stats_accumulate_and_average() {
        let v = VerbStats::default();
        assert_eq!(v.mean_latency_nanos(), 0);
        v.record(Duration::from_nanos(100), true);
        v.record(Duration::from_nanos(300), false);
        assert_eq!(v.requests(), 2);
        assert_eq!(v.errors(), 1);
        assert_eq!(v.mean_latency_nanos(), 200);
    }

    #[test]
    fn batch_telemetry_tracks_mean_and_max() {
        let s = ServerStats::new();
        s.record_batch(1);
        s.record_batch(7);
        s.record_batch(4);
        assert_eq!(s.batches(), 3);
        assert_eq!(s.max_batch(), 7);
        let line = s.to_line();
        assert!(line.contains("batches=3"));
        assert!(line.contains("mean_batch=4"));
        assert!(line.contains("max_batch=7"));
    }

    #[test]
    fn stats_line_is_single_line_key_value() {
        let s = ServerStats::new();
        s.record_cache_hit();
        s.record_cache_miss();
        s.record_connection();
        s.score.record(Duration::from_micros(5), true);
        let line = s.to_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("cache_hits=1"));
        assert!(line.contains("cache_misses=1"));
        assert!(line.contains("connections=1"));
        assert!(line.contains("score_requests=1"));
        for pair in line.split_whitespace() {
            assert!(pair.contains('='), "malformed pair '{pair}'");
        }
    }

    #[test]
    fn counters_are_safe_under_concurrency() {
        use std::sync::Arc;
        let s = Arc::new(ServerStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_cache_hit();
                        s.score.record(Duration::from_nanos(10), true);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.cache_hits(), 4000);
        assert_eq!(s.score.requests(), 4000);
    }
}
